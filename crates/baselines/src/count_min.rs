//! The CountMin sketch [CM05].

use crate::{LANE_BLOCK, PREFETCH_MIN_BYTES};
use fsc_counters::hashing::TabulationHash;
use fsc_counters::lanes;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Mergeable, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, StateTracker, StreamAlgorithm, TrackedMatrix,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stable checkpoint-header id of [`CountMin`].
const SNAPSHOT_ID: &str = "count_min";

/// A CountMin sketch with `depth` rows of `width` counters.
///
/// Estimates satisfy `f_i ≤ estimate(i) ≤ f_i + ε·m` with probability `1 − δ` for
/// `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.  Every update increments `depth` counters, so
/// the state-change count is `Θ(m)` (and the word-write count is `Θ(depth·m)`).
///
/// The `depth × width` counter table lives in one contiguous [`TrackedMatrix`], so an
/// update touches one allocation instead of chasing `depth` boxed rows (accounting is
/// cell-for-cell identical to the row-vector layout; see the matrix docs).
#[derive(Debug, Clone)]
pub struct CountMin {
    table: TrackedMatrix<u64>,
    hashes: Vec<TabulationHash>,
    width: usize,
    seed: u64,
    /// Lane width of the batch kernel (1 = scalar fallback); answers and accounting
    /// are bit-identical at every width, so this is purely a speed knob.
    lanes: usize,
    name: String,
    tracker: StateTracker,
}

impl CountMin {
    /// Creates a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        Self::with_tracker(&StateTracker::new(), width, depth, seed)
    }

    /// Creates a sketch attached to a caller-supplied tracker (e.g. a lean one from
    /// [`StateTracker::lean`], which makes the sketch `Send` for sharded runs).
    pub fn with_tracker(tracker: &StateTracker, width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 1 && depth >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let table = TrackedMatrix::filled(tracker, depth, width, 0u64);
        let hashes = (0..depth).map(|_| TabulationHash::new(&mut rng)).collect();
        Self {
            table,
            hashes,
            width,
            seed,
            lanes: lanes::DEFAULT_LANE_WIDTH,
            name: format!("CountMin({depth}x{width})"),
            tracker: tracker.clone(),
        }
    }

    /// Selects the lane width of the batch kernel (`1`, `2`, `4`, or `8`; `1` is the
    /// scalar fallback).  Every width produces bit-identical answers, `StateReport`s,
    /// and wear tables — the batch-law lane sweep pins this — so the choice only
    /// affects throughput.  Not serialized: a restored sketch uses the default.
    ///
    /// # Panics
    ///
    /// If `lanes` is not a supported width.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(
            lanes::is_supported_width(lanes),
            "unsupported lane width {lanes} (supported: {:?})",
            lanes::LANE_WIDTHS
        );
        self.lanes = lanes;
        self
    }

    /// Creates a sketch for additive error `ε·m` with failure probability `δ`.
    pub fn for_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let width = (std::f64::consts::E / eps).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth, seed)
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows).
    pub fn depth(&self) -> usize {
        self.table.rows()
    }
}

impl StreamAlgorithm for CountMin {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        for (r, hash) in self.hashes.iter().enumerate() {
            let bucket = hash.hash_bucket(item, self.width);
            self.table.update(r, bucket, |c| c + 1);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Lane-packed blocked batch kernel (scalar at `lanes == 1`): the hash phase
    /// evaluates all row hashes for a whole block of items into a cell buffer using
    /// the lane evaluators of [`fsc_counters::lanes`], the block's probe cells are
    /// touched early with plain reads (software prefetch — see DESIGN §1.10), and
    /// the scatter phase then bumps the counters and charges the tracker per item
    /// exactly as the per-item path would.  A `+1` always changes a `u64` counter,
    /// so the bulk "changed writes" charge is exactly what the per-cell `update`
    /// calls would have recorded (the batch-law tests pin report, wear, and answer
    /// equality at every lane width).
    fn process_batch(&mut self, items: &[u64]) {
        match self.lanes {
            2 => self.process_batch_lanes::<2>(items),
            4 => self.process_batch_lanes::<4>(items),
            8 => self.process_batch_lanes::<8>(items),
            _ => self.process_batch_lanes::<1>(items),
        }
    }

    /// Run-length kernel: a run of `count` identical updates hashes the item once,
    /// adds `count` to each row counter, and charges `count` epochs' worth of
    /// accounting (one state change, `depth` reads and `depth` changed writes per
    /// epoch) in bulk — observably identical to `count` per-item updates.
    fn process_run(&mut self, item: u64, count: u64) {
        if count == 0 {
            return;
        }
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(count);
        let depth = self.table.rows();
        let width = self.width;
        let mut addrs = Vec::with_capacity(depth);
        let mut cells = Vec::with_capacity(depth);
        for (r, hash) in self.hashes.iter().enumerate() {
            let bucket = hash.hash_bucket(item, width);
            addrs.push(self.table.addr_of(r, bucket));
            cells.push(r * width + bucket);
        }
        let data = self.table.as_mut_slice_untracked();
        for &cell in &cells {
            data[cell] += count;
        }
        tracker.record_reads(depth as u64 * count);
        tracker.record_run_epochs(first, count, depth as u64, Some(&addrs));
    }
}

impl CountMin {
    /// The monomorphized batch kernel behind [`StreamAlgorithm::process_batch`].
    ///
    /// `W = 1` runs the same block structure with scalar hashing — the bit-identical
    /// fallback — so there is exactly one accounting path to get right.  Per block:
    ///
    /// 1. **Hash phase** — evaluate all `depth` tabulation hashes for the block's
    ///    items with [`lanes::tabulation_hashes`] (8·W independent table loads in
    ///    flight instead of 8 dependent ones) and store the flat cell index of every
    ///    probe.
    /// 2. **Prefetch phase** — read every probe cell once, summing into a value fed
    ///    to [`std::hint::black_box`].  Ordinary loads, no intrinsics: they pull the
    ///    scattered counter lines into cache while staying invisible to tracking
    ///    (reads change no state; the tracker's logical read charge is recorded in
    ///    the scatter phase, unchanged).
    /// 3. **Scatter phase** — per item: enter its epoch, bump its `depth` counters
    ///    via the untracked slice, then charge `depth` reads and the changed
    ///    addresses in bulk — call-for-call what the scalar per-item kernel charged.
    fn process_batch_lanes<const W: usize>(&mut self, items: &[u64]) {
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(items.len() as u64);
        let depth = self.table.rows();
        let width = self.width;
        let base = self.table.addr_of(0, 0);
        let elem_words = self.table.elem_words();
        let mut addrs = vec![0usize; LANE_BLOCK * depth];
        let mut cells = vec![0usize; LANE_BLOCK * depth];
        // Prefetch pays only when the counter table outgrows cache; at cache-resident
        // sizes the touch loop is pure overhead, so skip it (no observable effect —
        // the touched cells were about to be read by the scatter anyway).
        let prefetch = depth * width * std::mem::size_of::<u64>() > PREFETCH_MIN_BYTES;
        for (b, block) in items.chunks(LANE_BLOCK).enumerate() {
            // Hash phase, row-major: one row's 16 KiB of tabulation tables stays
            // cache-hot across the whole block instead of being evicted by the next
            // row's tables after every lane group.
            let full = block.len() - block.len() % W;
            for (r, hash) in self.hashes.iter().enumerate() {
                for g in (0..full).step_by(W) {
                    let xs: [u64; W] = block[g..g + W].try_into().unwrap();
                    let hs = lanes::tabulation_hashes::<W>(hash, &xs);
                    let buckets = lanes::multiply_shift_buckets::<W>(&hs, width, 64);
                    for l in 0..W {
                        cells[(g + l) * depth + r] = r * width + buckets[l];
                    }
                }
                for (i, &item) in block.iter().enumerate().skip(full) {
                    cells[i * depth + r] = r * width + hash.hash_bucket(item, width);
                }
            }
            // Prefetch phase: touch every probe cell with a plain (untracked) read.
            let data = self.table.as_mut_slice_untracked();
            if prefetch {
                let mut touch = 0u64;
                for &cell in &cells[..block.len() * depth] {
                    touch = touch.wrapping_add(data[cell]);
                }
                std::hint::black_box(touch);
            }
            // Scatter phase.  The accounting lands in two bulk calls that are
            // call-for-call equivalent to the per-item loop: reads are a global sum,
            // and `record_scatter_epochs` enters each item's epoch and charges its
            // `depth` changed addresses (constant-time on the counting backends).
            let probes = block.len() * depth;
            for (i, &cell) in cells[..probes].iter().enumerate() {
                data[cell] += 1;
                addrs[i] = base + cell * elem_words;
            }
            tracker.record_reads(probes as u64);
            tracker.record_scatter_epochs(first + (b * LANE_BLOCK) as u64, depth, &addrs[..probes]);
        }
    }
}

impl Mergeable for CountMin {
    /// Exact merge by counter addition: with identical dimensions and hash seed, the
    /// merged sketch is bit-for-bit the sketch of the concatenated stream.
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.width == other.width
                && self.table.rows() == other.table.rows()
                && self.seed == other.seed,
            "CountMin shards must share width, depth, and hash seed"
        );
        // One accounting epoch for the whole merge; reads of the donor sketch are
        // charged to the receiver.
        self.tracker.begin_epoch();
        self.tracker.record_reads(self.table.len() as u64);
        for r in 0..self.table.rows() {
            for (c, &v) in other.table.row_untracked(r).iter().enumerate() {
                if v != 0 {
                    self.table.update(r, c, |x| x + v);
                }
            }
        }
    }
}

impl_queryable!(CountMin: [frequency]);

impl Snapshot for CountMin {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `width`, `depth`, hash `seed`, then the counter table in
    /// row-major order.  The hash functions are not serialized — they are a
    /// deterministic function of the seed and are re-derived on restore.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.width);
        w.usize(self.table.rows());
        w.u64(self.seed);
        for &v in self.table.iter_untracked() {
            w.u64(v);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let width = r.usize()?;
        let depth = r.usize()?;
        let seed = r.u64()?;
        let plausible = width
            .checked_mul(depth)
            .is_some_and(|c| c >= 1 && r.remaining() >= c.saturating_mul(8));
        if !plausible {
            return Err(SnapshotError::Corrupt("count_min dimensions"));
        }
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = CountMin::with_tracker(&tracker, width, depth, seed);
        for cell in alg.table.as_mut_slice_untracked() {
            *cell = r.u64()?;
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for CountMin {
    fn estimate(&self, item: u64) -> f64 {
        self.hashes
            .iter()
            .enumerate()
            .map(|(r, hash)| *self.table.peek(r, hash.hash_bucket(item, self.width)))
            .min()
            .unwrap_or(0) as f64
    }

    /// CountMin has no explicit key set; heavy-hitter extraction requires an external
    /// candidate set (the benchmark harness queries the exact top-k candidates).
    fn tracked_items(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn estimates_are_overestimates_within_the_bound() {
        let stream = zipf_stream(1 << 12, 20_000, 1.1, 3);
        let truth = FrequencyVector::from_stream(&stream);
        let mut cm = CountMin::for_error(0.01, 0.01, 7);
        cm.process_stream(&stream);
        for (item, f) in truth.top_k(50) {
            let est = cm.estimate(item);
            assert!(est + 1e-9 >= f as f64, "CountMin never underestimates");
            assert!(
                est <= f as f64 + 0.02 * stream.len() as f64,
                "item {item}: est {est}, true {f}"
            );
        }
    }

    #[test]
    fn dimensions_follow_the_standard_formulas() {
        let cm = CountMin::for_error(0.01, 0.05, 1);
        assert_eq!(cm.width(), 272);
        assert_eq!(cm.depth(), 3);
        assert_eq!(cm.space_words(), 272 * 3);
    }

    #[test]
    fn every_update_is_a_state_change() {
        let stream = zipf_stream(256, 2_000, 1.0, 9);
        let mut cm = CountMin::new(64, 4, 2);
        cm.process_stream(&stream);
        let r = cm.report();
        assert_eq!(r.state_changes, 2_000);
        assert_eq!(
            r.word_writes as usize,
            64 * 4 + 4 * 2_000,
            "init + depth per update"
        );
    }

    #[test]
    fn sharded_merge_equals_the_unsharded_sketch() {
        let stream = zipf_stream(1 << 10, 8_000, 1.1, 5);
        let (left, right) = stream.split_at(stream.len() / 3);
        let mut whole = CountMin::new(128, 4, 9);
        whole.process_stream(&stream);
        let mut a = CountMin::new(128, 4, 9);
        a.process_stream(left);
        let mut b = CountMin::new(128, 4, 9);
        b.process_stream(right);
        a.merge_from(&b);
        for item in 0..64u64 {
            assert_eq!(a.estimate(item), whole.estimate(item), "item {item}");
        }
    }

    #[test]
    #[should_panic(expected = "must share")]
    fn merging_incompatible_sketches_panics() {
        let mut a = CountMin::new(64, 4, 1);
        let b = CountMin::new(64, 4, 2);
        a.merge_from(&b);
    }

    #[test]
    fn unseen_items_can_still_collide_but_rarely() {
        let stream = zipf_stream(1 << 10, 5_000, 1.2, 4);
        let mut cm = CountMin::for_error(0.005, 0.01, 11);
        cm.process_stream(&stream);
        // An item far outside the universe should have a small estimate.
        assert!(cm.estimate(u64::MAX - 1) <= 0.01 * stream.len() as f64);
        assert!(cm.tracked_items().is_empty());
    }
}
