//! The SpaceSaving summary [MAA05].

use fsc_counters::fastmap::FastTrackedMap;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Mergeable, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, StateTracker, StreamAlgorithm,
};

/// Stable checkpoint-header id of [`SpaceSaving`].
const SNAPSHOT_ID: &str = "space_saving";

/// The SpaceSaving summary with `k` monitored items.
///
/// On every update the counter of the arriving item is incremented; if the item is not
/// monitored, the minimum counter is evicted and *inherited* (over-)estimating the new
/// item.  Estimates satisfy `f_i ≤ estimate(i) ≤ f_i + m/k`.  Like Misra-Gries it
/// writes on every single update, so its state-change count is `Θ(m)`.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    counters: FastTrackedMap<u64, u64>,
    k: usize,
    name: String,
    tracker: StateTracker,
}

impl SpaceSaving {
    /// Creates a summary monitoring `k ≥ 1` items.
    pub fn new(k: usize) -> Self {
        Self::with_tracker(&StateTracker::new(), k)
    }

    /// Creates a summary attached to a caller-supplied tracker (e.g. a lean one from
    /// [`StateTracker::lean`], which makes the summary `Send` for sharded runs).
    pub fn with_tracker(tracker: &StateTracker, k: usize) -> Self {
        assert!(k >= 1);
        Self {
            counters: FastTrackedMap::new(tracker),
            k,
            name: format!("SpaceSaving(k={k})"),
            tracker: tracker.clone(),
        }
    }

    /// Creates a summary sized for additive error `ε·m` (`k = ⌈1/ε⌉`).
    pub fn for_epsilon(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        Self::new((1.0 / eps).ceil() as usize)
    }

    /// Number of monitored slots.
    pub fn capacity(&self) -> usize {
        self.k
    }

    fn min_entry(&self) -> Option<(u64, u64)> {
        self.counters
            .iter_untracked()
            .map(|(&k, &v)| (k, v))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
    }
}

impl StreamAlgorithm for SpaceSaving {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        if self.counters.contains_key(&item) {
            self.counters.modify(&item, |c| c + 1);
        } else if self.counters.len() < self.k {
            self.counters.insert(item, 1);
        } else {
            let (min_item, min_count) = self.min_entry().expect("non-empty table");
            self.counters.remove(&min_item);
            self.counters.insert(item, min_count + 1);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Run-length kernel: after its first occurrence the item is monitored (it is
    /// either inserted or inherits the evicted minimum), and increments never evict
    /// the incremented item, so the rest of the run collapses into the shared
    /// `bulk_count_run` step.
    fn process_run(&mut self, item: u64, count: u64) {
        if count == 0 {
            return;
        }
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(count);
        let mut done = 0;
        if self.counters.peek(&item).is_none() {
            tracker.enter_epoch(first);
            self.process_item(item);
            done = 1;
        }
        crate::bulk_count_run(
            &tracker,
            &mut self.counters,
            item,
            first + done,
            count - done,
        );
    }
}

impl Mergeable for SpaceSaving {
    /// Overestimate-preserving merge (Cafaro et al. style): an item absent from one
    /// table inherits that table's minimum counter (its largest possible frequency
    /// there), the union is summed, and the `k` largest combined counters are kept.
    /// Surviving items satisfy `f_i ≤ estimate(i) ≤ f_i + m_a/k + m_b/k`.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.k, other.k,
            "SpaceSaving shards must share the monitored capacity k"
        );
        self.tracker.begin_epoch();
        self.tracker.record_reads(other.counters.len() as u64);
        // An unmonitored item's frequency is bounded by the minimum counter — and by 0
        // when the table never filled (then every seen item is monitored).
        let min_self = if self.counters.len() == self.k {
            self.min_entry().map_or(0, |(_, c)| c)
        } else {
            0
        };
        let min_other = if other.counters.len() == other.k {
            other.min_entry().map_or(0, |(_, c)| c)
        } else {
            0
        };
        let mut combined: Vec<(u64, u64)> = self
            .counters
            .iter_untracked()
            .map(|(&item, &c)| {
                (
                    item,
                    c + other.counters.peek(&item).copied().unwrap_or(min_other),
                )
            })
            .collect();
        for (&item, &c) in other.counters.iter_untracked() {
            if self.counters.peek(&item).is_none() {
                combined.push((item, c + min_self));
            }
        }
        combined.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        combined.truncate(self.k);
        let mut kept = fsc_counters::fastmap::fast_set::<u64>();
        kept.extend(combined.iter().map(|&(i, _)| i));
        for key in self.counters.keys_untracked() {
            if !kept.contains(&key) {
                self.counters.remove(&key);
            }
        }
        for (item, count) in combined {
            self.counters.insert(item, count);
        }
    }
}

impl_queryable!(SpaceSaving: [frequency]);

impl Snapshot for SpaceSaving {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `k`, then the monitored table in sorted-key order.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.k);
        crate::write_counter_table(&mut w, &self.counters);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("space_saving capacity"));
        }
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = SpaceSaving::with_tracker(&tracker, k);
        crate::read_counter_table(&mut r, &mut alg.counters)?;
        if alg.counters.len() > k {
            return Err(SnapshotError::Corrupt(
                "space_saving table exceeds capacity",
            ));
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for SpaceSaving {
    fn estimate(&self, item: u64) -> f64 {
        self.counters.get(&item).copied().unwrap_or(0) as f64
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.counters.keys_untracked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn estimates_are_overestimates_with_bounded_error() {
        let stream = zipf_stream(1 << 12, 20_000, 1.2, 8);
        let truth = FrequencyVector::from_stream(&stream);
        let mut ss = SpaceSaving::new(64);
        ss.process_stream(&stream);
        let bound = stream.len() as f64 / 64.0;
        for (item, f) in truth.top_k(10) {
            let est = ss.estimate(item);
            assert!(est + 1e-9 >= f as f64, "SpaceSaving must not underestimate");
            assert!(est <= f as f64 + bound + 1e-9, "error bound violated");
        }
    }

    #[test]
    fn table_never_exceeds_capacity() {
        let stream = zipf_stream(1 << 14, 30_000, 0.5, 2);
        let mut ss = SpaceSaving::new(20);
        ss.process_stream(&stream);
        assert_eq!(ss.tracked_items().len(), 20);
        assert_eq!(ss.capacity(), 20);
    }

    #[test]
    fn writes_happen_on_every_update() {
        let stream = zipf_stream(1 << 10, 5_000, 1.0, 6);
        let mut ss = SpaceSaving::new(16);
        ss.process_stream(&stream);
        assert_eq!(ss.report().state_changes, 5_000);
    }

    #[test]
    fn sharded_merge_keeps_overestimates_within_the_combined_bound() {
        let stream = zipf_stream(1 << 12, 24_000, 1.2, 23);
        let truth = FrequencyVector::from_stream(&stream);
        let k = 64;
        let (left, right) = stream.split_at(stream.len() / 2);
        let mut a = SpaceSaving::new(k);
        a.process_stream(left);
        let mut b = SpaceSaving::new(k);
        b.process_stream(right);
        a.merge_from(&b);
        assert!(a.tracked_items().len() <= k);
        // Per-shard error is m_shard/k, so the merged bound is (m_a + m_b)/k.
        let bound = stream.len() as f64 / k as f64;
        for (item, f) in truth.top_k(10) {
            let est = a.estimate(item);
            assert!(
                est + 1e-9 >= f as f64,
                "merged SpaceSaving must not underestimate {item}: est {est}, true {f}"
            );
            assert!(
                est <= f as f64 + bound + 1e-9,
                "item {item}: merged est {est}, true {f}, bound {bound}"
            );
        }
    }

    #[test]
    fn top_heavy_item_is_reported() {
        let mut stream: Vec<u64> = vec![7; 400];
        stream.extend(zipf_stream(1 << 10, 2_000, 0.3, 1).iter().map(|x| x + 1000));
        fsc_streamgen::shuffle(&mut stream, 5);
        let mut ss = SpaceSaving::for_epsilon(0.05);
        ss.process_stream(&stream);
        let hh = ss.heavy_hitters(stream.len() as f64 * 0.1);
        assert!(hh.iter().any(|&(i, _)| i == 7));
    }
}
