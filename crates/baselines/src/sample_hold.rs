//! The classic Sample-and-Hold of Estan and Varghese [EV02].

use fsc_counters::fastmap::FastTrackedMap;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stable checkpoint-header id of [`SampleAndHoldClassic`].
const SNAPSHOT_ID: &str = "sample_and_hold_classic";

/// Classic Sample-and-Hold: each packet is sampled with a fixed probability; once an
/// item is sampled, an exact counter is created and incremented on *every* subsequent
/// occurrence, and the counter is kept until the end of the stream.
///
/// Section 1.4 of the paper contrasts its algorithm with this one on two points:
/// (1) classic Sample-and-Hold never deletes counters, so its space can grow with the
/// number of sampled items rather than being capped; (2) its counters are exact, so
/// every occurrence of a held item is a state change.  Both issues are fixed by the
/// paper's `SampleAndHold` (bounded counter table with time-bucketed maintenance, and
/// Morris counters).
#[derive(Debug, Clone)]
pub struct SampleAndHoldClassic {
    counters: FastTrackedMap<u64, u64>,
    sample_prob: f64,
    rng: StdRng,
    name: String,
    tracker: StateTracker,
}

impl SampleAndHoldClassic {
    /// Creates an instance sampling each packet with probability `sample_prob`.
    pub fn new(sample_prob: f64, seed: u64) -> Self {
        Self::with_tracker(&StateTracker::new(), sample_prob, seed)
    }

    /// Creates an instance attached to a caller-supplied tracker (e.g. an
    /// address-tracked one for wear analysis, or a lean one for sharded runs).
    pub fn with_tracker(tracker: &StateTracker, sample_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&sample_prob));
        Self {
            counters: FastTrackedMap::new(tracker),
            sample_prob,
            rng: StdRng::seed_from_u64(seed),
            name: format!("SampleAndHold[EV02](p={sample_prob})"),
            tracker: tracker.clone(),
        }
    }

    /// The per-packet sampling probability.
    pub fn sample_prob(&self) -> f64 {
        self.sample_prob
    }

    /// Number of held counters.
    pub fn held(&self) -> usize {
        self.counters.len()
    }
}

impl StreamAlgorithm for SampleAndHoldClassic {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        if self.counters.contains_key(&item) {
            self.counters.modify(&item, |c| c + 1);
        } else if self.rng.gen::<f64>() < self.sample_prob {
            self.counters.insert(item, 1);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

impl_queryable!(SampleAndHoldClassic: [frequency]);

impl Snapshot for SampleAndHoldClassic {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `sample_prob`, the live rng state (sampling decisions
    /// after a restore continue the exact sequence), then the held-counter table.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.f64(self.sample_prob);
        for word in self.rng.state() {
            w.u64(word);
        }
        crate::write_counter_table(&mut w, &self.counters);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let sample_prob = r.f64()?;
        if !(0.0..=1.0).contains(&sample_prob) {
            return Err(SnapshotError::Corrupt("sample probability out of range"));
        }
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = SampleAndHoldClassic::with_tracker(&tracker, sample_prob, 0);
        alg.rng = StdRng::from_state(rng_state);
        crate::read_counter_table(&mut r, &mut alg.counters)?;
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for SampleAndHoldClassic {
    fn estimate(&self, item: u64) -> f64 {
        self.counters.get(&item).copied().unwrap_or(0) as f64
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.counters.keys_untracked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::planted::single_heavy_hitter;
    use fsc_streamgen::uniform::uniform_stream;

    #[test]
    fn heavy_items_are_caught_and_counted_almost_exactly() {
        let stream = single_heavy_hitter(1 << 14, 20_000, 2_000, 3);
        let mut sh = SampleAndHoldClassic::new(0.01, 7);
        sh.process_stream(&stream);
        let est = sh.estimate(0);
        // The heavy hitter is sampled within its first few hundred occurrences w.h.p.,
        // so the held counter captures most of its 2000 occurrences.
        assert!(est > 1_500.0, "estimate {est} too low");
        assert!(est <= 2_000.0, "Sample-and-Hold never overestimates");
    }

    #[test]
    fn held_counters_grow_with_sampled_items_not_with_a_cap() {
        let stream = uniform_stream(1 << 16, 50_000, 1);
        let mut sh = SampleAndHoldClassic::new(0.05, 2);
        sh.process_stream(&stream);
        // ~5% of 50k distinct-ish items get a counter: thousands of counters, far more
        // than a capped table would allow.
        assert!(sh.held() > 1_500, "held {} counters", sh.held());
        assert!(sh.space_words() > 4_500);
    }

    #[test]
    fn state_changes_scale_with_held_traffic() {
        let stream = single_heavy_hitter(1 << 14, 10_000, 5_000, 4);
        let mut sh = SampleAndHoldClassic::new(0.002, 9);
        sh.process_stream(&stream);
        let r = sh.report();
        // Every occurrence of the held heavy hitter after sampling writes: the
        // state-change count is dominated by the heavy item's frequency, i.e. it is
        // NOT sublinear in m when a single item dominates.
        assert!(r.state_changes > 3_000, "state changes {}", r.state_changes);
    }

    #[test]
    fn zero_probability_never_holds_anything() {
        let stream = uniform_stream(100, 1_000, 5);
        let mut sh = SampleAndHoldClassic::new(0.0, 1);
        sh.process_stream(&stream);
        assert_eq!(sh.held(), 0);
        assert_eq!(sh.estimate(5), 0.0);
        assert_eq!(sh.report().state_changes, 0);
        assert_eq!(sh.sample_prob(), 0.0);
    }
}
