//! A pick-and-drop style sampler in the spirit of [BO13, BKSV14].
//!
//! These algorithms sample candidate items throughout the stream, maintain a temporary
//! counter for the current candidate, and *drop* the candidate whenever a newly sampled
//! item's local count beats it.  Section 1.4 of the paper explains why this local
//! comparison fails for `L_p` heavy hitters with `p < 3`: on the block-structured
//! counterexample stream, pseudo-heavy items look locally larger than the true heavy
//! hitter, so the heavy hitter is repeatedly dropped.  Experiment F6 reproduces exactly
//! that failure, and the paper's time-bucketed counter maintenance avoids it.
//!
//! This implementation keeps the essential mechanism (per-block sampling, candidate
//! replacement by local-count comparison, several independent rows) without the full
//! parameter schedule of [BO13], which is all that is needed to exhibit the phenomenon.

use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm, TrackedCell,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stable checkpoint-header id of [`PickAndDrop`].
const SNAPSHOT_ID: &str = "pick_and_drop";

#[derive(Debug, Clone)]
struct Row {
    /// Current candidate item and its accumulated count.
    candidate: TrackedCell<(u64, u64)>,
    /// Pending sample for the current block: (item, count within the block).
    pending: TrackedCell<(u64, u64)>,
    /// Position within the current block at which a new sample is picked.
    pick_offset: usize,
    has_candidate: bool,
    has_pending: bool,
}

/// A pick-and-drop style heavy-hitter sampler with `rows` independent rows and a fixed
/// block length.
#[derive(Debug, Clone)]
pub struct PickAndDrop {
    rows: Vec<Row>,
    block_len: usize,
    pos_in_block: usize,
    rng: StdRng,
    name: String,
    tracker: StateTracker,
}

impl PickAndDrop {
    /// Creates a sampler with `rows ≥ 1` rows and blocks of `block_len ≥ 1` updates.
    pub fn new(block_len: usize, rows: usize, seed: u64) -> Self {
        Self::with_tracker(&StateTracker::new(), block_len, rows, seed)
    }

    /// Creates a sampler attached to a caller-supplied tracker (e.g. an
    /// address-tracked one for wear analysis).
    pub fn with_tracker(tracker: &StateTracker, block_len: usize, rows: usize, seed: u64) -> Self {
        assert!(block_len >= 1 && rows >= 1);
        let tracker = tracker.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Row> = (0..rows)
            .map(|_| Row {
                candidate: TrackedCell::new(&tracker, (0, 0)),
                pending: TrackedCell::new(&tracker, (0, 0)),
                pick_offset: rng.gen_range(0..block_len),
                has_candidate: false,
                has_pending: false,
            })
            .collect();
        Self {
            name: format!("PickAndDrop(b={block_len},r={})", rows.len()),
            rows,
            block_len,
            pos_in_block: 0,
            rng,
            tracker,
        }
    }

    /// The block length used for local comparisons.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Current candidates (one per row) with their accumulated counts.
    pub fn candidates(&self) -> Vec<(u64, u64)> {
        self.rows
            .iter()
            .filter(|r| r.has_candidate)
            .map(|r| *r.candidate.peek())
            .collect()
    }

    fn end_of_block(&mut self) {
        for row in &mut self.rows {
            if row.has_pending {
                let pending = *row.pending.peek();
                let candidate = *row.candidate.peek();
                // Local comparison: the pending block-sample replaces the candidate if
                // its local count is at least the candidate's accumulated count.
                if !row.has_candidate || pending.1 >= candidate.1 {
                    row.candidate.write(pending);
                    row.has_candidate = true;
                }
                row.has_pending = false;
            }
            row.pick_offset = self.rng.gen_range(0..self.block_len);
        }
    }
}

impl StreamAlgorithm for PickAndDrop {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        for row in &mut self.rows {
            // Count occurrences of the held candidate.
            if row.has_candidate && row.candidate.peek().0 == item {
                row.candidate.modify(|&(it, c)| (it, c + 1));
            }
            // Start or advance the pending block sample.
            if row.has_pending {
                if row.pending.peek().0 == item {
                    row.pending.modify(|&(it, c)| (it, c + 1));
                }
            } else if self.pos_in_block == row.pick_offset {
                row.pending.write((item, 1));
                row.has_pending = true;
            }
        }
        self.pos_in_block += 1;
        if self.pos_in_block == self.block_len {
            self.pos_in_block = 0;
            self.end_of_block();
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

impl_queryable!(PickAndDrop: [frequency]);

impl Snapshot for PickAndDrop {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `block_len`, row count, `pos_in_block`, the live rng
    /// state, then per row: pick offset, flags, and the candidate/pending cells.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.block_len);
        w.usize(self.rows.len());
        w.usize(self.pos_in_block);
        for word in self.rng.state() {
            w.u64(word);
        }
        for row in &self.rows {
            w.usize(row.pick_offset);
            w.bool(row.has_candidate);
            w.bool(row.has_pending);
            let (item, count) = *row.candidate.peek();
            w.u64(item);
            w.u64(count);
            let (item, count) = *row.pending.peek();
            w.u64(item);
            w.u64(count);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let block_len = r.usize()?;
        let row_count = r.usize()?;
        let pos_in_block = r.usize()?;
        // Fixed tail: the rng state (4 × 8 bytes); per row: offset (8) + 2 flags (2)
        // + two cells (32).
        if block_len == 0 || row_count == 0 || r.remaining() < 32 + row_count.saturating_mul(42) {
            return Err(SnapshotError::Corrupt("pick_and_drop structure"));
        }
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let tracker = StateTracker::of_kind(state.kind);
        // Cells are rebuilt in construction order, so their tracked addresses match
        // the originals; the seed is irrelevant because offsets and rng state are
        // overwritten below.
        let mut alg = PickAndDrop::with_tracker(&tracker, block_len, row_count, 0);
        alg.pos_in_block = pos_in_block;
        alg.rng = StdRng::from_state(rng_state);
        for row in &mut alg.rows {
            row.pick_offset = r.usize()?;
            if row.pick_offset >= block_len {
                return Err(SnapshotError::Corrupt("pick offset out of range"));
            }
            row.has_candidate = r.bool()?;
            row.has_pending = r.bool()?;
            let candidate = (r.u64()?, r.u64()?);
            row.candidate.set_untracked(candidate);
            let pending = (r.u64()?, r.u64()?);
            row.pending.set_untracked(pending);
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for PickAndDrop {
    fn estimate(&self, item: u64) -> f64 {
        self.candidates()
            .into_iter()
            .filter(|&(i, _)| i == item)
            .map(|(_, c)| c as f64)
            .fold(0.0, f64::max)
    }

    fn tracked_items(&self) -> Vec<u64> {
        let mut items: Vec<u64> = self.candidates().into_iter().map(|(i, _)| i).collect();
        items.sort_unstable();
        items.dedup();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::blocks::counterexample_stream;
    use fsc_streamgen::planted::single_heavy_hitter;

    #[test]
    fn finds_an_overwhelming_heavy_hitter() {
        // When one item makes up a third of the stream, some block sample lands on it
        // and its accumulated count beats everything else.
        let stream = single_heavy_hitter(1 << 12, 8_000, 4_000, 2);
        let mut pd = PickAndDrop::new(64, 8, 3);
        pd.process_stream(&stream);
        assert!(pd.tracked_items().contains(&0));
        assert!(pd.estimate(0) > 500.0);
    }

    #[test]
    fn misses_the_heavy_hitter_on_the_counterexample_stream() {
        // The Section 1.4 phenomenon: pseudo-heavy items dominate every local
        // comparison, so the true heavy hitter (item 0) is dropped.
        let cx = counterexample_stream(16);
        let mut pd = PickAndDrop::new(cx.scale * cx.scale, 8, 7);
        pd.process_stream(&cx.stream);
        let found = pd.tracked_items().contains(&cx.heavy_hitter);
        assert!(
            !found,
            "pick-and-drop unexpectedly found the heavy hitter; candidates: {:?}",
            pd.candidates()
        );
    }

    #[test]
    fn space_is_constant_in_the_stream_length() {
        let stream = single_heavy_hitter(1 << 12, 20_000, 100, 5);
        let mut pd = PickAndDrop::new(128, 4, 1);
        pd.process_stream(&stream);
        assert!(pd.space_words() <= 4 * 4 + 4, "space {}", pd.space_words());
        assert_eq!(pd.block_len(), 128);
    }

    #[test]
    fn state_changes_are_sublinear_on_flat_streams() {
        let stream = fsc_streamgen::uniform::permutation_stream(1 << 14, 9);
        let mut pd = PickAndDrop::new(256, 4, 2);
        pd.process_stream(&stream);
        let r = pd.report();
        // On an all-distinct stream a row writes only when a block sample is taken:
        // about rows · (m / block_len) writes in total.
        assert!(
            r.state_changes < (stream.len() / 32) as u64,
            "state changes {} not sublinear",
            r.state_changes
        );
    }
}
