//! Exact counting with a full frequency table (the "no sketching" reference point).

use fsc_counters::fastmap::FastTrackedMap;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, EntropyEstimator, FrequencyEstimator, Mergeable, MomentEstimator, Snapshot,
    SnapshotError, SnapshotReader, SnapshotWriter, StateTracker, StreamAlgorithm, SupportRecovery,
};

/// Stable checkpoint-header id of [`ExactCounting`].
const SNAPSHOT_ID: &str = "exact_counting";

/// Maintains the exact frequency of every distinct item in a tracked hash map.
///
/// Space is `Θ(F_0)` words and every update writes, so both the space and the
/// state-change count are linear.  It anchors the accuracy axis of every experiment
/// (its estimates are exact) and the cost axis (its write count is the worst case).
#[derive(Debug, Clone)]
pub struct ExactCounting {
    counts: FastTrackedMap<u64, u64>,
    tracker: StateTracker,
    /// Moment order reported through [`MomentEstimator`].
    p: f64,
}

impl ExactCounting {
    /// Creates an exact counter; `p` is the moment order reported by
    /// [`MomentEstimator::estimate_moment`].
    pub fn new(p: f64) -> Self {
        Self::with_tracker(&StateTracker::new(), p)
    }

    /// Creates an exact counter attached to a caller-supplied tracker (e.g. a lean one
    /// from [`StateTracker::lean`], which makes the counter `Send` for sharded runs).
    pub fn with_tracker(tracker: &StateTracker, p: f64) -> Self {
        Self {
            counts: FastTrackedMap::new(tracker),
            tracker: tracker.clone(),
            p,
        }
    }

    /// Number of distinct items seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total number of updates counted (`Σ_i f_i`).  Equals the number of epochs for a
    /// standalone run and, unlike an epoch count, stays correct after
    /// [`Mergeable::merge_from`] folds in another shard's table.
    pub fn stream_len(&self) -> u64 {
        self.counts.iter_untracked().map(|(_, &c)| c).sum()
    }

    /// Counts in sorted-key order.  Floating-point reductions over the table
    /// (moments, entropy) sum in this order so their results are a function of the
    /// table *contents* alone — hash-map iteration order is an implementation detail
    /// that checkpoint/restore does not preserve, and f64 addition is not
    /// order-invariant at the last bit.
    fn sorted_counts(&self) -> Vec<u64> {
        let mut entries: Vec<(u64, u64)> = self
            .counts
            .iter_untracked()
            .map(|(&k, &v)| (k, v))
            .collect();
        entries.sort_unstable();
        entries.into_iter().map(|(_, c)| c).collect()
    }
}

impl Mergeable for ExactCounting {
    /// Exact merge: frequency tables of disjoint substreams add componentwise.
    fn merge_from(&mut self, other: &Self) {
        self.tracker.begin_epoch();
        self.tracker.record_reads(other.counts.len() as u64);
        for (&item, &count) in other.counts.iter_untracked() {
            if self.counts.peek(&item).is_some() {
                self.counts.modify(&item, |c| c + count);
            } else {
                self.counts.insert(item, count);
            }
        }
    }
}

impl StreamAlgorithm for ExactCounting {
    fn name(&self) -> &str {
        "ExactCounting"
    }

    fn process_item(&mut self, item: u64) {
        if self.counts.contains_key(&item) {
            self.counts.modify(&item, |c| c + 1);
        } else {
            self.counts.insert(item, 1);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Run-length kernel: after the item's first occurrence its counter exists, so
    /// the rest of the run collapses into the shared
    /// `bulk_count_run` step.
    fn process_run(&mut self, item: u64, count: u64) {
        if count == 0 {
            return;
        }
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(count);
        let mut done = 0;
        if self.counts.peek(&item).is_none() {
            tracker.enter_epoch(first);
            self.process_item(item);
            done = 1;
        }
        crate::bulk_count_run(&tracker, &mut self.counts, item, first + done, count - done);
    }
}

impl FrequencyEstimator for ExactCounting {
    fn estimate(&self, item: u64) -> f64 {
        self.counts.get(&item).copied().unwrap_or(0) as f64
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.counts.keys_untracked()
    }
}

impl MomentEstimator for ExactCounting {
    fn p(&self) -> f64 {
        self.p
    }

    fn estimate_moment(&self) -> f64 {
        self.sorted_counts()
            .into_iter()
            .map(|c| (c as f64).powf(self.p))
            .sum()
    }
}

impl EntropyEstimator for ExactCounting {
    fn estimate_entropy(&self) -> f64 {
        let m = self.stream_len() as f64;
        if m == 0.0 {
            return 0.0;
        }
        self.sorted_counts()
            .into_iter()
            .map(|c| {
                let q = c as f64 / m;
                -q * q.log2()
            })
            .sum()
    }
}

impl_queryable!(ExactCounting: [frequency, moment, entropy, support]);

impl Snapshot for ExactCounting {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, moment order `p`, then the frequency table in
    /// sorted-key order.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.f64(self.p);
        crate::write_counter_table(&mut w, &self.counts);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let p = r.f64()?;
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = ExactCounting::with_tracker(&tracker, p);
        crate::read_counter_table(&mut r, &mut alg.counts)?;
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl SupportRecovery for ExactCounting {
    fn recovered_support(&self) -> Vec<u64> {
        let mut s = self.counts.keys_untracked();
        s.sort_unstable();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_and_moments_are_exact() {
        let mut alg = ExactCounting::new(2.0);
        alg.process_stream(&[1, 2, 1, 3, 1, 2, 4, 1]);
        assert_eq!(alg.estimate(1), 4.0);
        assert_eq!(alg.estimate(9), 0.0);
        assert_eq!(alg.distinct(), 4);
        assert_eq!(alg.stream_len(), 8);
        assert_eq!(alg.estimate_moment(), 22.0);
        assert!((alg.estimate_entropy() - 1.75).abs() < 1e-12);
        assert_eq!(alg.recovered_support(), vec![1, 2, 3, 4]);
        assert_eq!(alg.p(), 2.0);
    }

    #[test]
    fn every_update_changes_state() {
        let mut alg = ExactCounting::new(1.0);
        let stream: Vec<u64> = (0..500).map(|i| i % 7).collect();
        alg.process_stream(&stream);
        let r = alg.report();
        assert_eq!(r.epochs, 500);
        assert_eq!(
            r.state_changes, 500,
            "exact counting writes on every update"
        );
    }

    #[test]
    fn heavy_hitters_come_from_the_exact_table() {
        let mut alg = ExactCounting::new(1.0);
        alg.process_stream(&[5, 5, 5, 5, 6, 7]);
        let hh = alg.heavy_hitters(3.0);
        assert_eq!(hh, vec![(5, 4.0)]);
    }
}
