//! The CountSketch [CCF04].

use crate::{LANE_BLOCK, PREFETCH_MIN_BYTES};
use fsc_counters::hashing::{multiply_shift_bucket, FoldedItem, FourWise, PolyHash};
use fsc_counters::lanes;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Mergeable, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, StateTracker, StreamAlgorithm, TrackedMatrix,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stable checkpoint-header id of [`CountSketch`].
const SNAPSHOT_ID: &str = "count_sketch";

/// A CountSketch with `depth` rows of `width` signed counters.
///
/// Each row hashes the item to a bucket and adds a 4-wise-independent sign; the
/// estimate is the median over rows of the signed bucket values.  Estimates satisfy
/// `|estimate(i) − f_i| ≤ ε·‖f‖_2` for `width = O(1/ε²)`, making it the classic `L_2`
/// heavy-hitters sketch — the row of Table 1 directly above the paper's contribution.
/// Like CountMin it writes `depth` counters per update: `Θ(m)` state changes.
///
/// Counters live in one contiguous [`TrackedMatrix`] (one allocation for the whole
/// sketch) with accounting identical to the former per-row vectors.
#[derive(Debug, Clone)]
pub struct CountSketch {
    table: TrackedMatrix<i64>,
    bucket_hashes: Vec<PolyHash>,
    /// 4-wise sign functions in power form (same draws as the former `Vec<PolyHash>`,
    /// converted for the folded fast path; hash values unchanged).
    sign_hashes: Vec<FourWise>,
    width: usize,
    seed: u64,
    /// Lane width of the batch kernel (1 = scalar fallback); answers and accounting
    /// are bit-identical at every width, so this is purely a speed knob.
    lanes: usize,
    name: String,
    tracker: StateTracker,
}

impl CountSketch {
    /// Creates a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        Self::with_tracker(&StateTracker::new(), width, depth, seed)
    }

    /// Creates a sketch attached to a caller-supplied tracker (e.g. a lean one from
    /// [`StateTracker::lean`], which makes the sketch `Send` for sharded runs).
    pub fn with_tracker(tracker: &StateTracker, width: usize, depth: usize, seed: u64) -> Self {
        assert!(width >= 1 && depth >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let table = TrackedMatrix::filled(tracker, depth, width, 0i64);
        let bucket_hashes = (0..depth).map(|_| PolyHash::two_wise(&mut rng)).collect();
        let sign_hashes = (0..depth)
            .map(|_| FourWise::from_poly(&PolyHash::four_wise(&mut rng)))
            .collect();
        Self {
            table,
            bucket_hashes,
            sign_hashes,
            width,
            seed,
            lanes: lanes::DEFAULT_LANE_WIDTH,
            name: format!("CountSketch({depth}x{width})"),
            tracker: tracker.clone(),
        }
    }

    /// Selects the lane width of the batch kernel (`1`, `2`, `4`, or `8`; `1` is the
    /// scalar fallback).  Every width produces bit-identical answers, `StateReport`s,
    /// and wear tables — the batch-law lane sweep pins this — so the choice only
    /// affects throughput.  Not serialized: a restored sketch uses the default.
    ///
    /// # Panics
    ///
    /// If `lanes` is not a supported width.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(
            lanes::is_supported_width(lanes),
            "unsupported lane width {lanes} (supported: {:?})",
            lanes::LANE_WIDTHS
        );
        self.lanes = lanes;
        self
    }

    /// Creates a sketch with `L_2` error `ε·‖f‖_2` and failure probability `δ`.
    pub fn for_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let width = (3.0 / (eps * eps)).ceil() as usize;
        let depth = (4.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize | 1;
        Self::new(width, depth, seed)
    }

    /// Sketch width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth.
    pub fn depth(&self) -> usize {
        self.table.rows()
    }
}

impl StreamAlgorithm for CountSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        let folded = FoldedItem::new(item);
        for (r, (bucket_hash, sign_hash)) in
            self.bucket_hashes.iter().zip(&self.sign_hashes).enumerate()
        {
            let bucket =
                multiply_shift_bucket(bucket_hash.hash_u64_folded(folded.x), self.width, 61);
            let sign = sign_hash.sign_folded(&folded);
            self.table.update(r, bucket, |c| c + sign);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Lane-packed blocked batch kernel (see [`CountMin`](crate::CountMin) for the
    /// shape): the block's items are folded once, all row buckets and signs are
    /// evaluated lane-packed into block buffers, the probe cells are touched early
    /// (gated software prefetch), and the scatter phase bumps the signed counters
    /// and charges the tracker in bulk.  A ±1 increment always changes an `i64`
    /// cell, so the bulk charge equals the per-cell accounting exactly (the
    /// batch-law tests pin report, wear, and answer equality at every lane width).
    fn process_batch(&mut self, items: &[u64]) {
        match self.lanes {
            2 => self.process_batch_lanes::<2>(items),
            4 => self.process_batch_lanes::<4>(items),
            8 => self.process_batch_lanes::<8>(items),
            _ => self.process_batch_lanes::<1>(items),
        }
    }
}

impl CountSketch {
    /// The monomorphized batch kernel behind [`StreamAlgorithm::process_batch`]
    /// (`W = 1` is the bit-identical scalar fallback running the same block
    /// structure).  Phases per block: fold every item once; per row, evaluate the
    /// 2-wise bucket polynomial ([`lanes::poly_hash_folded`]) and the 4-wise
    /// power-form signs ([`lanes::four_wise_signs`]) over lane groups into cell and
    /// sign buffers; optionally touch the probe cells early (untracked reads, see
    /// DESIGN §1.10); then scatter the signed bumps and charge reads plus
    /// per-item epochs/changed addresses in two bulk tracker calls.
    fn process_batch_lanes<const W: usize>(&mut self, items: &[u64]) {
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(items.len() as u64);
        let depth = self.table.rows();
        let width = self.width;
        let base = self.table.addr_of(0, 0);
        let elem_words = self.table.elem_words();
        let prefetch = depth * width * std::mem::size_of::<i64>() > PREFETCH_MIN_BYTES;
        let mut folded: Vec<FoldedItem> = Vec::with_capacity(LANE_BLOCK);
        let mut addrs = vec![0usize; LANE_BLOCK * depth];
        let mut cells = vec![0usize; LANE_BLOCK * depth];
        let mut signs = vec![0i64; LANE_BLOCK * depth];
        for (b, block) in items.chunks(LANE_BLOCK).enumerate() {
            // Fold phase: each item's x, x², x³ residues, once per block.
            let full = block.len() - block.len() % W;
            folded.clear();
            for g in (0..full).step_by(W) {
                let xs: [u64; W] = block[g..g + W].try_into().unwrap();
                folded.extend(lanes::fold_items::<W>(&xs));
            }
            folded.extend(block[full..].iter().map(|&x| FoldedItem::new(x)));
            // Hash phase, row-major (one row's hash state hot across the block).
            for (r, (bucket_hash, sign_hash)) in
                self.bucket_hashes.iter().zip(&self.sign_hashes).enumerate()
            {
                let coefficients = bucket_hash.coefficients();
                let sign_coefficients = sign_hash.coefficients();
                for g in (0..full).step_by(W) {
                    let f: &[FoldedItem; W] = folded[g..g + W].try_into().unwrap();
                    let xs: [u64; W] = std::array::from_fn(|l| f[l].x);
                    let hs = lanes::poly_hash_folded::<W>(coefficients, &xs);
                    let buckets = lanes::multiply_shift_buckets::<W>(&hs, width, 61);
                    let ss = lanes::four_wise_signs::<W>(&sign_coefficients, f);
                    for l in 0..W {
                        cells[(g + l) * depth + r] = r * width + buckets[l];
                        signs[(g + l) * depth + r] = ss[l];
                    }
                }
                for (i, f) in folded.iter().enumerate().skip(full) {
                    let bucket = multiply_shift_bucket(bucket_hash.hash_u64_folded(f.x), width, 61);
                    cells[i * depth + r] = r * width + bucket;
                    signs[i * depth + r] = sign_hash.sign_folded(f);
                }
            }
            // Prefetch phase: touch every probe cell with a plain (untracked) read.
            let data = self.table.as_mut_slice_untracked();
            let probes = block.len() * depth;
            if prefetch {
                let mut touch = 0i64;
                for &cell in &cells[..probes] {
                    touch = touch.wrapping_add(data[cell]);
                }
                std::hint::black_box(touch);
            }
            // Scatter phase with bulk accounting (see CountMin for the argument).
            for (i, (&cell, &sign)) in cells[..probes].iter().zip(&signs[..probes]).enumerate() {
                data[cell] += sign;
                addrs[i] = base + cell * elem_words;
            }
            tracker.record_reads(probes as u64);
            tracker.record_scatter_epochs(first + (b * LANE_BLOCK) as u64, depth, &addrs[..probes]);
        }
    }
}

impl Mergeable for CountSketch {
    /// Exact merge by signed-counter addition: with identical dimensions and hash seed,
    /// the merged sketch equals the sketch of the concatenated stream.
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.width == other.width
                && self.table.rows() == other.table.rows()
                && self.seed == other.seed,
            "CountSketch shards must share width, depth, and hash seed"
        );
        self.tracker.begin_epoch();
        self.tracker.record_reads(self.table.len() as u64);
        for r in 0..self.table.rows() {
            for (c, &v) in other.table.row_untracked(r).iter().enumerate() {
                if v != 0 {
                    self.table.update(r, c, |x| x + v);
                }
            }
        }
    }
}

impl_queryable!(CountSketch: [frequency]);

impl Snapshot for CountSketch {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout mirrors [`CountMin`](crate::CountMin): tracker state, dimensions, hash
    /// seed, then the signed counter table (hash functions re-derive from the seed).
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.width);
        w.usize(self.table.rows());
        w.u64(self.seed);
        for &v in self.table.iter_untracked() {
            w.i64(v);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let width = r.usize()?;
        let depth = r.usize()?;
        let seed = r.u64()?;
        let plausible = width
            .checked_mul(depth)
            .is_some_and(|c| c >= 1 && r.remaining() >= c.saturating_mul(8));
        if !plausible {
            return Err(SnapshotError::Corrupt("count_sketch dimensions"));
        }
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = CountSketch::with_tracker(&tracker, width, depth, seed);
        for cell in alg.table.as_mut_slice_untracked() {
            *cell = r.i64()?;
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for CountSketch {
    fn estimate(&self, item: u64) -> f64 {
        let mut estimates: Vec<f64> = self
            .bucket_hashes
            .iter()
            .zip(&self.sign_hashes)
            .enumerate()
            .map(|(r, (bucket_hash, sign_hash))| {
                let bucket = bucket_hash.hash_bucket(item, self.width);
                (sign_hash.sign(item) * self.table.peek(r, bucket)) as f64
            })
            .collect();
        estimates.sort_by(f64::total_cmp);
        estimates[estimates.len() / 2]
    }

    /// CountSketch has no explicit key set (see [`CountMin`](crate::CountMin)).
    fn tracked_items(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn l2_error_bound_holds_for_top_items() {
        let stream = zipf_stream(1 << 12, 30_000, 1.1, 5);
        let truth = FrequencyVector::from_stream(&stream);
        let eps = 0.05;
        let mut cs = CountSketch::for_error(eps, 0.02, 3);
        cs.process_stream(&stream);
        let l2 = truth.lp(2.0);
        let mut violations = 0;
        for (item, f) in truth.top_k(40) {
            if (cs.estimate(item) - f as f64).abs() > 2.0 * eps * l2 {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "{violations} of 40 items violated the L2 bound"
        );
    }

    #[test]
    fn dimensions_and_space() {
        let cs = CountSketch::for_error(0.1, 0.05, 1);
        assert_eq!(cs.width(), 300);
        assert!(cs.depth() % 2 == 1);
        assert_eq!(cs.space_words(), cs.width() * cs.depth());
    }

    #[test]
    fn state_changes_are_linear() {
        let stream = zipf_stream(512, 3_000, 1.0, 2);
        let mut cs = CountSketch::new(128, 5, 4);
        cs.process_stream(&stream);
        assert_eq!(cs.report().state_changes, 3_000);
    }

    #[test]
    fn sharded_merge_equals_the_unsharded_sketch() {
        let stream = zipf_stream(1 << 10, 9_000, 1.2, 8);
        let (left, right) = stream.split_at(2 * stream.len() / 5);
        let mut whole = CountSketch::new(256, 5, 21);
        whole.process_stream(&stream);
        let mut a = CountSketch::new(256, 5, 21);
        a.process_stream(left);
        let mut b = CountSketch::new(256, 5, 21);
        b.process_stream(right);
        a.merge_from(&b);
        for item in 0..64u64 {
            assert_eq!(a.estimate(item), whole.estimate(item), "item {item}");
        }
    }

    #[test]
    fn signs_keep_light_items_near_zero() {
        let stream = zipf_stream(1 << 12, 20_000, 1.3, 6);
        let mut cs = CountSketch::for_error(0.05, 0.02, 9);
        cs.process_stream(&stream);
        // Items that never appeared should typically have small (possibly negative)
        // estimates; individual queries can be unlucky, so check the median over many.
        let mut unseen: Vec<f64> = (0..50u64)
            .map(|k| cs.estimate(u64::MAX - k).abs())
            .collect();
        unseen.sort_by(f64::total_cmp);
        let median = unseen[unseen.len() / 2];
        let l2 = FrequencyVector::from_stream(&stream).lp(2.0);
        assert!(
            median <= 0.2 * l2,
            "median estimate {median} too large vs l2 {l2}"
        );
    }
}
