//! # fsc-baselines — classic streaming algorithms, instrumented for state changes
//!
//! The algorithms the paper compares against (Table 1 and Section 1.4), each built on
//! the tracked-memory substrate of `fsc-state` so that their write behaviour is measured
//! with exactly the same accounting as the paper's algorithms:
//!
//! | Algorithm | Problem | State changes |
//! |-----------|---------|---------------|
//! | [`ExactCounting`] | exact frequencies (reference) | `O(m)` |
//! | [`MisraGries`] \[MG82\] | `L_1` heavy hitters | `O(m)` |
//! | [`SpaceSaving`] \[MAA05\] | `L_1` heavy hitters | `O(m)` |
//! | [`CountMin`] \[CM05\] | `L_1` heavy hitters | `O(m)` |
//! | [`CountSketch`] \[CCF04\] | `L_2` heavy hitters | `O(m)` |
//! | [`AmsSketch`] \[AMS99\] | `F_2` estimation | `O(m)` |
//! | [`SampleAndHoldClassic`] \[EV02\] | frequent items | sublinear, but unbounded counter growth |
//! | [`PickAndDrop`] \[BO13/BKSV14\] | `F_p` heavy hitters | sublinear, but fails below `p = 3` (Section 1.4) |
//!
//! All of them change state on (essentially) every update — the observation that
//! motivates the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ams;
mod count_min;
mod count_sketch;
mod exact;
mod misra_gries;
mod pick_and_drop;
mod sample_hold;
mod space_saving;

pub use ams::AmsSketch;
pub use count_min::CountMin;
pub use count_sketch::CountSketch;
pub use exact::ExactCounting;
pub use misra_gries::MisraGries;
pub use pick_and_drop::PickAndDrop;
pub use sample_hold::SampleAndHoldClassic;
pub use space_saving::SpaceSaving;

/// Items per block in the lane-packed batch kernels of [`CountMin`], [`CountSketch`],
/// and [`AmsSketch`]: the hash phase fills a block's worth of probe cells before the
/// scatter phase touches the table, so the early "prefetch" reads of one block's
/// cells have a whole hash phase of latency to hide behind.  A multiple of the widest
/// lane ([`fsc_counters::lanes::LANE_WIDTHS`]), small enough that a block's cell and
/// sign buffers stay L1-resident at benchmark depths.
pub(crate) const LANE_BLOCK: usize = 256;

/// Counter tables at or below this byte size skip the prefetch touch loop: they are
/// cache-resident, so early reads cannot pull anything closer and only cost cycles.
/// Half a megabyte ≈ the point where scattered probes start missing L2 on the hosts
/// we benchmark; correctness is unaffected either way (prefetch is untracked reads).
pub(crate) const PREFETCH_MIN_BYTES: usize = 512 * 1024;

/// Serializes a `u64 → u64` counter table in sorted-key order (deterministic bytes:
/// two observably identical summaries produce identical checkpoints even though hash
/// map iteration order is an implementation detail).
pub(crate) fn write_counter_table(
    w: &mut fsc_state::SnapshotWriter,
    counters: &fsc_counters::fastmap::FastTrackedMap<u64, u64>,
) {
    let mut entries: Vec<(u64, u64)> = counters.iter_untracked().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    w.usize(entries.len());
    for (key, count) in entries {
        w.u64(key);
        w.u64(count);
    }
}

/// Restores a counter table serialized by [`write_counter_table`] into a freshly
/// constructed (empty) map, without accounting — the caller finishes with
/// [`fsc_state::StateTracker::import_state`].
pub(crate) fn read_counter_table(
    r: &mut fsc_state::SnapshotReader<'_>,
    counters: &mut fsc_counters::fastmap::FastTrackedMap<u64, u64>,
) -> Result<(), fsc_state::SnapshotError> {
    let len = r.len_prefix(16)?;
    for _ in 0..len {
        let key = r.u64()?;
        let count = r.u64()?;
        counters.insert_untracked(key, count);
    }
    Ok(())
}

/// The shared bulk step of the run-length (`process_run`) kernels of the
/// count-increment summaries (ExactCounting, Misra-Gries, SpaceSaving): folds
/// `remaining` occurrences of an `item` that is **already present** in `counters`
/// into one stored `+remaining`, and charges exactly what the per-item path charges
/// per occurrence — 2 reads (`contains_key` + the `modify` lookup) and 1 changed
/// anonymous write, inside its own epoch (`record_run_epochs`).  The epochs
/// `first_epoch..first_epoch + remaining` must be reserved and not yet entered.
///
/// Per-algorithm `process_run` overrides keep only their structure-specific
/// first-occurrence handling (insert, evict-and-inherit, or the Misra-Gries
/// decrement loop) and delegate the collapsible remainder here, so the accounting
/// constants live in one place.  The batch-law tests pin the equivalence.
pub(crate) fn bulk_count_run(
    tracker: &fsc_state::StateTracker,
    counters: &mut fsc_counters::fastmap::FastTrackedMap<u64, u64>,
    item: u64,
    first_epoch: u64,
    remaining: u64,
) {
    if remaining == 0 {
        return;
    }
    *counters
        .get_mut_untracked(&item)
        .expect("bulk_count_run requires the item to hold a counter") += remaining;
    tracker.record_reads(2 * remaining);
    tracker.record_run_epochs(first_epoch, remaining, 1, None);
}
