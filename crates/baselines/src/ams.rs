//! The AMS (Alon-Matias-Szegedy) F₂ sketch [AMS99].

use fsc_counters::fastmap::{fast_map, FastMap};
use fsc_counters::hashing::{FoldedItem, FourWise, PolyHash};
use fsc_counters::lanes;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, Mergeable, MomentEstimator, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, StateTracker, StreamAlgorithm, TrackedMatrix,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stable checkpoint-header id of [`AmsSketch`].
const SNAPSHOT_ID: &str = "ams";

/// Memory budget of the per-batch sign-pattern memo in [`AmsSketch`]'s batch kernel:
/// packed minus-sign bit vectors are cached for at most this many bytes' worth of
/// distinct items per batch (an untracked performance aid, like the reservoir mirror
/// of `SampleAndHold` — the tracked space of the sketch itself is unchanged).
const SIGN_ARENA_BYTES: usize = 2 << 20;

/// The tug-of-war sketch: `groups × per_group` signed counters `Z_j = Σ_i s_j(i)·f_i`
/// with 4-wise independent signs; `F_2` is estimated as the median over groups of the
/// mean of `Z_j²` within a group.
///
/// Every update adds ±1 to every counter, so the state-change count is `Θ(m)` and the
/// word-write count is `Θ(k·m)` — the canonical example of a space-efficient but
/// write-heavy linear sketch (Section 1.4 makes the same point about precision
/// sampling).  Because the per-update work is `Θ(k)` *sign evaluations*, this is the
/// compute-heaviest algorithm in the repository, and the one the specialized
/// [`StreamAlgorithm::process_batch`] kernel speeds up the most: the item is folded
/// once (`x, x², x³ mod 2^61−1`), the signs are evaluated in power form
/// ([`FourWise`], three independent multiplies instead of a serial Horner chain) while
/// walking the contiguous counter row, and the tracker is charged once per update via
/// the bulk accounting API instead of twice per counter.
#[derive(Debug, Clone)]
pub struct AmsSketch {
    /// `groups × per_group` signed counters in one contiguous [`TrackedMatrix`]
    /// (row = group), with accounting identical to the former flat vector.
    counters: TrackedMatrix<i64>,
    /// One 4-wise sign function per counter, in power form, stored flat in counter
    /// order (same coefficient draws as the former `Vec<PolyHash>`; see the
    /// construction).
    signs: Vec<FourWise>,
    groups: usize,
    per_group: usize,
    seed: u64,
    /// Lane width of the sign-evaluation loops in the batch kernel (1 = scalar
    /// fallback); bit-identical at every width, purely a speed knob.
    lanes: usize,
    name: String,
    tracker: StateTracker,
}

impl AmsSketch {
    /// Creates a sketch with `groups` independent groups of `per_group` counters each.
    pub fn new(groups: usize, per_group: usize, seed: u64) -> Self {
        Self::with_tracker(&StateTracker::new(), groups, per_group, seed)
    }

    /// Creates a sketch attached to a caller-supplied tracker (e.g. a lean one from
    /// [`StateTracker::lean`], which makes the sketch `Send` for sharded runs).
    pub fn with_tracker(
        tracker: &StateTracker,
        groups: usize,
        per_group: usize,
        seed: u64,
    ) -> Self {
        assert!(groups >= 1 && per_group >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let total = groups * per_group;
        let counters = TrackedMatrix::filled(tracker, groups, per_group, 0i64);
        // Drawn as 4-wise PolyHash functions (same rng stream as always recorded) and
        // converted to power form for the kernels: hash values are unchanged.
        let signs = (0..total)
            .map(|_| FourWise::from_poly(&PolyHash::four_wise(&mut rng)))
            .collect();
        Self {
            counters,
            signs,
            groups,
            per_group,
            seed,
            lanes: lanes::DEFAULT_LANE_WIDTH,
            name: format!("AMS({groups}x{per_group})"),
            tracker: tracker.clone(),
        }
    }

    /// Selects the lane width of the batch kernel's sign-evaluation loops (`1`, `2`,
    /// `4`, or `8`; `1` is the scalar fallback).  Every width produces bit-identical
    /// answers, `StateReport`s, and wear tables — the batch-law lane sweep pins this
    /// — so the choice only affects throughput.  Not serialized: a restored sketch
    /// uses the default.
    ///
    /// # Panics
    ///
    /// If `lanes` is not a supported width.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(
            lanes::is_supported_width(lanes),
            "unsupported lane width {lanes} (supported: {:?})",
            lanes::LANE_WIDTHS
        );
        self.lanes = lanes;
        self
    }

    /// Creates a sketch achieving relative error `ε` with failure probability `δ`
    /// (`per_group = ⌈8/ε²⌉` counters averaged, `groups = Θ(log 1/δ)` medians).
    pub fn for_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let per_group = (8.0 / (eps * eps)).ceil() as usize;
        let groups = ((4.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize) | 1;
        Self::new(groups, per_group, seed)
    }

    /// Total number of counters.
    pub fn counters(&self) -> usize {
        self.groups * self.per_group
    }
}

impl StreamAlgorithm for AmsSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        let folded = FoldedItem::new(item);
        let per_group = self.per_group;
        for (j, sign_hash) in self.signs.iter().enumerate() {
            let sign = sign_hash.sign_folded(&folded);
            self.counters
                .update(j / per_group, j % per_group, |c| c + sign);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// The blocked batch kernel, in two layers.
    ///
    /// **Compute layer** — the whole per-item cost of an AMS update is `k` 4-wise
    /// sign evaluations, and the sign vector is a *pure function of the item*: the
    /// kernel therefore memoizes, per batch, the packed minus-sign bit pattern of
    /// each distinct item (bounded arena; see `SIGN_ARENA_BYTES`).  The first
    /// occurrence evaluates all `k` signs once — item folded once, power-form
    /// [`FourWise`] evaluation, walking the coefficient array in counter order —
    /// and every further occurrence replays the pattern with one bit-unpack and add
    /// per counter, no modular arithmetic at all.  On repeating streams (Zipf,
    /// bounded universes, netflow traces) this is where the order-of-magnitude
    /// speedup comes from; on an all-distinct stream it degrades gracefully to the
    /// folded evaluation per item.
    ///
    /// **Accounting layer** — per update, the per-item path would charge one element
    /// read and one changed write per counter at consecutive tracked addresses (a ±1
    /// increment always changes an `i64` cell), which is exactly `record_reads(k)`
    /// plus `record_changed_run(base, k)` inside that update's epoch.  The
    /// batch-law tests pin report, wear, and answer equality with the per-item path.
    fn process_batch(&mut self, items: &[u64]) {
        match self.lanes {
            2 => self.process_batch_lanes::<2>(items),
            4 => self.process_batch_lanes::<4>(items),
            8 => self.process_batch_lanes::<8>(items),
            _ => self.process_batch_lanes::<1>(items),
        }
    }
}

impl AmsSketch {
    /// The monomorphized batch kernel behind [`StreamAlgorithm::process_batch`]
    /// (`W = 1` is the bit-identical scalar fallback).  Lanes enter only the two
    /// sign-evaluation loops — the pattern build and the arena-full fallback — via
    /// [`lanes::four_wise_hashes_many`], which evaluates `W` *different* sign
    /// functions at the one folded item (the transposed shape: AMS has one item and
    /// a row of hash functions, where CountMin has one hash and a row of items).
    /// Bit-packing order and counter walk order are unchanged, so patterns, sums,
    /// and accounting are bit-identical at every width.  No prefetch: the counter
    /// walk is sequential, which the hardware prefetcher already covers.
    fn process_batch_lanes<const W: usize>(&mut self, items: &[u64]) {
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(items.len() as u64);
        let total = self.counters.len();
        let base = self.counters.addr_of(0, 0);
        let words = total.div_ceil(64);
        let max_patterns = (SIGN_ARENA_BYTES / (words * 8)).clamp(1, 1 << 20);
        let lane_chunks = self.signs.chunks_exact(W);
        let tail_start = total - lane_chunks.remainder().len();
        let mut index: FastMap<u64, u32> = fast_map();
        let mut patterns: Vec<u64> = Vec::new();
        for (i, &item) in items.iter().enumerate() {
            tracker.enter_epoch(first + i as u64);
            let pattern = match index.get(&item) {
                Some(&idx) => Some(idx as usize),
                None if index.len() < max_patterns => {
                    let idx = index.len();
                    let folded = FoldedItem::new(item);
                    let mut word = 0u64;
                    let mut bits = 0;
                    let mut push_bit = |bit: u64| {
                        word |= bit << bits;
                        bits += 1;
                        if bits == 64 {
                            patterns.push(word);
                            word = 0;
                            bits = 0;
                        }
                    };
                    for chunk in self.signs.chunks_exact(W) {
                        let hs = lanes::four_wise_hashes_many::<W>(chunk, &folded);
                        for &h in &hs {
                            push_bit(h & 1);
                        }
                    }
                    for sign_hash in &self.signs[tail_start..] {
                        push_bit(sign_hash.hash_folded(&folded) & 1);
                    }
                    if bits > 0 {
                        patterns.push(word);
                    }
                    index.insert(item, idx as u32);
                    Some(idx)
                }
                None => None, // arena full: evaluate directly below
            };
            let data = self.counters.as_mut_slice_untracked();
            match pattern {
                Some(idx) => {
                    for (wi, &word) in patterns[idx * words..(idx + 1) * words].iter().enumerate() {
                        let start = wi * 64;
                        let chunk = &mut data[start..(start + 64).min(total)];
                        for (k, cell) in chunk.iter_mut().enumerate() {
                            *cell += 1 - 2 * ((word >> k) & 1) as i64;
                        }
                    }
                }
                None => {
                    let folded = FoldedItem::new(item);
                    for (cells, hashes) in data.chunks_exact_mut(W).zip(self.signs.chunks_exact(W))
                    {
                        let hs = lanes::four_wise_hashes_many::<W>(hashes, &folded);
                        for (cell, &h) in cells.iter_mut().zip(&hs) {
                            *cell += 1 - 2 * (h & 1) as i64;
                        }
                    }
                    for (cell, sign_hash) in
                        data[tail_start..].iter_mut().zip(&self.signs[tail_start..])
                    {
                        *cell += sign_hash.sign_folded(&folded);
                    }
                }
            }
            tracker.record_reads(total as u64);
            tracker.record_changed_run(Some(base), total as u64);
        }
    }
}

impl Mergeable for AmsSketch {
    /// Exact merge: `Z_j = Σ_i s_j(i)·f_i` is linear in `f`, so adding counters yields
    /// the sketch of the concatenated stream (identical dimensions and seed required).
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.groups == other.groups
                && self.per_group == other.per_group
                && self.seed == other.seed,
            "AMS shards must share dimensions and sign seed"
        );
        self.tracker.begin_epoch();
        self.tracker.record_reads(other.counters.len() as u64);
        let per_group = self.per_group;
        for (j, &v) in other.counters.iter_untracked().enumerate() {
            if v != 0 {
                self.counters
                    .update(j / per_group, j % per_group, |c| c + v);
            }
        }
    }
}

impl_queryable!(AmsSketch: [moment]);

impl Snapshot for AmsSketch {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `groups`, `per_group`, sign seed, then the counters in
    /// counter order (sign functions re-derive from the seed).
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.groups);
        w.usize(self.per_group);
        w.u64(self.seed);
        for &v in self.counters.iter_untracked() {
            w.i64(v);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let groups = r.usize()?;
        let per_group = r.usize()?;
        let seed = r.u64()?;
        let plausible = groups
            .checked_mul(per_group)
            .is_some_and(|c| c >= 1 && r.remaining() >= c.saturating_mul(8));
        if !plausible {
            return Err(SnapshotError::Corrupt("ams dimensions"));
        }
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = AmsSketch::with_tracker(&tracker, groups, per_group, seed);
        for cell in alg.counters.as_mut_slice_untracked() {
            *cell = r.i64()?;
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl MomentEstimator for AmsSketch {
    fn p(&self) -> f64 {
        2.0
    }

    fn estimate_moment(&self) -> f64 {
        let mut group_means = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let mean: f64 = (0..self.per_group)
                .map(|j| {
                    let z = *self.counters.peek(g, j) as f64;
                    z * z
                })
                .sum::<f64>()
                / self.per_group as f64;
            group_means.push(mean);
        }
        group_means.sort_by(f64::total_cmp);
        group_means[group_means.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn f2_estimate_is_within_relative_error() {
        let stream = zipf_stream(1 << 10, 20_000, 1.1, 7);
        let truth = FrequencyVector::from_stream(&stream).fp(2.0);
        let mut ams = AmsSketch::for_error(0.1, 0.05, 3);
        ams.process_stream(&stream);
        let est = ams.estimate_moment();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.2, "relative error {rel} (est {est}, truth {truth})");
        assert_eq!(ams.p(), 2.0);
    }

    #[test]
    fn write_count_is_linear_in_stream_and_counters() {
        let stream = zipf_stream(256, 1_000, 1.0, 1);
        let mut ams = AmsSketch::new(3, 16, 5);
        ams.process_stream(&stream);
        let r = ams.report();
        assert_eq!(r.state_changes, 1_000);
        // init (48) + 48 sign updates per stream element, minus the rare ±1 collisions
        // that cancel (update() skips writes when the value is unchanged, which cannot
        // happen for ±1 increments).
        assert_eq!(r.word_writes as usize, 48 + 48 * 1_000);
    }

    #[test]
    fn space_matches_counter_budget() {
        let ams = AmsSketch::for_error(0.2, 0.1, 2);
        assert_eq!(ams.space_words(), ams.counters());
        // per_group = 8/0.04 = 200, groups = odd(ceil(4·ln 10)) = 11.
        assert_eq!(ams.counters(), 200 * 11);
    }

    #[test]
    fn sharded_merge_equals_the_unsharded_sketch() {
        let stream = zipf_stream(1 << 10, 6_000, 1.0, 12);
        let (left, right) = stream.split_at(stream.len() / 2);
        let mut whole = AmsSketch::new(5, 64, 33);
        whole.process_stream(&stream);
        let mut a = AmsSketch::new(5, 64, 33);
        a.process_stream(left);
        let mut b = AmsSketch::new(5, 64, 33);
        b.process_stream(right);
        a.merge_from(&b);
        assert_eq!(a.estimate_moment(), whole.estimate_moment());
    }

    #[test]
    fn permutation_stream_has_f2_equal_to_length() {
        let stream: Vec<u64> = (0..4096).collect();
        let mut ams = AmsSketch::for_error(0.1, 0.1, 11);
        ams.process_stream(&stream);
        let rel = (ams.estimate_moment() - 4096.0).abs() / 4096.0;
        assert!(rel < 0.25, "relative error {rel}");
    }
}
