//! The AMS (Alon-Matias-Szegedy) F₂ sketch [AMS99].

use fsc_counters::hashing::PolyHash;
use fsc_state::{Mergeable, MomentEstimator, StateTracker, StreamAlgorithm, TrackedMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tug-of-war sketch: `groups × per_group` signed counters `Z_j = Σ_i s_j(i)·f_i`
/// with 4-wise independent signs; `F_2` is estimated as the median over groups of the
/// mean of `Z_j²` within a group.
///
/// Every update adds ±1 to every counter, so the state-change count is `Θ(m)` and the
/// word-write count is `Θ(k·m)` — the canonical example of a space-efficient but
/// write-heavy linear sketch (Section 1.4 makes the same point about precision
/// sampling).
#[derive(Debug, Clone)]
pub struct AmsSketch {
    /// `groups × per_group` signed counters in one contiguous [`TrackedMatrix`]
    /// (row = group), with accounting identical to the former flat vector.
    counters: TrackedMatrix<i64>,
    signs: Vec<PolyHash>,
    groups: usize,
    per_group: usize,
    seed: u64,
    name: String,
    tracker: StateTracker,
}

impl AmsSketch {
    /// Creates a sketch with `groups` independent groups of `per_group` counters each.
    pub fn new(groups: usize, per_group: usize, seed: u64) -> Self {
        Self::with_tracker(&StateTracker::new(), groups, per_group, seed)
    }

    /// Creates a sketch attached to a caller-supplied tracker (e.g. a lean one from
    /// [`StateTracker::lean`], which makes the sketch `Send` for sharded runs).
    pub fn with_tracker(
        tracker: &StateTracker,
        groups: usize,
        per_group: usize,
        seed: u64,
    ) -> Self {
        assert!(groups >= 1 && per_group >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let total = groups * per_group;
        let counters = TrackedMatrix::filled(tracker, groups, per_group, 0i64);
        let signs = (0..total).map(|_| PolyHash::four_wise(&mut rng)).collect();
        Self {
            counters,
            signs,
            groups,
            per_group,
            seed,
            name: format!("AMS({groups}x{per_group})"),
            tracker: tracker.clone(),
        }
    }

    /// Creates a sketch achieving relative error `ε` with failure probability `δ`
    /// (`per_group = ⌈8/ε²⌉` counters averaged, `groups = Θ(log 1/δ)` medians).
    pub fn for_error(eps: f64, delta: f64, seed: u64) -> Self {
        assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0);
        let per_group = (8.0 / (eps * eps)).ceil() as usize;
        let groups = ((4.0 * (1.0 / delta).ln()).ceil().max(1.0) as usize) | 1;
        Self::new(groups, per_group, seed)
    }

    /// Total number of counters.
    pub fn counters(&self) -> usize {
        self.groups * self.per_group
    }
}

impl StreamAlgorithm for AmsSketch {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        let per_group = self.per_group;
        for (j, sign_hash) in self.signs.iter().enumerate() {
            let sign = sign_hash.hash_sign(item);
            self.counters
                .update(j / per_group, j % per_group, |c| c + sign);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

impl Mergeable for AmsSketch {
    /// Exact merge: `Z_j = Σ_i s_j(i)·f_i` is linear in `f`, so adding counters yields
    /// the sketch of the concatenated stream (identical dimensions and seed required).
    fn merge_from(&mut self, other: &Self) {
        assert!(
            self.groups == other.groups
                && self.per_group == other.per_group
                && self.seed == other.seed,
            "AMS shards must share dimensions and sign seed"
        );
        self.tracker.begin_epoch();
        self.tracker.record_reads(other.counters.len() as u64);
        let per_group = self.per_group;
        for (j, &v) in other.counters.iter_untracked().enumerate() {
            if v != 0 {
                self.counters
                    .update(j / per_group, j % per_group, |c| c + v);
            }
        }
    }
}

impl MomentEstimator for AmsSketch {
    fn p(&self) -> f64 {
        2.0
    }

    fn estimate_moment(&self) -> f64 {
        let mut group_means = Vec::with_capacity(self.groups);
        for g in 0..self.groups {
            let mean: f64 = (0..self.per_group)
                .map(|j| {
                    let z = *self.counters.peek(g, j) as f64;
                    z * z
                })
                .sum::<f64>()
                / self.per_group as f64;
            group_means.push(mean);
        }
        group_means.sort_by(f64::total_cmp);
        group_means[group_means.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn f2_estimate_is_within_relative_error() {
        let stream = zipf_stream(1 << 10, 20_000, 1.1, 7);
        let truth = FrequencyVector::from_stream(&stream).fp(2.0);
        let mut ams = AmsSketch::for_error(0.1, 0.05, 3);
        ams.process_stream(&stream);
        let est = ams.estimate_moment();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.2, "relative error {rel} (est {est}, truth {truth})");
        assert_eq!(ams.p(), 2.0);
    }

    #[test]
    fn write_count_is_linear_in_stream_and_counters() {
        let stream = zipf_stream(256, 1_000, 1.0, 1);
        let mut ams = AmsSketch::new(3, 16, 5);
        ams.process_stream(&stream);
        let r = ams.report();
        assert_eq!(r.state_changes, 1_000);
        // init (48) + 48 sign updates per stream element, minus the rare ±1 collisions
        // that cancel (update() skips writes when the value is unchanged, which cannot
        // happen for ±1 increments).
        assert_eq!(r.word_writes as usize, 48 + 48 * 1_000);
    }

    #[test]
    fn space_matches_counter_budget() {
        let ams = AmsSketch::for_error(0.2, 0.1, 2);
        assert_eq!(ams.space_words(), ams.counters());
        // per_group = 8/0.04 = 200, groups = odd(ceil(4·ln 10)) = 11.
        assert_eq!(ams.counters(), 200 * 11);
    }

    #[test]
    fn sharded_merge_equals_the_unsharded_sketch() {
        let stream = zipf_stream(1 << 10, 6_000, 1.0, 12);
        let (left, right) = stream.split_at(stream.len() / 2);
        let mut whole = AmsSketch::new(5, 64, 33);
        whole.process_stream(&stream);
        let mut a = AmsSketch::new(5, 64, 33);
        a.process_stream(left);
        let mut b = AmsSketch::new(5, 64, 33);
        b.process_stream(right);
        a.merge_from(&b);
        assert_eq!(a.estimate_moment(), whole.estimate_moment());
    }

    #[test]
    fn permutation_stream_has_f2_equal_to_length() {
        let stream: Vec<u64> = (0..4096).collect();
        let mut ams = AmsSketch::for_error(0.1, 0.1, 11);
        ams.process_stream(&stream);
        let rel = (ams.estimate_moment() - 4096.0).abs() / 4096.0;
        assert!(rel < 0.25, "relative error {rel}");
    }
}
