//! The Misra-Gries frequent-items summary [MG82].

use fsc_state::{FrequencyEstimator, StateTracker, StreamAlgorithm, TrackedMap};

/// The deterministic Misra-Gries summary with `k` counters.
///
/// Guarantees `f_i − m/(k+1) ≤ estimate(i) ≤ f_i`, i.e. it solves the `L_1`
/// heavy-hitter problem with `ε = 1/(k+1)` in `O(k)` words.  Every update either
/// increments a counter, inserts a new counter, or decrements *all* counters — so the
/// number of state changes is `Θ(m)` (Table 1), which is what the paper improves on.
#[derive(Debug, Clone)]
pub struct MisraGries {
    counters: TrackedMap<u64, u64>,
    k: usize,
    tracker: StateTracker,
}

impl MisraGries {
    /// Creates a summary with `k ≥ 1` counters.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        let tracker = StateTracker::new();
        Self {
            counters: TrackedMap::new(&tracker),
            k,
            tracker,
        }
    }

    /// Creates a summary sized for additive error `ε·m` (i.e. `k = ⌈1/ε⌉`).
    pub fn for_epsilon(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        Self::new((1.0 / eps).ceil() as usize)
    }

    /// Number of counter slots.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

impl StreamAlgorithm for MisraGries {
    fn name(&self) -> String {
        format!("MisraGries(k={})", self.k)
    }

    fn process_item(&mut self, item: u64) {
        if self.counters.contains_key(&item) {
            self.counters.modify(&item, |c| c + 1);
        } else if self.counters.len() < self.k {
            self.counters.insert(item, 1);
        } else {
            // Decrement every counter and evict the ones that reach zero.
            let keys = self.counters.keys_untracked();
            for key in keys {
                self.counters.modify(&key, |c| c - 1);
            }
            self.counters.retain(|_, &c| c > 0);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

impl FrequencyEstimator for MisraGries {
    fn estimate(&self, item: u64) -> f64 {
        self.counters.get(&item).copied().unwrap_or(0) as f64
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.counters.keys_untracked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn estimates_are_underestimates_with_bounded_error() {
        let stream = zipf_stream(1 << 12, 20_000, 1.2, 5);
        let truth = FrequencyVector::from_stream(&stream);
        let mut mg = MisraGries::new(64);
        mg.process_stream(&stream);
        let max_err = stream.len() as f64 / 65.0;
        for (item, f) in truth.top_k(20) {
            let est = mg.estimate(item);
            assert!(est <= f as f64 + 1e-9, "overestimate for {item}");
            assert!(
                est >= f as f64 - max_err - 1e-9,
                "item {item}: est {est} true {f} err bound {max_err}"
            );
        }
    }

    #[test]
    fn finds_the_majority_element() {
        let mut stream: Vec<u64> = vec![42; 600];
        stream.extend((0..500u64).map(|i| i + 100));
        fsc_streamgen::shuffle(&mut stream, 3);
        let mut mg = MisraGries::new(8);
        mg.process_stream(&stream);
        let hh = mg.heavy_hitters(200.0);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, 42);
    }

    #[test]
    fn space_is_bounded_by_k() {
        let stream = zipf_stream(1 << 14, 30_000, 0.8, 1);
        let mut mg = MisraGries::new(32);
        mg.process_stream(&stream);
        assert!(mg.tracked_items().len() <= 32);
        assert!(mg.capacity() == 32);
        // 3 words per entry + map overhead stays proportional to k, far below F_0.
        assert!(mg.space_words() <= 32 * 4);
    }

    #[test]
    fn state_changes_are_linear_in_the_stream() {
        let stream = zipf_stream(1 << 10, 10_000, 1.0, 2);
        let mut mg = MisraGries::new(16);
        mg.process_stream(&stream);
        let r = mg.report();
        assert!(
            r.state_changes as f64 > 0.95 * stream.len() as f64,
            "Misra-Gries should write on almost every update ({} of {})",
            r.state_changes,
            stream.len()
        );
    }

    #[test]
    fn for_epsilon_sets_capacity() {
        assert_eq!(MisraGries::for_epsilon(0.01).capacity(), 100);
    }
}
