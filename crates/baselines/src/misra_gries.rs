//! The Misra-Gries frequent-items summary [MG82].

use fsc_counters::fastmap::FastTrackedMap;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Mergeable, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, StateTracker, StreamAlgorithm,
};

/// Stable checkpoint-header id of [`MisraGries`].
const SNAPSHOT_ID: &str = "misra_gries";

/// The deterministic Misra-Gries summary with `k` counters.
///
/// Guarantees `f_i − m/(k+1) ≤ estimate(i) ≤ f_i`, i.e. it solves the `L_1`
/// heavy-hitter problem with `ε = 1/(k+1)` in `O(k)` words.  Every update either
/// increments a counter, inserts a new counter, or decrements *all* counters — so the
/// number of state changes is `Θ(m)` (Table 1), which is what the paper improves on.
#[derive(Debug, Clone)]
pub struct MisraGries {
    counters: FastTrackedMap<u64, u64>,
    k: usize,
    name: String,
    tracker: StateTracker,
}

impl MisraGries {
    /// Creates a summary with `k ≥ 1` counters.
    pub fn new(k: usize) -> Self {
        Self::with_tracker(&StateTracker::new(), k)
    }

    /// Creates a summary attached to a caller-supplied tracker (e.g. a lean one from
    /// [`StateTracker::lean`], which makes the summary `Send` for sharded runs).
    pub fn with_tracker(tracker: &StateTracker, k: usize) -> Self {
        assert!(k >= 1);
        Self {
            counters: FastTrackedMap::new(tracker),
            k,
            name: format!("MisraGries(k={k})"),
            tracker: tracker.clone(),
        }
    }

    /// Creates a summary sized for additive error `ε·m` (i.e. `k = ⌈1/ε⌉`).
    pub fn for_epsilon(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0);
        Self::new((1.0 / eps).ceil() as usize)
    }

    /// Number of counter slots.
    pub fn capacity(&self) -> usize {
        self.k
    }
}

impl StreamAlgorithm for MisraGries {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        if self.counters.contains_key(&item) {
            self.counters.modify(&item, |c| c + 1);
        } else if self.counters.len() < self.k {
            self.counters.insert(item, 1);
        } else {
            // Decrement every counter and evict the ones that reach zero.
            let keys = self.counters.keys_untracked();
            for key in keys {
                self.counters.modify(&key, |c| c - 1);
            }
            self.counters.retain(|_, &c| c > 0);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Run-length kernel: once the item holds a counter, increments can never evict
    /// it, so the rest of the run collapses into the shared
    /// `bulk_count_run` step.  While the item is absent the
    /// per-item path runs unchanged — an absent item's update may take the
    /// decrement-all branch, whose effect on the whole table cannot be collapsed.
    fn process_run(&mut self, item: u64, count: u64) {
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(count);
        let mut done = 0;
        while done < count {
            if self.counters.peek(&item).is_some() {
                crate::bulk_count_run(
                    &tracker,
                    &mut self.counters,
                    item,
                    first + done,
                    count - done,
                );
                return;
            }
            tracker.enter_epoch(first + done);
            self.process_item(item);
            done += 1;
        }
    }
}

impl Mergeable for MisraGries {
    /// The Agarwal–Cormode–Huang–Phillips–Wei–Yi merge: add counters for common items,
    /// take the union otherwise, then subtract the `(k+1)`-st largest count from every
    /// counter and drop the non-positive ones.  The result is a valid `k`-counter
    /// summary of the concatenated stream: estimates stay underestimates with additive
    /// error at most `(m_a + m_b)/(k+1)`.
    fn merge_from(&mut self, other: &Self) {
        assert_eq!(
            self.k, other.k,
            "Misra-Gries shards must share the counter capacity k"
        );
        self.tracker.begin_epoch();
        self.tracker.record_reads(other.counters.len() as u64);
        for (&item, &count) in other.counters.iter_untracked() {
            if self.counters.peek(&item).is_some() {
                self.counters.modify(&item, |c| c + count);
            } else {
                self.counters.insert(item, count);
            }
        }
        if self.counters.len() > self.k {
            let mut counts: Vec<u64> = self.counters.iter_untracked().map(|(_, &c)| c).collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let decrement = counts[self.k];
            for key in self.counters.keys_untracked() {
                self.counters.modify(&key, |c| c.saturating_sub(decrement));
            }
            self.counters.retain(|_, &c| c > 0);
        }
    }
}

impl_queryable!(MisraGries: [frequency]);

impl Snapshot for MisraGries {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `k`, then the counter table in sorted-key order.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.k);
        crate::write_counter_table(&mut w, &self.counters);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let k = r.usize()?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("misra_gries capacity"));
        }
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = MisraGries::with_tracker(&tracker, k);
        crate::read_counter_table(&mut r, &mut alg.counters)?;
        if alg.counters.len() > k {
            return Err(SnapshotError::Corrupt("misra_gries table exceeds capacity"));
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for MisraGries {
    fn estimate(&self, item: u64) -> f64 {
        self.counters.get(&item).copied().unwrap_or(0) as f64
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.counters.keys_untracked()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn estimates_are_underestimates_with_bounded_error() {
        let stream = zipf_stream(1 << 12, 20_000, 1.2, 5);
        let truth = FrequencyVector::from_stream(&stream);
        let mut mg = MisraGries::new(64);
        mg.process_stream(&stream);
        let max_err = stream.len() as f64 / 65.0;
        for (item, f) in truth.top_k(20) {
            let est = mg.estimate(item);
            assert!(est <= f as f64 + 1e-9, "overestimate for {item}");
            assert!(
                est >= f as f64 - max_err - 1e-9,
                "item {item}: est {est} true {f} err bound {max_err}"
            );
        }
    }

    #[test]
    fn finds_the_majority_element() {
        let mut stream: Vec<u64> = vec![42; 600];
        stream.extend((0..500u64).map(|i| i + 100));
        fsc_streamgen::shuffle(&mut stream, 3);
        let mut mg = MisraGries::new(8);
        mg.process_stream(&stream);
        let hh = mg.heavy_hitters(200.0);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, 42);
    }

    #[test]
    fn space_is_bounded_by_k() {
        let stream = zipf_stream(1 << 14, 30_000, 0.8, 1);
        let mut mg = MisraGries::new(32);
        mg.process_stream(&stream);
        assert!(mg.tracked_items().len() <= 32);
        assert!(mg.capacity() == 32);
        // 3 words per entry + map overhead stays proportional to k, far below F_0.
        assert!(mg.space_words() <= 32 * 4);
    }

    #[test]
    fn sharded_merge_obeys_the_misra_gries_error_bound() {
        let stream = zipf_stream(1 << 12, 24_000, 1.2, 19);
        let truth = FrequencyVector::from_stream(&stream);
        let k = 64;
        let (left, right) = stream.split_at(stream.len() / 2);
        let mut a = MisraGries::new(k);
        a.process_stream(left);
        let mut b = MisraGries::new(k);
        b.process_stream(right);
        a.merge_from(&b);
        assert!(a.tracked_items().len() <= k, "merge must respect capacity");
        let max_err = stream.len() as f64 / (k + 1) as f64;
        for (item, f) in truth.top_k(20) {
            let est = a.estimate(item);
            assert!(est <= f as f64 + 1e-9, "merged MG overestimated {item}");
            assert!(
                est >= f as f64 - max_err - 1e-9,
                "item {item}: merged est {est}, true {f}, bound {max_err}"
            );
        }
    }

    #[test]
    fn state_changes_are_linear_in_the_stream() {
        let stream = zipf_stream(1 << 10, 10_000, 1.0, 2);
        let mut mg = MisraGries::new(16);
        mg.process_stream(&stream);
        let r = mg.report();
        assert!(
            r.state_changes as f64 > 0.95 * stream.len() as f64,
            "Misra-Gries should write on almost every update ({} of {})",
            r.state_changes,
            stream.len()
        );
    }

    #[test]
    fn for_epsilon_sets_capacity() {
        assert_eq!(MisraGries::for_epsilon(0.01).capacity(), 100);
    }
}
