//! Sequence helpers, mirroring `rand::seq`.

use crate::distributions::uniform::SampleRange;
use crate::Rng;

/// Extension methods on slices: shuffling and random choice.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher-Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice in order"
        );
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u32].choose(&mut rng), Some(&7));
    }
}
