//! Distributions: the [`Standard`] distribution and uniform range sampling.

use crate::{Rng, RngCore};

/// A type that can produce samples of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for integers,
/// uniform in `[0, 1)` for floats, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from ranges, mirroring `rand::distributions::uniform`.

    use super::*;
    use core::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_uniform_inclusive<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
        ) -> Self;
    }

    /// Exactly uniform sample from `[0, span)` — Lemire's multiply-shift with the
    /// rejection step, so large spans (e.g. the Mersenne-61 coefficient draws in the
    /// hashing crate) are not biased toward low-mapped values.
    fn lemire<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = rng.next_u64() as u128 * span as u128;
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = rng.next_u64() as u128 * span as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: low must be < high");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + lemire(rng, span) as i128) as $t
                }

                fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    assert!(low <= high, "gen_range: low must be <= high");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        // Full 64-bit domain: every draw is already in range.
                        return (low as i128 + rng.next_u64() as i128) as $t;
                    }
                    (low as i128 + lemire(rng, span as u64) as i128) as $t
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: low must be < high");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    let x = low + (high - low) * unit;
                    // `low + (high-low)*unit` can round up to `high` when the span is
                    // near the ulp at `high`; keep the contract half-open.
                    if x >= high {
                        high.next_down()
                    } else {
                        x
                    }
                }

                fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                ) -> Self {
                    assert!(low <= high, "gen_range: low must be <= high");
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / ((1u64 << 53) - 1) as $t);
                    let x = low + (high - low) * unit;
                    // `high - low` can round up, pushing the lerp past `high`.
                    if x > high {
                        high
                    } else {
                        x
                    }
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    /// Range types accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_uniform_inclusive(rng, low, high)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&z));
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn float_ranges_stay_strictly_below_the_upper_bound() {
        // The span here is near the ulp at `high`, so naive lerp rounds up to `high`
        // about half the time; the contract is half-open.
        let mut rng = StdRng::seed_from_u64(5);
        let (low, high) = (1e16f64, 1e16 + 2.0);
        for _ in 0..1_000 {
            let x = rng.gen_range(low..high);
            assert!(x >= low && x < high, "{x} escaped [{low}, {high})");
        }
    }

    #[test]
    fn inclusive_float_range_never_exceeds_the_bound() {
        // `high - low` rounds up here, so an unclamped lerp can land above `high`.
        let mut rng = StdRng::seed_from_u64(6);
        let (low, high) = (3e-16f64, 1.0);
        for _ in 0..100_000 {
            let x = rng.gen_range(low..=high);
            assert!(x >= low && x <= high, "{x} escaped [{low}, {high}]");
        }
    }

    #[test]
    fn large_span_sampling_is_unbiased_across_residues() {
        // With span = 3 << 61, floor(2^64 / span) is tiny, so unrejected multiply-shift
        // sampling would skew the residues; rejection keeps them uniform.
        let mut rng = StdRng::seed_from_u64(7);
        let span = 3u64 << 61;
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            let x = rng.gen_range(0..span);
            counts[(x >> 61) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn full_domain_inclusive_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(8);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let x: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = x;
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }
}
