//! Concrete generators. [`StdRng`] is the only one the workspace uses.

use crate::{RngCore, SeedableRng, SplitMix64};

/// The workspace's standard deterministic generator: **xoshiro256++**.
///
/// Upstream rand's `StdRng` is ChaCha12; xoshiro256++ keeps the same contract the
/// workspace relies on (seed-deterministic, platform-independent, fast, uniform)
/// with a far smaller implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The raw xoshiro256++ state, for serialization (checkpoint/restore of
    /// algorithms that carry an rng mid-stream).  Round-trips exactly through
    /// [`StdRng::from_state`].
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`StdRng::state`], continuing
    /// the exact output sequence the captured generator would have produced.
    ///
    /// The all-zero state is a fixed point of xoshiro and can never be produced by
    /// [`StdRng::state`] (seeding re-expands it), so it is re-expanded here the same
    /// way for safety.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            return Self::from_seed([0u8; 32]);
        }
        Self { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // The all-zero state is a fixed point of xoshiro; re-expand from SplitMix64.
        if s == [0, 0, 0, 0] {
            let mut sm = SplitMix64(0);
            for word in s.iter_mut() {
                *word = sm.next();
            }
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let xs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
