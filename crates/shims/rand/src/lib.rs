//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate (0.8-compatible
//! subset).
//!
//! The build environment for this repository has no access to crates.io, so the small
//! slice of the `rand` 0.8 API that the workspace actually uses is re-implemented here
//! behind the same paths: [`Rng`], [`RngCore`], [`SeedableRng`], [`rngs::StdRng`],
//! [`seq::SliceRandom`], and the [`distributions::Standard`] distribution.
//!
//! [`rngs::StdRng`] is a **xoshiro256++** generator (not ChaCha12 as in upstream rand),
//! so absolute sampled values differ from upstream, but all the properties the
//! workspace relies on hold: determinism per seed, platform independence, uniformity,
//! and a 2^256 − 1 period.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw integer output and byte filling.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods for random value generation.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator from a fixed internal constant.
    ///
    /// Upstream rand seeds from OS entropy here; this shim is deliberately
    /// deterministic so that every run of the workspace is reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// SplitMix64: seed-expansion generator (public-domain reference constants).
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
