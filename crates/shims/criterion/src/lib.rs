//! Offline shim for the [`criterion`](https://crates.io/crates/criterion) benchmarking
//! crate (0.5-compatible subset).
//!
//! The build environment has no access to crates.io, so this crate re-implements the
//! slice of the criterion API used by the workspace's benches: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`Bencher`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs `sample_size` samples
//! after a warm-up, and the median per-iteration wall time is printed along with
//! throughput when configured. There are no HTML reports or significance tests —
//! the goal is that `cargo bench` builds, runs, and prints usable numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group: per-iteration work volume.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/parameter"`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

/// Conversion trait so `bench_function` accepts both strings and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Renders the id to its display string.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// Timing context handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(&id.into_id_string(), sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing throughput and sample-size settings.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work volume used to report throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        f: F,
    ) -> &mut Self {
        run_benchmark(&id.into_id_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks a closure parameterized by an input value.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    // One warm-up sample, then `sample_size` timed samples of one iteration each.
    for sample in 0..=sample_size {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if sample > 0 {
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / median / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 / median / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    eprintln!("  {id}: median {:.3} ms/iter{rate}", median * 1e3);
}

/// Declares a benchmark group function, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::new("sum", 4), |b| {
            runs += 1;
            b.iter(|| (0u64..4).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &k| b.iter(|| k * k));
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
