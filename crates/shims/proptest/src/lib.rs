//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no access to crates.io, so this crate provides the
//! subset of the proptest API that the workspace's property tests use: the
//! [`proptest!`] macro, [`ProptestConfig`], range and tuple [`Strategy`]s,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is **no shrinking** and no persisted failure
//! file: each test runs `cases` deterministic pseudo-random cases (seeded from
//! the test's name and the case index), a failing case panics via the standard
//! `assert!` machinery, and the failing case index is printed to stderr before
//! the panic propagates (generation is deterministic, so re-runs fail on the
//! same case with the same inputs).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case value source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a runner seeded from the test name and case index.
    pub fn new(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns an exactly uniform value in `[0, bound)` (Lemire multiply-shift with
    /// rejection); `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = self.next_u64() as u128 * bound as u128;
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = self.next_u64() as u128 * bound as u128;
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// A generator of test-case input values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + runner.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Widen before the +1 so full-domain ranges (lo..=MAX) don't overflow.
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return runner.next_u64() as $t;
                }
                (lo as i128 + runner.below(span as u64) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Admissible size specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_exclusive: r
                    .end()
                    .checked_add(1)
                    .expect("size range upper bound overflows usize"),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + runner.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Returns a strategy producing vectors whose elements come from `element`
    /// and whose lengths lie in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The items a test module conventionally glob-imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property test (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __runner = $crate::TestRunner::new(stringify!($name), __case);
                $(let $pat = $crate::Strategy::new_value(&($strategy), &mut __runner);)+
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body,
                ));
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest shim: {} failed at case {} of {} (re-run is deterministic)",
                        stringify!($name),
                        __case,
                        __config.cases,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u8..3) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 3);
        }

        /// Vec strategies respect element and size bounds.
        #[test]
        fn vecs_in_bounds(v in crate::collection::vec((0u8..3, 0u64..16), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (a, b) in v {
                prop_assert!(a < 3);
                prop_assert!(b < 16);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Full-domain inclusive ranges don't overflow the span computation.
        #[test]
        fn full_domain_inclusive_ranges(x in 0u64..=u64::MAX, y in i64::MIN..=i64::MAX) {
            // Any value is admissible; the point is that generation doesn't panic.
            let _ = (x, y);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name_and_case() {
        let mut a = crate::TestRunner::new("t", 1);
        let mut b = crate::TestRunner::new("t", 1);
        let mut c = crate::TestRunner::new("t", 2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
