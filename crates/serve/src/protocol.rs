//! The wire protocol: length-prefixed frames whose payloads reuse the `FSCS`
//! snapshot codec, so parsing is total and every malformed input maps to a typed
//! error instead of a panic or an unbounded allocation.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+-------------------------------+
//! | len: u32 LE    | payload: len bytes            |
//! +----------------+-------------------------------+
//! ```
//!
//! The payload is an `FSCS` blob with algorithm id [`FRAME_ID`]: magic, version,
//! id string, then a request/response tag byte and the tag's fields.  Reusing
//! [`SnapshotReader`] buys the same guarantees the checkpoint formats already
//! have — length-prefix validation *before* allocation, typed truncation errors,
//! and a trailing-bytes check — so a fuzzer cannot distinguish "weird frame" from
//! "damaged checkpoint": both land in [`SnapshotError`].
//!
//! `len` is validated against [`MAX_FRAME`] before any allocation; an oversized
//! prefix fails typed ([`FrameError::Oversized`]) with **zero** bytes buffered.

use std::io::{self, Read, Write};

use fsc_state::{Answer, Query, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::wal::Durability;

/// `FSCS` algorithm id of every frame payload.
pub const FRAME_ID: &str = "fsc_serve_frame";

/// Upper bound on a frame payload (16 MiB).  Large enough for a full engine
/// checkpoint response, small enough that a hostile length prefix cannot drive
/// an allocation.
pub const MAX_FRAME: usize = 16 << 20;

/// What went wrong reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// A read timeout fired with **zero** bytes of the frame consumed: the peer
    /// is idle, not broken, and the caller can safely poll again.  A timeout
    /// *inside* a frame surfaces as [`FrameError::Io`] instead — resuming there
    /// would desynchronize the stream.
    Idle,
    /// The transport failed (includes mid-frame timeouts and dropped peers).
    Io(io::Error),
    /// The peer announced a payload larger than [`MAX_FRAME`]; nothing was
    /// allocated or consumed past the prefix.
    Oversized {
        /// The announced payload length.
        announced: usize,
    },
    /// The stream ended inside a frame (a torn write or a dropped peer).
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Idle => write!(f, "read timed out before a frame started"),
            FrameError::Io(e) => write!(f, "frame transport: {e}"),
            FrameError::Oversized { announced } => {
                write!(f, "frame announces {announced} bytes (max {MAX_FRAME})")
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a read timeout (the retry signal, as opposed to a dead
    /// peer): either an [`FrameError::Idle`] poll or a mid-frame timeout.
    pub fn is_timeout(&self) -> bool {
        match self {
            FrameError::Idle => true,
            FrameError::Io(e) => {
                matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                )
            }
            _ => false,
        }
    }
}

fn is_timeout_kind(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload.  `Ok(None)` is a clean end-of-stream *at a frame
/// boundary*; ending mid-frame is [`FrameError::Truncated`].  The length prefix
/// is validated against [`MAX_FRAME`] before the payload buffer is allocated.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if filled == 0 && is_timeout_kind(&e) => return Err(FrameError::Idle),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { announced: len });
    }
    let mut payload = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut payload[at..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// A typed error the server answers with — every failure a client can cause or
/// observe has a variant, so drills can assert on the *kind* of failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No tenant with that name exists.
    UnknownTenant(String),
    /// `CreateTenant` for a name that is already provisioned.
    TenantExists(String),
    /// `CreateTenant` for a registry id without an engine factory.
    UnknownAlgorithm(String),
    /// The ingest admission bound is full; retry later (graceful degradation:
    /// shed writes, never stall reads).
    Overloaded,
    /// An ingest batch arrived out of order: a gap means a previous batch was
    /// lost for good, which idempotent retry cannot paper over.
    SeqGap {
        /// The sequence number the tenant expects next.
        expected: u64,
        /// The sequence number the batch carried.
        found: u64,
    },
    /// The frame did not parse as a request (the typed fuzz answer).
    Protocol(String),
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// An internal persistence or engine failure, stringified.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::TenantExists(t) => write!(f, "tenant {t:?} already exists"),
            ServeError::UnknownAlgorithm(a) => write!(f, "no engine factory for {a:?}"),
            ServeError::Overloaded => write!(f, "ingest admission bound full; retry"),
            ServeError::SeqGap { expected, found } => {
                write!(f, "ingest gap: expected seq {expected}, got {found}")
            }
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Internal(msg) => write!(f, "internal: {msg}"),
        }
    }
}

/// A request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Provisions a tenant running `shards` replicas of registry algorithm
    /// `algorithm`.  Idempotent on exact repeats is *not* promised; a repeat
    /// answers [`ServeError::TenantExists`].
    CreateTenant {
        /// Namespace name (also the on-disk directory name; validated).
        tenant: String,
        /// Registry id, e.g. `"count_min"`.
        algorithm: String,
        /// Shard count (≥ 1).
        shards: u32,
    },
    /// Appends a batch under an idempotency sequence number: batches must arrive
    /// with consecutive `seq` starting at the tenant's `next_seq` (0 after
    /// creation).  A duplicate (`seq < next_seq`) acks `applied = false` — the
    /// retry-safety contract.
    Ingest {
        /// Target tenant.
        tenant: String,
        /// Batch sequence number.
        seq: u64,
        /// The items.
        items: Vec<u64>,
    },
    /// Asks a typed [`Query`] against the tenant's cached serving view.
    Query {
        /// Target tenant.
        tenant: String,
        /// The question.
        query: Query,
    },
    /// Forces a durable delta-chain checkpoint of the tenant now.
    Checkpoint {
        /// Target tenant.
        tenant: String,
    },
    /// Reads the tenant's counters (ingest position, seq, rebuilds, ...).
    Stats {
        /// Target tenant.
        tenant: String,
    },
    /// Graceful shutdown: checkpoint every tenant, then stop (the SIGTERM
    /// equivalent as a control frame).
    Shutdown,
    /// Abrupt stop *without* checkpointing — the `kill -9` drill hook.  Only
    /// honored when the server was started with fault injection armed.
    Crash,
    /// Reads the server-wide durability status: the mode, the boot-time
    /// recovery counts per tenant, and each tenant's live journal state —
    /// what an operator needs to assert clean recovery remotely.
    Status,
}

/// A response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded and carries no payload.
    Ok,
    /// Answer to a [`Request::Query`].
    Answer(Answer),
    /// Answer to a [`Request::Ingest`]: `applied` is false iff the batch was a
    /// duplicate of one already ingested (a retried frame whose first copy
    /// landed).
    IngestAck {
        /// Echo of the batch sequence number.
        seq: u64,
        /// Whether this frame mutated state.
        applied: bool,
    },
    /// Answer to a [`Request::Stats`].
    Stats(TenantStats),
    /// The request failed, typed.
    Error(ServeError),
    /// Answer to a [`Request::Status`].
    Status(ServerStatus),
}

/// Tenant counters reported by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Items ingested since creation (the engine's epoch clock).
    pub ingested: u64,
    /// Next expected ingest sequence number.
    pub next_seq: u64,
    /// Serving-view publishes so far.
    pub rebuilds: u64,
    /// Deltas in the in-memory chain since the last base.
    pub chain_len: u64,
}

/// Server-wide durability status reported by [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStatus {
    /// The ack-vs-durable mode the server is running in.
    pub durability: Durability,
    /// Journal appends between fsyncs in `AckAfterApply` mode.
    pub group_commit: u64,
    /// Tenant directories found at boot that could not be recovered.
    pub failed_tenants: u64,
    /// Per-tenant status, sorted by tenant name.
    pub tenants: Vec<TenantStatus>,
}

/// One tenant's recovery history and live journal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStatus {
    /// Tenant name.
    pub tenant: String,
    /// False when the tenant was created by this process (nothing recovered).
    pub recovered: bool,
    /// Next expected ingest sequence number, live.
    pub next_seq: u64,
    /// Deltas applied during boot-time chain replay.
    pub chain_applied: u64,
    /// Damaged chain entries discarded during boot-time replay.
    pub chain_discarded: u64,
    /// Journal batches replayed past the chain tip at boot.
    pub wal_replayed: u64,
    /// Torn journal bytes truncated at boot.
    pub wal_truncated_bytes: u64,
    /// Records currently in the journal (drops to 0 at each checkpoint).
    pub wal_records: u64,
    /// Bytes currently in the journal file, header included.
    pub wal_bytes: u64,
    /// Lifetime journal bytes appended since boot (checkpoint truncation does
    /// not reset this — it is the durable-write cost meter).
    pub wal_appended_bytes: u64,
}

fn write_query(w: &mut SnapshotWriter, q: &Query) {
    match q {
        Query::Point(item) => {
            w.u8(0);
            w.u64(*item);
        }
        Query::HeavyHitters { threshold } => {
            w.u8(1);
            w.f64(*threshold);
        }
        Query::TrackedItems => w.u8(2),
        Query::Moment => w.u8(3),
        Query::Entropy => w.u8(4),
        Query::Support => w.u8(5),
    }
}

fn read_query(r: &mut SnapshotReader<'_>) -> Result<Query, SnapshotError> {
    Ok(match r.u8()? {
        0 => Query::Point(r.u64()?),
        1 => Query::HeavyHitters {
            threshold: r.f64()?,
        },
        2 => Query::TrackedItems,
        3 => Query::Moment,
        4 => Query::Entropy,
        5 => Query::Support,
        _ => return Err(SnapshotError::Corrupt("query tag")),
    })
}

fn write_answer(w: &mut SnapshotWriter, a: &Answer) {
    match a {
        Answer::Scalar(v) => {
            w.u8(0);
            w.f64(*v);
        }
        Answer::ItemWeights(pairs) => {
            w.u8(1);
            w.usize(pairs.len());
            for (item, weight) in pairs {
                w.u64(*item);
                w.f64(*weight);
            }
        }
        Answer::Items(items) => {
            w.u8(2);
            w.usize(items.len());
            for item in items {
                w.u64(*item);
            }
        }
        Answer::Unsupported => w.u8(3),
    }
}

fn read_answer(r: &mut SnapshotReader<'_>) -> Result<Answer, SnapshotError> {
    Ok(match r.u8()? {
        0 => Answer::Scalar(r.f64()?),
        1 => {
            let len = r.len_prefix(16)?;
            let mut pairs = Vec::with_capacity(len);
            for _ in 0..len {
                pairs.push((r.u64()?, r.f64()?));
            }
            Answer::ItemWeights(pairs)
        }
        2 => {
            let len = r.len_prefix(8)?;
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(r.u64()?);
            }
            Answer::Items(items)
        }
        3 => Answer::Unsupported,
        _ => return Err(SnapshotError::Corrupt("answer tag")),
    })
}

fn write_serve_error(w: &mut SnapshotWriter, e: &ServeError) {
    match e {
        ServeError::UnknownTenant(t) => {
            w.u8(0);
            w.str(t);
        }
        ServeError::TenantExists(t) => {
            w.u8(1);
            w.str(t);
        }
        ServeError::UnknownAlgorithm(a) => {
            w.u8(2);
            w.str(a);
        }
        ServeError::Overloaded => w.u8(3),
        ServeError::SeqGap { expected, found } => {
            w.u8(4);
            w.u64(*expected);
            w.u64(*found);
        }
        ServeError::Protocol(msg) => {
            w.u8(5);
            w.str(msg);
        }
        ServeError::ShuttingDown => w.u8(6),
        ServeError::Internal(msg) => {
            w.u8(7);
            w.str(msg);
        }
    }
}

fn read_serve_error(r: &mut SnapshotReader<'_>) -> Result<ServeError, SnapshotError> {
    Ok(match r.u8()? {
        0 => ServeError::UnknownTenant(r.string()?),
        1 => ServeError::TenantExists(r.string()?),
        2 => ServeError::UnknownAlgorithm(r.string()?),
        3 => ServeError::Overloaded,
        4 => ServeError::SeqGap {
            expected: r.u64()?,
            found: r.u64()?,
        },
        5 => ServeError::Protocol(r.string()?),
        6 => ServeError::ShuttingDown,
        7 => ServeError::Internal(r.string()?),
        _ => return Err(SnapshotError::Corrupt("serve error tag")),
    })
}

fn write_durability(w: &mut SnapshotWriter, d: Durability) {
    w.u8(match d {
        Durability::AckAfterApply => 0,
        Durability::AckAfterDurable => 1,
    });
}

fn read_durability(r: &mut SnapshotReader<'_>) -> Result<Durability, SnapshotError> {
    Ok(match r.u8()? {
        0 => Durability::AckAfterApply,
        1 => Durability::AckAfterDurable,
        _ => return Err(SnapshotError::Corrupt("durability tag")),
    })
}

fn write_server_status(w: &mut SnapshotWriter, s: &ServerStatus) {
    write_durability(w, s.durability);
    w.u64(s.group_commit);
    w.u64(s.failed_tenants);
    w.usize(s.tenants.len());
    for t in &s.tenants {
        w.str(&t.tenant);
        w.bool(t.recovered);
        w.u64(t.next_seq);
        w.u64(t.chain_applied);
        w.u64(t.chain_discarded);
        w.u64(t.wal_replayed);
        w.u64(t.wal_truncated_bytes);
        w.u64(t.wal_records);
        w.u64(t.wal_bytes);
        w.u64(t.wal_appended_bytes);
    }
}

fn read_server_status(r: &mut SnapshotReader<'_>) -> Result<ServerStatus, SnapshotError> {
    let durability = read_durability(r)?;
    let group_commit = r.u64()?;
    let failed_tenants = r.u64()?;
    let len = r.len_prefix(32)?;
    let mut tenants = Vec::with_capacity(len);
    for _ in 0..len {
        tenants.push(TenantStatus {
            tenant: r.string()?,
            recovered: r.bool()?,
            next_seq: r.u64()?,
            chain_applied: r.u64()?,
            chain_discarded: r.u64()?,
            wal_replayed: r.u64()?,
            wal_truncated_bytes: r.u64()?,
            wal_records: r.u64()?,
            wal_bytes: r.u64()?,
            wal_appended_bytes: r.u64()?,
        });
    }
    Ok(ServerStatus {
        durability,
        group_commit,
        failed_tenants,
        tenants,
    })
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(FRAME_ID);
        match self {
            Request::CreateTenant {
                tenant,
                algorithm,
                shards,
            } => {
                w.u8(0);
                w.str(tenant);
                w.str(algorithm);
                w.u32(*shards);
            }
            Request::Ingest { tenant, seq, items } => {
                w.u8(1);
                w.str(tenant);
                w.u64(*seq);
                w.usize(items.len());
                for item in items {
                    w.u64(*item);
                }
            }
            Request::Query { tenant, query } => {
                w.u8(2);
                w.str(tenant);
                write_query(&mut w, query);
            }
            Request::Checkpoint { tenant } => {
                w.u8(3);
                w.str(tenant);
            }
            Request::Stats { tenant } => {
                w.u8(4);
                w.str(tenant);
            }
            Request::Shutdown => w.u8(5),
            Request::Crash => w.u8(6),
            Request::Status => w.u8(7),
        }
        w.finish()
    }

    /// Decodes a frame payload.  Total: truncated, oversized-field, wrong-id, and
    /// trailing-byte payloads all fail typed.
    pub fn decode(payload: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(payload, FRAME_ID)?;
        let req = match r.u8()? {
            0 => Request::CreateTenant {
                tenant: r.string()?,
                algorithm: r.string()?,
                shards: r.u32()?,
            },
            1 => {
                let tenant = r.string()?;
                let seq = r.u64()?;
                let len = r.len_prefix(8)?;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    items.push(r.u64()?);
                }
                Request::Ingest { tenant, seq, items }
            }
            2 => Request::Query {
                tenant: r.string()?,
                query: read_query(&mut r)?,
            },
            3 => Request::Checkpoint {
                tenant: r.string()?,
            },
            4 => Request::Stats {
                tenant: r.string()?,
            },
            5 => Request::Shutdown,
            6 => Request::Crash,
            7 => Request::Status,
            _ => return Err(SnapshotError::Corrupt("request tag")),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(FRAME_ID);
        match self {
            Response::Ok => w.u8(0),
            Response::Answer(a) => {
                w.u8(1);
                write_answer(&mut w, a);
            }
            Response::IngestAck { seq, applied } => {
                w.u8(2);
                w.u64(*seq);
                w.bool(*applied);
            }
            Response::Stats(s) => {
                w.u8(3);
                w.u64(s.ingested);
                w.u64(s.next_seq);
                w.u64(s.rebuilds);
                w.u64(s.chain_len);
            }
            Response::Error(e) => {
                w.u8(4);
                write_serve_error(&mut w, e);
            }
            Response::Status(s) => {
                w.u8(5);
                write_server_status(&mut w, s);
            }
        }
        w.finish()
    }

    /// Decodes a frame payload (same totality as [`Request::decode`]).
    pub fn decode(payload: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(payload, FRAME_ID)?;
        let resp = match r.u8()? {
            0 => Response::Ok,
            1 => Response::Answer(read_answer(&mut r)?),
            2 => Response::IngestAck {
                seq: r.u64()?,
                applied: r.bool()?,
            },
            3 => Response::Stats(TenantStats {
                ingested: r.u64()?,
                next_seq: r.u64()?,
                rebuilds: r.u64()?,
                chain_len: r.u64()?,
            }),
            4 => Response::Error(read_serve_error(&mut r)?),
            5 => Response::Status(read_server_status(&mut r)?),
            _ => return Err(SnapshotError::Corrupt("response tag")),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Tenant names become directory names; keep them boring (nonempty, `[A-Za-z0-9_-]`,
/// ≤ 64 bytes) so the storage layer never interprets a name as a path.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = Request::Ingest {
            tenant: "t0".into(),
            seq: 7,
            items: vec![1, 2, 3],
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let mut cursor = &wire[..];
        let payload = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(Request::decode(&payload).unwrap(), req);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_fails_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0; 16]);
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Oversized { announced }) => {
                assert_eq!(announced, u32::MAX as usize);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_truncated_not_a_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Shutdown.encode()).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn status_frames_round_trip() {
        assert_eq!(
            Request::decode(&Request::Status.encode()).unwrap(),
            Request::Status
        );
        let status = ServerStatus {
            durability: Durability::AckAfterDurable,
            group_commit: 8,
            failed_tenants: 1,
            tenants: vec![TenantStatus {
                tenant: "t0".into(),
                recovered: true,
                next_seq: 42,
                chain_applied: 3,
                chain_discarded: 1,
                wal_replayed: 2,
                wal_truncated_bytes: 17,
                wal_records: 4,
                wal_bytes: 500,
                wal_appended_bytes: 1200,
            }],
        };
        let resp = Response::Status(status);
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn tenant_names_cannot_traverse_paths() {
        assert!(valid_tenant_name("tenant-07_a"));
        for bad in ["", "../up", "a/b", "a b", &"x".repeat(65)] {
            assert!(!valid_tenant_name(bad), "{bad:?}");
        }
    }
}
