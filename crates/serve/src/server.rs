//! The server: a thread-per-connection TCP front-end over per-tenant
//! [`DynEngine`]s, with delta-chain persistence, startup recovery, admission
//! control, and fault-plan hooks.
//!
//! # Threading and degradation
//!
//! * **Writes lock, reads don't.**  Each tenant's engine lives behind a mutex
//!   taken by ingest/checkpoint; queries go through the engine's lock-free
//!   [`ServeHandle`] (the cached serving view), so a stalled or overloaded
//!   ingest path never blocks readers — they serve the last published view.
//! * **Admission control.**  At most [`ServerConfig::max_inflight_ingest`]
//!   ingest requests are admitted concurrently; excess load is shed with the
//!   typed [`ServeError::Overloaded`] instead of queueing without bound.
//! * **Per-tenant isolation.**  Tenants share nothing but the listener: a
//!   corrupt chain fails one tenant's recovery (reported, the rest come up), and
//!   a locked tenant delays only its own writers.
//!
//! # Durability
//!
//! Two layers make acked batches durable.  Checkpoints (the explicit
//! [`Request::Checkpoint`] frame and the shutdown sweep of
//! [`Request::Shutdown`] / [`ServerHandle::stop`]) persist the applied state as
//! delta-chain entries.  Between checkpoints, every ingest batch is appended to
//! the tenant's write-ahead journal ([`crate::wal`]) *before* the ack, and each
//! checkpoint truncates the journal it has just made redundant.  Recovery is
//! restore-chain-tip → truncate any torn journal tail → replay the journal
//! suffix through the idempotency cursor, so a restarted server answers
//! identically to a twin that saw every acked batch.
//!
//! The [`Durability`] mode sets when the ack is safe against *power loss*:
//! [`Durability::AckAfterDurable`] fsyncs the journal append before every ack
//! (zero acked loss at every crash point); the default
//! [`Durability::AckAfterApply`] batches fsyncs every
//! [`ServerConfig::group_commit`] appends — a process kill still loses nothing
//! (the page cache survives), and power loss is bounded by the group-commit
//! window.  The recovery law is drilled end to end by `fig_serve_net` and the
//! crash-point sweep of `fig_recovery`.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use fsc_engine::{DynEngine, EngineConfig, ServeHandle};
use fsc_state::delta::{encode_delta, CheckpointChain};

use crate::faults::{CrashPoint, FaultPlan};
use crate::protocol::{
    read_frame, valid_tenant_name, write_frame, FrameError, Request, Response, ServeError,
    ServerStatus, TenantStats, TenantStatus,
};
use crate::storage::{
    list_tenants, load_tenant, RecoveryReport, TenantMeta, TenantOutcome, TenantRecovery,
    TenantSnapshot, TenantStorage,
};
use crate::wal::{Durability, Wal, WalAppend};

/// How servers construct engines from registry algorithm ids, without this crate
/// depending on the registry: `fsc-bench` supplies the closure (its
/// `serve_factory()`), tests supply their own.  Returns `None` for unknown or
/// engine-incapable ids.
pub type EngineFactory =
    Arc<dyn Fn(&str, EngineConfig) -> Option<Box<dyn DynEngine>> + Send + Sync>;

/// Poll interval of the accept loop and the per-connection idle read timeout:
/// how quickly threads notice the stop flag.
const POLL: Duration = Duration::from_millis(10);

/// How long a peer may stall *inside* a frame (between the length prefix and
/// the last payload byte, or while draining a response) before the server
/// declares it dead.  This is the slow-reader/slow-writer bound: a trickling or
/// wedged peer occupies its connection thread for at most this long per frame,
/// while an honest client on a congested link (or one whose small writes Nagle
/// coalesces lazily) is not mistaken for a torn stream.
const FRAME_TIMEOUT: Duration = Duration::from_secs(2);

/// Server construction parameters.
#[derive(Clone)]
pub struct ServerConfig {
    /// Root directory tenant state persists under (created on demand).
    pub data_dir: PathBuf,
    /// Ingest admission bound: concurrent ingest requests beyond this many are
    /// shed with [`ServeError::Overloaded`].
    pub max_inflight_ingest: usize,
    /// The armed fault plan ([`FaultPlan::none`] in production).
    pub faults: Arc<FaultPlan>,
    /// When the ack is issued relative to journal durability.
    pub durability: Durability,
    /// Journal appends between fsyncs in [`Durability::AckAfterApply`] mode
    /// (ignored in `AckAfterDurable`, which syncs every append).
    pub group_commit: u64,
}

impl ServerConfig {
    /// Defaults: the given data dir, an admission bound of 64, no faults,
    /// `AckAfterApply` durability with a group commit of 8 appends.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            max_inflight_ingest: 64,
            faults: Arc::new(FaultPlan::none()),
            durability: Durability::default(),
            group_commit: 8,
        }
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Arc::new(faults);
        self
    }

    /// Replaces the ingest admission bound.
    pub fn with_max_inflight_ingest(mut self, bound: usize) -> Self {
        self.max_inflight_ingest = bound.max(1);
        self
    }

    /// Replaces the durability mode.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Replaces the group-commit window (0 behaves as 1: sync every append).
    pub fn with_group_commit(mut self, appends: u64) -> Self {
        self.group_commit = appends;
        self
    }
}

/// One tenant: the locked write side and the lock-free read side.
struct Tenant {
    inner: Mutex<TenantInner>,
    /// The engine's serving-view handle: queries answer from here without
    /// touching the mutex.
    serve: Arc<dyn ServeHandle>,
}

/// What boot-time recovery found for one tenant (frozen at boot; reported by
/// [`Request::Status`] so operators can assert clean recovery remotely).
struct TenantBoot {
    /// False for tenants created by this process (nothing to recover).
    recovered: bool,
    chain_applied: u64,
    chain_discarded: u64,
    wal_replayed: u64,
    wal_truncated_bytes: u64,
}

impl TenantBoot {
    /// The boot record of a freshly created tenant.
    fn fresh() -> Self {
        TenantBoot {
            recovered: false,
            chain_applied: 0,
            chain_discarded: 0,
            wal_replayed: 0,
            wal_truncated_bytes: 0,
        }
    }
}

struct TenantInner {
    engine: Box<dyn DynEngine>,
    /// Next expected ingest sequence number (the idempotency cursor).
    next_seq: u64,
    /// In-memory image of the durable delta chain.  Chain epochs are
    /// applied-batch counts (`next_seq` at capture), which strictly increase
    /// per applied batch — including empty ones — so every checkpoint with new
    /// batches has a recordable epoch.
    chain: CheckpointChain,
    storage: TenantStorage,
    /// The write-ahead batch journal: appended (and fsynced, per mode) before
    /// every ack, truncated by every checkpoint that lands intact.
    wal: Wal,
    /// Cleared permanently when a delta write tears: past that point the
    /// on-disk chain is broken mid-sequence and the journal is the only
    /// durable copy of the acked suffix, so checkpoints must stop truncating
    /// it until a restart replays disk truth.
    wal_ok: bool,
    boot: TenantBoot,
}

impl TenantInner {
    /// Captures the wrapper checkpoint at the current cursor.
    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            next_seq: self.next_seq,
            epoch: self.next_seq,
            engine: self.engine.checkpoint(),
        }
    }

    /// Makes the current state durable: one delta against the chain tip, through
    /// the fault plan, then truncates the journal the delta made redundant.  A
    /// no-op when no batch was applied since the tip.
    fn persist(&mut self, faults: &FaultPlan) -> Result<(), String> {
        if self.next_seq == self.chain.tip_epoch() {
            return Ok(());
        }
        let full = self.snapshot().encode();
        let delta = encode_delta(
            self.chain.tip_bytes(),
            &full,
            self.chain.tip_epoch(),
            self.next_seq,
        )
        .map_err(|e| format!("encoding delta: {e}"))?;
        self.chain
            .append_delta(delta.clone())
            .map_err(|e| format!("appending delta: {e}"))?;
        let intact = self
            .storage
            .append_delta(&delta, faults)
            .map_err(|e| format!("writing delta: {e}"))?;
        if !intact {
            self.wal_ok = false;
        }
        if self.wal_ok {
            self.wal
                .truncate()
                .map_err(|e| format!("truncating journal: {e}"))?;
        }
        Ok(())
    }
}

/// State shared between the accept loop, connection threads, and the handle.
struct Shared {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    factory: EngineFactory,
    data_dir: PathBuf,
    faults: Arc<FaultPlan>,
    /// Set on shutdown/crash; all loops exit when they see it.
    stop: AtomicBool,
    /// Ingest requests currently admitted.
    inflight: AtomicUsize,
    max_inflight: usize,
    durability: Durability,
    group_commit: u64,
    /// Tenant directories found at boot that could not be recovered (set once
    /// after startup recovery; reported by `Status`).
    failed_tenants: AtomicUsize,
}

impl Shared {
    fn tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.read().unwrap().get(name).cloned()
    }

    /// Checkpoints every tenant (the shutdown sweep).  Returns the first error.
    fn persist_all(&self) -> Result<(), String> {
        let tenants: Vec<Arc<Tenant>> = self.tenants.read().unwrap().values().cloned().collect();
        let mut first_err = None;
        for tenant in tenants {
            let mut inner = tenant.inner.lock().unwrap();
            if let Err(e) = inner.persist(&self.faults) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

/// The running server's control handle.  Dropping it stops the server
/// *gracefully* (checkpoint sweep); use [`Request::Crash`] or
/// [`ServerHandle::crash`] to drill the ungraceful path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (`127.0.0.1:0` resolves to a real port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful stop: checkpoint every tenant, then stop accepting and join all
    /// threads.  Returns the first persistence error, if any.
    pub fn stop(mut self) -> Result<(), String> {
        let result = self.shared.persist_all();
        self.halt();
        result
    }

    /// Ungraceful stop: no checkpoint sweep, just halt — the in-process
    /// equivalent of `kill -9`, for drills that cannot spare a process.
    pub fn crash(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Whether the server has stopped (shutdown frame, crash frame, or handle).
    pub fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops on its own (a `Shutdown` or `Crash` frame),
    /// then joins its threads.
    pub fn join(mut self) {
        while !self.stopped() {
            std::thread::sleep(POLL);
        }
        self.halt();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            let _ = self.shared.persist_all();
            self.halt();
        }
    }
}

/// The server constructor.
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), recovers every tenant
    /// directory found under the data dir, and starts serving.  The returned
    /// [`RecoveryReport`] is the typed account of what recovery found — a clean
    /// boot reports every tenant recovered with zero discards.
    pub fn start(
        addr: &str,
        config: ServerConfig,
        factory: EngineFactory,
    ) -> io::Result<(ServerHandle, RecoveryReport)> {
        std::fs::create_dir_all(&config.data_dir)?;
        let shared = Arc::new(Shared {
            tenants: RwLock::new(HashMap::new()),
            factory,
            data_dir: config.data_dir.clone(),
            faults: Arc::clone(&config.faults),
            stop: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight_ingest,
            durability: config.durability,
            group_commit: config.group_commit,
            failed_tenants: AtomicUsize::new(0),
        });
        let report = recover_all(&shared)?;
        shared
            .failed_tenants
            .store(report.failed(), Ordering::SeqCst);

        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok((
            ServerHandle {
                addr: bound,
                shared,
                accept_thread: Some(accept_thread),
            },
            report,
        ))
    }
}

/// Replays every tenant directory through chain recovery and the engine's
/// restore pairing checks.  A tenant that cannot come back is reported Failed
/// and skipped; the server still starts.
fn recover_all(shared: &Shared) -> io::Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    for name in list_tenants(&shared.data_dir)? {
        let outcome = recover_tenant(shared, &name);
        report.tenants.push(TenantRecovery {
            tenant: name,
            outcome,
        });
    }
    Ok(report)
}

fn recover_tenant(shared: &Shared, name: &str) -> TenantOutcome {
    let loaded = match load_tenant(&shared.data_dir, name) {
        Ok(loaded) => loaded,
        Err(error) => return TenantOutcome::Failed { error },
    };
    let config = EngineConfig {
        shards: (loaded.meta.shards as usize).max(1),
        ..EngineConfig::default()
    };
    let Some(mut engine) = (shared.factory)(&loaded.meta.algorithm, config) else {
        return TenantOutcome::Failed {
            error: format!("no engine factory for {:?}", loaded.meta.algorithm),
        };
    };
    if let Err(e) = engine.restore_from(&loaded.snapshot.engine) {
        return TenantOutcome::Failed {
            error: format!("restoring recovered tip: {e}"),
        };
    }
    let storage = match TenantStorage::open(&shared.data_dir, name) {
        Ok(s) => s,
        Err(e) => {
            return TenantOutcome::Failed {
                error: format!("opening storage: {e}"),
            }
        }
    };
    // The chain tip is restored; now repair the journal (truncating any torn
    // tail at the last valid record) and replay its suffix through the
    // idempotency cursor — the batches that were acked but not yet
    // checkpointed when the process died.
    let (wal, wal_recovery) = match Wal::open(storage.dir(), loaded.snapshot.next_seq) {
        Ok(pair) => pair,
        Err(e) => {
            return TenantOutcome::Failed {
                error: format!("opening journal: {e}"),
            }
        }
    };
    let mut next_seq = loaded.snapshot.next_seq;
    for record in &wal_recovery.replay {
        engine.ingest(&record.items);
        next_seq += 1;
    }
    let _ = engine.refresh_view();
    let outcome = TenantOutcome::Recovered {
        epoch: loaded.chain.tip_epoch(),
        next_seq,
        applied: loaded.replay.applied,
        discarded: loaded.replay.discarded.len(),
        wal_replayed: wal_recovery.replay.len() as u64,
        wal_truncated_bytes: wal_recovery.truncated_bytes,
    };
    let serve = engine.serve_handle();
    shared.tenants.write().unwrap().insert(
        name.to_string(),
        Arc::new(Tenant {
            inner: Mutex::new(TenantInner {
                engine,
                next_seq,
                chain: loaded.chain,
                storage,
                wal,
                wal_ok: true,
                boot: TenantBoot {
                    recovered: true,
                    chain_applied: loaded.replay.applied as u64,
                    chain_discarded: loaded.replay.discarded.len() as u64,
                    wal_replayed: wal_recovery.replay.len() as u64,
                    wal_truncated_bytes: wal_recovery.truncated_bytes,
                },
            }),
            serve,
        }),
    );
    outcome
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, conn_shared)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
        conns.retain(|c| !c.is_finished());
    }
    for conn in conns {
        let _ = conn.join();
    }
}

/// Waits for the next frame: idle-polls via `peek` under the short [`POLL`]
/// timeout (so the stop flag is noticed quickly), and only once bytes are
/// available reads the frame under the generous [`FRAME_TIMEOUT`] — a peer that
/// pauses *between* frames is simply idle, and one that dribbles a frame slowly
/// gets the full slow-peer budget instead of the poll interval.
fn await_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, FrameError> {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => return Ok(None), // clean EOF at a frame boundary
        Ok(_) => {}
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            return Err(FrameError::Idle)
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
    let result = read_frame(stream);
    let _ = stream.set_read_timeout(Some(POLL));
    result
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(FRAME_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut answered = 0u64;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let payload = match await_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(FrameError::Oversized { announced }) => {
                // Typed refusal, then close: after an oversized announcement the
                // stream cannot be re-synchronized.
                let resp = Response::Error(ServeError::Protocol(format!(
                    "frame announces {announced} bytes"
                )));
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
            // Idle poll: no bytes yet, go around (and re-check the stop flag).
            Err(FrameError::Idle) => continue,
            // Everything else — mid-frame timeouts (a stalled or desynchronized
            // peer), torn frames, transport errors — closes the connection; the
            // framing cannot be trusted past this point.
            Err(_) => return,
        };
        let (response, control) = match Request::decode(&payload) {
            Ok(request) => handle_request(&shared, request),
            Err(e) => (
                Response::Error(ServeError::Protocol(e.to_string())),
                Control::None,
            ),
        };
        answered += 1;
        if shared.faults.should_drop(answered) {
            // The injected worst case: the request took effect, the response is
            // lost.  Clients must retry idempotently.
            return;
        }
        if matches!(control, Control::Crash) {
            // kill -9: no goodbye frame, nothing persisted.
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
        if matches!(control, Control::Shutdown) {
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Post-response connection control.
enum Control {
    None,
    Shutdown,
    Crash,
}

fn handle_request(shared: &Shared, request: Request) -> (Response, Control) {
    if shared.stop.load(Ordering::SeqCst) {
        return (Response::Error(ServeError::ShuttingDown), Control::None);
    }
    match request {
        Request::CreateTenant {
            tenant,
            algorithm,
            shards,
        } => (
            create_tenant(shared, &tenant, &algorithm, shards),
            Control::None,
        ),
        Request::Ingest { tenant, seq, items } => ingest(shared, &tenant, seq, &items),
        Request::Query { tenant, query } => (query_tenant(shared, &tenant, &query), Control::None),
        Request::Checkpoint { tenant } => (checkpoint_tenant(shared, &tenant), Control::None),
        Request::Stats { tenant } => (stats_tenant(shared, &tenant), Control::None),
        Request::Status => (status(shared), Control::None),
        Request::Shutdown => {
            let response = match shared.persist_all() {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(ServeError::Internal(e)),
            };
            (response, Control::Shutdown)
        }
        Request::Crash => {
            if shared.faults.crash_frame_allowed() {
                (Response::Ok, Control::Crash)
            } else {
                (
                    Response::Error(ServeError::Protocol(
                        "crash frame requires an armed fault plan".into(),
                    )),
                    Control::None,
                )
            }
        }
    }
}

fn create_tenant(shared: &Shared, tenant: &str, algorithm: &str, shards: u32) -> Response {
    if !valid_tenant_name(tenant) {
        return Response::Error(ServeError::Protocol(format!(
            "invalid tenant name {tenant:?}"
        )));
    }
    let config = EngineConfig {
        shards: (shards as usize).max(1),
        ..EngineConfig::default()
    };
    let mut map = shared.tenants.write().unwrap();
    if map.contains_key(tenant) {
        return Response::Error(ServeError::TenantExists(tenant.to_string()));
    }
    let Some(engine) = (shared.factory)(algorithm, config) else {
        return Response::Error(ServeError::UnknownAlgorithm(algorithm.to_string()));
    };
    let _ = engine.refresh_view();
    let base = TenantSnapshot {
        next_seq: 0,
        epoch: 0,
        engine: engine.checkpoint(),
    };
    let meta = TenantMeta {
        algorithm: algorithm.to_string(),
        shards: shards.max(1),
    };
    let storage =
        match TenantStorage::create(&shared.data_dir, tenant, &meta, &base, &shared.faults) {
            Ok(s) => s,
            Err(e) => return Response::Error(ServeError::Internal(format!("provisioning: {e}"))),
        };
    let wal = match Wal::create(storage.dir()) {
        Ok(w) => w,
        Err(e) => return Response::Error(ServeError::Internal(format!("creating journal: {e}"))),
    };
    let chain = match CheckpointChain::new(base.encode(), 0) {
        Ok(c) => c,
        Err(e) => return Response::Error(ServeError::Internal(format!("chain base: {e}"))),
    };
    let serve = engine.serve_handle();
    map.insert(
        tenant.to_string(),
        Arc::new(Tenant {
            inner: Mutex::new(TenantInner {
                engine,
                next_seq: 0,
                chain,
                storage,
                wal,
                wal_ok: true,
                boot: TenantBoot::fresh(),
            }),
            serve,
        }),
    );
    Response::Ok
}

fn ingest(shared: &Shared, tenant: &str, seq: u64, items: &[u64]) -> (Response, Control) {
    // Admission first: shed before queueing on any lock.
    if shared.inflight.fetch_add(1, Ordering::SeqCst) + 1 > shared.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        return (Response::Error(ServeError::Overloaded), Control::None);
    }
    let result = ingest_admitted(shared, tenant, seq, items);
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    result
}

/// The write path, in ack-contract order: journal append → sync (per mode) →
/// apply → ack.  [`Control::Crash`] exits mean the client never sees an ack —
/// either an armed [`CrashPoint`] fired, or the journal append itself tore
/// (a torn append *is* the crash: appending more records behind the tear would
/// strand them past damage, so the server dies exactly where the write died).
fn ingest_admitted(shared: &Shared, tenant: &str, seq: u64, items: &[u64]) -> (Response, Control) {
    let Some(tenant) = shared.tenant(tenant) else {
        return (
            Response::Error(ServeError::UnknownTenant(tenant.to_string())),
            Control::None,
        );
    };
    let mut inner = tenant.inner.lock().unwrap();
    if let Some(stall) = shared.faults.ingest_stall() {
        std::thread::sleep(stall);
    }
    if seq < inner.next_seq {
        // A retried batch whose first copy landed: ack without re-applying.
        return (
            Response::IngestAck {
                seq,
                applied: false,
            },
            Control::None,
        );
    }
    if seq > inner.next_seq {
        return (
            Response::Error(ServeError::SeqGap {
                expected: inner.next_seq,
                found: seq,
            }),
            Control::None,
        );
    }
    let nth = shared.faults.ingest_begun();
    if shared.faults.crash_now(CrashPoint::BeforeJournal, nth) {
        return (Response::Ok, Control::Crash);
    }
    match inner.wal.append(seq, items, &shared.faults) {
        Ok(WalAppend::Clean) => {}
        // Latent media damage: framing intact, so later appends still land
        // behind it; the *next* recovery's checksum pass truncates there.
        Ok(WalAppend::Corrupt) => {}
        Ok(WalAppend::Torn) => return (Response::Ok, Control::Crash),
        Err(e) => {
            return (
                Response::Error(ServeError::Internal(format!("journal append: {e}"))),
                Control::None,
            )
        }
    }
    let synced = match shared.durability {
        Durability::AckAfterDurable => inner.wal.sync(),
        Durability::AckAfterApply => inner.wal.maybe_sync(shared.group_commit),
    };
    if let Err(e) = synced {
        return (
            Response::Error(ServeError::Internal(format!("journal sync: {e}"))),
            Control::None,
        );
    }
    if shared.faults.crash_now(CrashPoint::AfterJournal, nth) {
        return (Response::Ok, Control::Crash);
    }
    inner.engine.ingest(items);
    inner.next_seq += 1;
    // Publish for the lock-free readers; a failure here means a query raced a
    // poisoned merge, which the engine surfaces on its own query path too.
    let _ = inner.engine.refresh_view();
    if shared.faults.crash_now(CrashPoint::AfterApply, nth) {
        return (Response::Ok, Control::Crash);
    }
    (Response::IngestAck { seq, applied: true }, Control::None)
}

fn query_tenant(shared: &Shared, tenant: &str, query: &fsc_state::Query) -> Response {
    let Some(tenant) = shared.tenant(tenant) else {
        return Response::Error(ServeError::UnknownTenant(tenant.to_string()));
    };
    // Lock-free fast path: the published view.
    if let Some(answer) = tenant.serve.serve(query) {
        return Response::Answer(answer);
    }
    // Nothing published yet (possible only before the first refresh): fall back
    // to the locked engine.
    let inner = tenant.inner.lock().unwrap();
    match inner.engine.query(query) {
        Ok(answer) => Response::Answer(answer),
        Err(e) => Response::Error(ServeError::Internal(e.to_string())),
    }
}

fn checkpoint_tenant(shared: &Shared, tenant: &str) -> Response {
    let Some(tenant) = shared.tenant(tenant) else {
        return Response::Error(ServeError::UnknownTenant(tenant.to_string()));
    };
    let mut inner = tenant.inner.lock().unwrap();
    match inner.persist(&shared.faults) {
        Ok(()) => Response::Ok,
        Err(e) => Response::Error(ServeError::Internal(e)),
    }
}

fn stats_tenant(shared: &Shared, tenant: &str) -> Response {
    let Some(tenant) = shared.tenant(tenant) else {
        return Response::Error(ServeError::UnknownTenant(tenant.to_string()));
    };
    let inner = tenant.inner.lock().unwrap();
    Response::Stats(TenantStats {
        ingested: inner.engine.ingested(),
        next_seq: inner.next_seq,
        rebuilds: inner.engine.view_rebuilds(),
        chain_len: inner.chain.len() as u64,
    })
}

/// The server-wide durability status: mode, boot recovery counts, live
/// journal state — everything the remote clean-recovery assertion needs.
fn status(shared: &Shared) -> Response {
    let tenants: Vec<(String, Arc<Tenant>)> = {
        let map = shared.tenants.read().unwrap();
        let mut out: Vec<_> = map
            .iter()
            .map(|(name, tenant)| (name.clone(), Arc::clone(tenant)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    };
    let mut rows = Vec::with_capacity(tenants.len());
    for (name, tenant) in tenants {
        let inner = tenant.inner.lock().unwrap();
        rows.push(TenantStatus {
            tenant: name,
            recovered: inner.boot.recovered,
            next_seq: inner.next_seq,
            chain_applied: inner.boot.chain_applied,
            chain_discarded: inner.boot.chain_discarded,
            wal_replayed: inner.boot.wal_replayed,
            wal_truncated_bytes: inner.boot.wal_truncated_bytes,
            wal_records: inner.wal.records(),
            wal_bytes: inner.wal.len(),
            wal_appended_bytes: inner.wal.appended_bytes(),
        });
    }
    Response::Status(ServerStatus {
        durability: shared.durability,
        group_commit: shared.group_commit,
        failed_tenants: shared.failed_tenants.load(Ordering::SeqCst) as u64,
        tenants: rows,
    })
}
