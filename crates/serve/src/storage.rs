//! Per-tenant durable state: one directory per tenant holding a meta record, a
//! base checkpoint, and an append-only run of delta files — the on-disk form of
//! a [`CheckpointChain`].
//!
//! ```text
//! <root>/<tenant>/meta.fscs         # algorithm id + shard count
//! <root>/<tenant>/base.fscs         # wrapper checkpoint (next_seq + engine bytes)
//! <root>/<tenant>/delta-000000.fscd # deltas, in append order
//! <root>/<tenant>/delta-000001.fscd
//! <root>/<tenant>/wal.fscw          # write-ahead batch journal (see `wal`)
//! ```
//!
//! Every durable write here is fsynced (file *and* parent directory), so
//! "durable" means surviving power loss, not just process kill.
//!
//! Checkpoints persist the *wrapper* ([`TenantSnapshot`]: ingest sequence
//! number plus nested engine checkpoint), not the bare engine, so the cursor
//! rides inside the same delta chain as the summary state — a recovered tenant
//! knows exactly which batches it holds, and a retrying client's duplicate
//! detection survives the crash.
//!
//! All durable writes route through the [`FaultPlan`], which may tear them; the
//! read path is therefore written against torn files as the *normal* case:
//! [`CheckpointChain::recover`] replays the newest valid prefix and reports what
//! it discarded, and stale torn deltas left behind on disk are re-discarded on
//! every subsequent load (appending continues past them, and the chain's
//! epoch-pairing validation keeps them from ever applying).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fsc_state::delta::{ChainRecovery, CheckpointChain};
use fsc_state::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::faults::FaultPlan;

/// `FSCS` id of the tenant meta record.
pub const META_ID: &str = "fsc_serve_meta";
/// `FSCS` id of the wrapper checkpoint the delta chain runs over.
pub const TENANT_SNAPSHOT_ID: &str = "fsc_serve_tenant";

/// The immutable facts about a tenant (written once at provisioning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantMeta {
    /// Registry algorithm id (e.g. `"count_min"`).
    pub algorithm: String,
    /// Engine shard count.
    pub shards: u32,
}

impl TenantMeta {
    /// Encodes the meta record.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(META_ID);
        w.str(&self.algorithm);
        w.u32(self.shards);
        w.finish()
    }

    /// Decodes a meta record (total).
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, META_ID)?;
        let meta = Self {
            algorithm: r.string()?,
            shards: r.u32()?,
        };
        r.finish()?;
        Ok(meta)
    }
}

/// The wrapper checkpoint: idempotency cursor + nested engine checkpoint, taken
/// at one ingest epoch.  This is what the delta chain diffs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Next expected ingest sequence number at capture time.
    pub next_seq: u64,
    /// Ingest epoch (engine items ingested) at capture time.
    pub epoch: u64,
    /// Nested [`DynEngine::checkpoint`](fsc_engine::DynEngine::checkpoint) bytes.
    pub engine: Vec<u8>,
}

impl TenantSnapshot {
    /// Encodes the wrapper.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(TENANT_SNAPSHOT_ID);
        w.u64(self.next_seq);
        w.u64(self.epoch);
        w.bytes(&self.engine);
        w.finish()
    }

    /// Decodes the wrapper (total).
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, TENANT_SNAPSHOT_ID)?;
        let snap = Self {
            next_seq: r.u64()?,
            epoch: r.u64()?,
            engine: r.byte_slice()?.to_vec(),
        };
        r.finish()?;
        Ok(snap)
    }
}

/// One tenant's directory.
#[derive(Debug, Clone)]
pub struct TenantStorage {
    dir: PathBuf,
    /// Index the next delta file gets (max existing index + 1, so discarded torn
    /// files are left in place and skipped forever).
    next_delta: u64,
}

fn delta_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("delta-{index:06}.fscd"))
}

/// Writes `bytes` to `path` and fsyncs the file. The caller still owes a
/// [`sync_dir`] on the parent if the file is new.
fn durable_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = fs::File::create(path)?;
    io::Write::write_all(&mut file, bytes)?;
    file.sync_all()
}

/// Fsyncs a directory, so a just-created file's *name* survives power loss
/// (a file's own `sync_all` makes its bytes durable, not its directory entry).
/// No-op off Unix, where directories cannot be opened for syncing.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Lists `(index, path)` of the delta files present, in index order.
fn delta_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("delta-")
            .and_then(|rest| rest.strip_suffix(".fscd"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable_by_key(|(index, _)| *index);
    Ok(out)
}

impl TenantStorage {
    /// Provisions a tenant directory: creates it and writes the meta record and
    /// the base checkpoint (the latter through the fault plan).
    pub fn create(
        root: &Path,
        tenant: &str,
        meta: &TenantMeta,
        base: &TenantSnapshot,
        faults: &FaultPlan,
    ) -> io::Result<Self> {
        let dir = root.join(tenant);
        fs::create_dir_all(&dir)?;
        durable_write(&dir.join("meta.fscs"), &meta.encode())?;
        let bytes = base.encode();
        let written = faults.tear_write(&bytes).unwrap_or(bytes);
        durable_write(&dir.join("base.fscs"), &written)?;
        sync_dir(&dir)?;
        sync_dir(root)?;
        Ok(Self { dir, next_delta: 0 })
    }

    /// Opens an existing tenant directory without reading state.
    pub fn open(root: &Path, tenant: &str) -> io::Result<Self> {
        let dir = root.join(tenant);
        if !dir.join("meta.fscs").is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("tenant {tenant:?} has no meta record"),
            ));
        }
        let next_delta = delta_files(&dir)?
            .last()
            .map(|(index, _)| index + 1)
            .unwrap_or(0);
        Ok(Self { dir, next_delta })
    }

    /// Appends one delta blob (through the fault plan), fsyncing the file and
    /// its directory.  The in-memory chain has already validated it; a tear
    /// here is exactly the crash-mid-write case the recovery path drills.
    ///
    /// Returns whether the blob landed intact (`false` means the fault plan
    /// tore it — the caller must then treat the on-disk chain as damaged and
    /// stop truncating the journal, or acked batches past the tear would have
    /// no durable copy anywhere).
    pub fn append_delta(&mut self, delta: &[u8], faults: &FaultPlan) -> io::Result<bool> {
        let path = delta_path(&self.dir, self.next_delta);
        self.next_delta += 1;
        let torn = faults.tear_write(delta);
        let intact = torn.is_none();
        durable_write(&path, torn.as_deref().unwrap_or(delta))?;
        sync_dir(&self.dir)?;
        Ok(intact)
    }

    /// The tenant directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Everything read back from a tenant directory, before chain replay.
#[derive(Debug)]
pub struct LoadedTenant {
    /// The meta record.
    pub meta: TenantMeta,
    /// Replayed chain (newest valid prefix) and what the replay discarded.
    pub chain: CheckpointChain,
    /// The replay report.
    pub replay: ChainRecovery,
    /// The wrapper decoded from the chain tip.
    pub snapshot: TenantSnapshot,
}

/// Reads a tenant directory back and replays its chain past any torn or corrupt
/// entries.  Errors mean the tenant is unrecoverable (missing/torn meta or base,
/// or a tip wrapper that does not decode) — per-tenant isolation turns that into
/// one failed tenant, never a failed server.
pub fn load_tenant(root: &Path, tenant: &str) -> Result<LoadedTenant, String> {
    let dir = root.join(tenant);
    let meta_bytes = fs::read(dir.join("meta.fscs")).map_err(|e| format!("reading meta: {e}"))?;
    let meta = TenantMeta::decode(&meta_bytes).map_err(|e| format!("decoding meta: {e}"))?;
    let base_bytes = fs::read(dir.join("base.fscs")).map_err(|e| format!("reading base: {e}"))?;
    let base_epoch = TenantSnapshot::decode(&base_bytes)
        .map_err(|e| format!("decoding base checkpoint: {e}"))?
        .epoch;
    let mut deltas = Vec::new();
    for (_, path) in delta_files(&dir).map_err(|e| format!("listing deltas: {e}"))? {
        deltas.push(fs::read(&path).map_err(|e| format!("reading {path:?}: {e}"))?);
    }
    let (chain, replay) = CheckpointChain::recover(base_bytes, base_epoch, deltas)
        .map_err(|e| format!("replaying chain: {e}"))?;
    let snapshot = TenantSnapshot::decode(chain.tip_bytes())
        .map_err(|e| format!("decoding recovered tip: {e}"))?;
    Ok(LoadedTenant {
        meta,
        chain,
        replay,
        snapshot,
    })
}

/// Tenant directories present under `root` (sorted; empty when `root` does not
/// exist yet).
pub fn list_tenants(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if entry.path().join("meta.fscs").is_file() {
            out.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// What startup recovery concluded about one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantOutcome {
    /// The tenant is live again at `epoch`, `discarded` damaged chain entries
    /// were dropped during replay.
    Recovered {
        /// Ingest epoch of the recovered tip.
        epoch: u64,
        /// Next expected ingest sequence number.
        next_seq: u64,
        /// Deltas applied during replay.
        applied: usize,
        /// Damaged chain entries discarded during replay.
        discarded: usize,
        /// Journal batches replayed past the chain tip.
        wal_replayed: u64,
        /// Bytes of torn journal tail truncated at the last valid record.
        wal_truncated_bytes: u64,
    },
    /// The tenant could not be brought back (reason stringified); other tenants
    /// are unaffected.
    Failed {
        /// Why.
        error: String,
    },
}

/// Per-tenant outcome of one server startup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRecovery {
    /// Tenant name.
    pub tenant: String,
    /// What happened.
    pub outcome: TenantOutcome,
}

/// The typed startup-recovery report: one entry per tenant directory found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Per-tenant outcomes, sorted by tenant name.
    pub tenants: Vec<TenantRecovery>,
}

impl RecoveryReport {
    /// Tenants brought back live.
    pub fn recovered(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| matches!(t.outcome, TenantOutcome::Recovered { .. }))
            .count()
    }

    /// Tenants that could not be brought back.
    pub fn failed(&self) -> usize {
        self.tenants.len() - self.recovered()
    }

    /// Total damaged chain entries discarded across recovered tenants.
    pub fn total_discarded(&self) -> usize {
        self.tenants
            .iter()
            .map(|t| match t.outcome {
                TenantOutcome::Recovered { discarded, .. } => discarded,
                TenantOutcome::Failed { .. } => 0,
            })
            .sum()
    }

    /// Total journal batches replayed past chain tips across recovered tenants.
    pub fn total_wal_replayed(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| match t.outcome {
                TenantOutcome::Recovered { wal_replayed, .. } => wal_replayed,
                TenantOutcome::Failed { .. } => 0,
            })
            .sum()
    }

    /// Total torn journal bytes truncated across recovered tenants.
    pub fn total_wal_truncated_bytes(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| match t.outcome {
                TenantOutcome::Recovered {
                    wal_truncated_bytes,
                    ..
                } => wal_truncated_bytes,
                TenantOutcome::Failed { .. } => 0,
            })
            .sum()
    }

    /// Whether every tenant came back with nothing discarded or truncated.
    /// Journal *replay* is clean — it is the journal doing its job — but a
    /// truncated tail means a record was torn or corrupted on disk.
    pub fn is_clean(&self) -> bool {
        self.failed() == 0 && self.total_discarded() == 0 && self.total_wal_truncated_bytes() == 0
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tenant(s): {} recovered, {} failed, {} chain entr(ies) discarded, \
             {} journal batch(es) replayed, {} journal byte(s) truncated",
            self.tenants.len(),
            self.recovered(),
            self.failed(),
            self.total_discarded(),
            self.total_wal_replayed(),
            self.total_wal_truncated_bytes()
        )?;
        for t in &self.tenants {
            match &t.outcome {
                TenantOutcome::Recovered {
                    epoch,
                    next_seq,
                    applied,
                    discarded,
                    wal_replayed,
                    wal_truncated_bytes,
                } => write!(
                    f,
                    "; {}: epoch {epoch}, next_seq {next_seq}, {applied} applied, \
                     {discarded} discarded, {wal_replayed} replayed, \
                     {wal_truncated_bytes} truncated",
                    t.tenant
                )?,
                TenantOutcome::Failed { error } => write!(f, "; {}: FAILED ({error})", t.tenant)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fsc-serve-storage-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot(next_seq: u64, epoch: u64, payload: &[u64]) -> TenantSnapshot {
        let mut w = SnapshotWriter::new("unit_engine");
        for &v in payload {
            w.u64(v);
        }
        TenantSnapshot {
            next_seq,
            epoch,
            engine: w.finish(),
        }
    }

    #[test]
    fn wrapper_and_meta_round_trip() {
        let meta = TenantMeta {
            algorithm: "count_min".into(),
            shards: 3,
        };
        assert_eq!(TenantMeta::decode(&meta.encode()).unwrap(), meta);
        let snap = snapshot(5, 800, &[1, 2, 3]);
        assert_eq!(TenantSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn a_tenant_round_trips_through_its_directory() {
        let root = tmp_dir("roundtrip");
        let faults = FaultPlan::none();
        let meta = TenantMeta {
            algorithm: "count_min".into(),
            shards: 2,
        };
        let base = snapshot(0, 0, &[0, 0]);
        let mut storage = TenantStorage::create(&root, "t0", &meta, &base, &faults).unwrap();

        let mut chain = CheckpointChain::new(base.encode(), 0).unwrap();
        for (seq, epoch) in [(1u64, 100u64), (2, 200)] {
            let snap = snapshot(seq, epoch, &[seq, epoch]);
            let delta = record_delta(&mut chain, &snap.encode(), epoch);
            assert!(storage.append_delta(&delta, &faults).unwrap());
        }

        let loaded = load_tenant(&root, "t0").unwrap();
        assert_eq!(loaded.meta, meta);
        assert!(loaded.replay.is_clean());
        assert_eq!(loaded.snapshot.next_seq, 2);
        assert_eq!(loaded.snapshot.epoch, 200);
        assert_eq!(list_tenants(&root).unwrap(), vec!["t0".to_string()]);
        fs::remove_dir_all(&root).unwrap();
    }

    /// Diffs `full` against the chain tip, appends it, and returns the delta
    /// bytes to persist — the same encode-append-write order the server uses.
    fn record_delta(chain: &mut CheckpointChain, full: &[u8], epoch: u64) -> Vec<u8> {
        let delta =
            fsc_state::delta::encode_delta(chain.tip_bytes(), full, chain.tip_epoch(), epoch)
                .unwrap();
        chain.append_delta(delta.clone()).unwrap();
        delta
    }

    #[test]
    fn a_torn_delta_write_is_discarded_on_load_and_future_appends_heal() {
        let root = tmp_dir("torn");
        let meta = TenantMeta {
            algorithm: "count_min".into(),
            shards: 1,
        };
        let base = snapshot(0, 0, &[7, 7, 7, 7]);
        // Writes: 1 = base, 2 = first delta (torn).
        let faults = FaultPlan::seeded(11).with_torn_write(2);
        let mut storage = TenantStorage::create(&root, "t0", &meta, &base, &faults).unwrap();

        let mut chain = CheckpointChain::new(base.encode(), 0).unwrap();
        let snap1 = snapshot(1, 50, &[7, 8, 7, 7]);
        let delta1 = record_delta(&mut chain, &snap1.encode(), 50);
        let intact = storage.append_delta(&delta1, &faults).unwrap();
        assert!(!intact, "the armed tear reports the blob as damaged");

        // The process "dies" here.  A new process reloads:
        let loaded = load_tenant(&root, "t0").unwrap();
        assert_eq!(loaded.replay.applied, 0);
        assert_eq!(loaded.replay.discarded.len(), 1);
        assert_eq!(loaded.snapshot.epoch, 0, "recovered to the base");

        // It resumes from the recovered tip and checkpoints again; the torn file
        // stays on disk but the new delta chains onto the *recovered* tip, so a
        // second reload applies it and re-discards the torn one.
        let mut storage = TenantStorage::open(&root, "t0").unwrap();
        let mut chain = loaded.chain;
        let snap1b = snapshot(1, 60, &[7, 9, 7, 7]);
        let delta = record_delta(&mut chain, &snap1b.encode(), 60);
        storage.append_delta(&delta, &FaultPlan::none()).unwrap();

        let reloaded = load_tenant(&root, "t0").unwrap();
        assert_eq!(reloaded.replay.applied, 1);
        assert_eq!(reloaded.replay.discarded.len(), 1);
        assert_eq!(reloaded.snapshot.epoch, 60);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn a_torn_base_fails_only_that_tenant() {
        let root = tmp_dir("tornbase");
        let meta = TenantMeta {
            algorithm: "count_min".into(),
            shards: 1,
        };
        // First durable write is t-bad's base: torn.
        let faults = FaultPlan::seeded(3).with_torn_write(1);
        TenantStorage::create(&root, "t-bad", &meta, &snapshot(0, 0, &[1]), &faults).unwrap();
        TenantStorage::create(&root, "t-good", &meta, &snapshot(0, 0, &[2]), &faults).unwrap();

        assert!(load_tenant(&root, "t-bad").is_err());
        assert!(load_tenant(&root, "t-good").is_ok());
        assert_eq!(list_tenants(&root).unwrap().len(), 2);
        fs::remove_dir_all(&root).unwrap();
    }
}
