//! Per-tenant write-ahead batch journal: the durability layer under the ack.
//!
//! Checkpoints (`storage` + `fsc_persist`) make the *applied* prefix durable,
//! but only when a checkpoint runs. The journal closes the gap: every ingest
//! batch is appended here — length-prefixed, seq-stamped, checksummed — before
//! the server acknowledges it (in [`Durability::AckAfterDurable`] mode, fsynced
//! before the ack). Recovery then becomes: restore the chain tip, truncate any
//! torn journal tail at the last valid record, and replay the suffix through
//! the idempotency cursor. An acked batch is either inside the recovered chain
//! prefix or inside the replayed journal suffix — never lost.
//!
//! # On-disk format
//!
//! ```text
//! wal.fscw := magic "FSCW" | version u32 LE | record*
//! record   := len u32 LE | seq u64 LE | checksum u64 LE | item u64 LE × n
//! ```
//!
//! `len` counts everything after itself (`16 + 8·n` bytes), `checksum` is
//! FNV-1a-64 over the seq bytes followed by the item bytes, and seqs within a
//! journal are strictly consecutive. Parsing is total: [`scan`] classifies any
//! byte string into a valid prefix plus an optional typed [`WalError`], and
//! never panics. Damage past the last valid record is *truncated* (a torn
//! append from a crash); the valid prefix is always kept.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::faults::{FaultPlan, WalWriteFault};
use crate::storage::sync_dir;

/// First bytes of every journal file.
pub const WAL_MAGIC: [u8; 4] = *b"FSCW";
/// Format version stamped after the magic.
pub const WAL_VERSION: u32 = 1;
/// Bytes of `magic | version` before the first record.
pub const WAL_HEADER: u64 = 8;
/// Bytes of `len | seq | checksum` framing around each record's items.
pub const RECORD_OVERHEAD: u64 = 20;
/// Hard cap on a single record's `len` field, mirroring the frame cap.
pub const MAX_WAL_RECORD: u32 = 16 << 20;

/// FNV-1a-64 over `bytes` — the journal's record checksum.
///
/// A single flipped byte changes the digest (each step is an XOR followed by
/// multiplication by an odd constant, both injective), which is the failure
/// mode torn and corrupt writes actually produce.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut fnv = Fnv::new();
    fnv.update(bytes);
    fnv.finish()
}

/// Incremental FNV-1a-64, so record checksums avoid concatenating buffers.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Path of the journal inside a tenant directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.fscw")
}

/// When the server acknowledges an ingest batch, relative to durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Ack once the batch is applied in memory and appended to the journal.
    /// The append is fsynced every `group_commit` appends, so a process kill
    /// loses nothing (the page cache survives) and power loss is bounded by
    /// the group-commit window. This is the seed behavior plus a journal.
    #[default]
    AckAfterApply,
    /// Fsync the journal append before every ack: an acked batch survives
    /// power loss. Zero acked-write loss at every crash point.
    AckAfterDurable,
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Durability::AckAfterApply => write!(f, "ack-after-apply"),
            Durability::AckAfterDurable => write!(f, "ack-after-durable"),
        }
    }
}

/// Typed damage found while scanning a journal. `at` is the byte offset of the
/// damaged region; everything before it is a valid prefix that recovery keeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The file does not start with `FSCW`.
    BadMagic,
    /// The version stamp is one this build cannot read.
    UnsupportedVersion(u32),
    /// The file ends mid-record: a torn append.
    Truncated {
        /// Byte offset where the torn record starts.
        at: u64,
    },
    /// A record's length field is malformed (too small, not a whole number of
    /// items, or over the cap) — garbage, not a record.
    BadLength {
        /// Byte offset of the malformed record.
        at: u64,
        /// The length field found there.
        len: u32,
    },
    /// A record frames correctly but its checksum does not match: corruption.
    BadChecksum {
        /// Byte offset of the corrupt record.
        at: u64,
    },
    /// A record's seq is not `prev + 1`: the journal itself is inconsistent.
    OutOfOrderSeq {
        /// Byte offset of the out-of-order record.
        at: u64,
        /// The seq of the record before it.
        prev: u64,
        /// The seq found.
        found: u64,
    },
    /// The first surviving record is past the recovery cursor: the journal
    /// cannot supply the batch the chain tip needs next.
    Gap {
        /// Byte offset of the unusable record.
        at: u64,
        /// The seq the chain tip needs next.
        expected: u64,
        /// The seq found.
        found: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::BadMagic => write!(f, "journal header is not FSCW"),
            WalError::UnsupportedVersion(v) => write!(f, "unsupported journal version {v}"),
            WalError::Truncated { at } => write!(f, "torn journal record at byte {at}"),
            WalError::BadLength { at, len } => {
                write!(f, "malformed journal record length {len} at byte {at}")
            }
            WalError::BadChecksum { at } => {
                write!(f, "journal record checksum mismatch at byte {at}")
            }
            WalError::OutOfOrderSeq { at, prev, found } => write!(
                f,
                "journal seq {found} after {prev} at byte {at} (records must be consecutive)"
            ),
            WalError::Gap {
                at,
                expected,
                found,
            } => write!(
                f,
                "journal starts at seq {found} but recovery needs seq {expected} (byte {at})"
            ),
        }
    }
}

impl std::error::Error for WalError {}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Byte offset of the record's length field inside the file.
    pub at: u64,
    /// Ingest sequence number the batch was acked under.
    pub seq: u64,
    /// The batch items, exactly as ingested.
    pub items: Vec<u64>,
}

/// Result of a total scan: the valid prefix and the first damage past it.
#[derive(Debug)]
pub struct WalScan {
    /// Every record in the valid prefix, in order.
    pub records: Vec<WalRecord>,
    /// Bytes of the valid prefix (header + whole records). Truncating the
    /// file to this length removes exactly the damage.
    pub valid_len: u64,
    /// The first damage found, if any. `None` means the file is clean.
    pub damage: Option<WalError>,
}

/// Totally parse a journal image: never panics, classifies every byte string.
pub fn scan(bytes: &[u8]) -> WalScan {
    if bytes.len() < WAL_HEADER as usize {
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            damage: Some(WalError::Truncated { at: 0 }),
        };
    }
    if bytes[..4] != WAL_MAGIC {
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            damage: Some(WalError::BadMagic),
        };
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != WAL_VERSION {
        return WalScan {
            records: Vec::new(),
            valid_len: 0,
            damage: Some(WalError::UnsupportedVersion(version)),
        };
    }

    let mut records = Vec::new();
    let mut offset = WAL_HEADER as usize;
    let mut prev_seq: Option<u64> = None;
    let damage = loop {
        if offset == bytes.len() {
            break None;
        }
        let at = offset as u64;
        if bytes.len() - offset < 4 {
            break Some(WalError::Truncated { at });
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        if len < 16 || (len - 16) % 8 != 0 || len > MAX_WAL_RECORD {
            break Some(WalError::BadLength { at, len });
        }
        if bytes.len() - offset - 4 < len as usize {
            break Some(WalError::Truncated { at });
        }
        let body = &bytes[offset + 4..offset + 4 + len as usize];
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        let checksum = u64::from_le_bytes(body[8..16].try_into().unwrap());
        let mut fnv = Fnv::new();
        fnv.update(&body[..8]);
        fnv.update(&body[16..]);
        if fnv.finish() != checksum {
            break Some(WalError::BadChecksum { at });
        }
        if let Some(prev) = prev_seq {
            if seq != prev + 1 {
                break Some(WalError::OutOfOrderSeq {
                    at,
                    prev,
                    found: seq,
                });
            }
        }
        let items = body[16..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        records.push(WalRecord { at, seq, items });
        prev_seq = Some(seq);
        offset += 4 + len as usize;
    };
    let valid_len = records.last().map_or(WAL_HEADER, |r| {
        r.at + RECORD_OVERHEAD + 8 * r.items.len() as u64
    });
    WalScan {
        records,
        valid_len,
        damage,
    }
}

/// Encode one record (`len | seq | checksum | items`) ready to append.
fn encode_record(seq: u64, items: &[u64]) -> Vec<u8> {
    let len = 16 + 8 * items.len() as u32;
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    let mut fnv = Fnv::new();
    fnv.update(&seq.to_le_bytes());
    let checksum_at = out.len();
    out.extend_from_slice(&[0u8; 8]);
    for &item in items {
        let b = item.to_le_bytes();
        fnv.update(&b);
        out.extend_from_slice(&b);
    }
    out[checksum_at..checksum_at + 8].copy_from_slice(&fnv.finish().to_le_bytes());
    out
}

/// What recovery replays and repairs when a journal is opened.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Records past the chain tip, in seq order: the suffix to replay.
    pub replay: Vec<WalRecord>,
    /// Records skipped because the chain tip already covers them.
    pub skipped: u64,
    /// Bytes of damaged tail removed from the file (0 on a clean open).
    pub truncated_bytes: u64,
    /// The damage that forced the truncation, if any.
    pub damage: Option<WalError>,
}

/// How an append landed on disk, after fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalAppend {
    /// The full record is in the file (fsynced only per the durability mode).
    Clean,
    /// A fault cut the record short: the file ends mid-record, exactly as a
    /// crash during the write would leave it. The server must treat this as
    /// the crash itself — appending more records behind the tear would strand
    /// them past damage and recovery would truncate them away.
    Torn,
    /// A fault flipped a byte inside the record: latent media damage that the
    /// next recovery detects by checksum and truncates.
    Corrupt,
}

/// An open per-tenant journal.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Bytes in the file (header + records + any injected damage).
    len: u64,
    /// Bytes known fsynced. `len > synced_len` is the power-loss exposure.
    synced_len: u64,
    unsynced_appends: u64,
    /// Records currently in the journal (reset by `truncate`).
    records: u64,
    /// Lifetime appends since open — survive truncation, feed the cost sweep.
    appended_records: u64,
    appended_bytes: u64,
    /// Set when a failed append could not be rolled back: the file may end in
    /// garbage, so further appends would be stranded behind it.
    poisoned: bool,
}

impl Wal {
    /// Create a fresh journal in `dir`, durably (file and directory synced).
    pub fn create(dir: &Path) -> io::Result<Wal> {
        let path = wal_path(dir);
        // `truncate` and `append` cannot be combined in `OpenOptions`; open in
        // append mode and empty the file explicitly.
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        file.set_len(0)?;
        let mut header = Vec::with_capacity(WAL_HEADER as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(Wal {
            path,
            file,
            len: WAL_HEADER,
            synced_len: WAL_HEADER,
            unsynced_appends: 0,
            records: 0,
            appended_records: 0,
            appended_bytes: 0,
            poisoned: false,
        })
    }

    /// Open the journal in `dir`, repairing any torn tail and splitting its
    /// records at `cursor` (the recovered chain tip's next expected seq):
    /// records below the cursor are skipped, records from it on are returned
    /// for replay. A missing file is created fresh — tenants from before the
    /// journal existed recover exactly as they used to.
    pub fn open(dir: &Path, cursor: u64) -> io::Result<(Wal, WalRecovery)> {
        let path = wal_path(dir);
        if !path.exists() {
            return Ok((Wal::create(dir)?, WalRecovery::default()));
        }
        let mut file = OpenOptions::new().read(true).append(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let scanned = scan(&bytes);
        let mut recovery = WalRecovery {
            damage: scanned.damage,
            ..WalRecovery::default()
        };

        if scanned.valid_len < WAL_HEADER {
            // Header damage: nothing salvageable. Rewrite a fresh journal and
            // count every byte as truncated.
            recovery.truncated_bytes = bytes.len() as u64;
            return Ok((Wal::create(dir)?, recovery));
        }
        let mut valid_len = scanned.valid_len;
        let mut records = scanned.records;

        // Split at the cursor: the chain tip already covers seqs below it.
        let mut replay = Vec::new();
        for record in records.drain(..) {
            if record.seq < cursor {
                recovery.skipped += 1;
            } else if record.seq == cursor + replay.len() as u64 {
                replay.push(record);
            } else {
                // The journal's surviving records start past the cursor: the
                // batches the chain needs next were never journaled (possible
                // only after on-disk damage elsewhere). Keep the covered
                // prefix, drop the unusable suffix.
                recovery.damage = Some(WalError::Gap {
                    at: record.at,
                    expected: cursor + replay.len() as u64,
                    found: record.seq,
                });
                valid_len = record.at;
                break;
            }
        }
        if valid_len < bytes.len() as u64 {
            recovery.truncated_bytes = bytes.len() as u64 - valid_len;
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        let kept = recovery.skipped + replay.len() as u64;
        recovery.replay = replay;
        Ok((
            Wal {
                path,
                file,
                len: valid_len,
                synced_len: valid_len,
                unsynced_appends: 0,
                records: kept,
                appended_records: 0,
                appended_bytes: 0,
                poisoned: false,
            },
            recovery,
        ))
    }

    /// Append one batch record, applying any injected write fault from
    /// `faults`. Returns how the bytes actually landed. An io error rolls the
    /// file back to its pre-append length so a retry appends cleanly; if the
    /// rollback itself fails the journal is poisoned and every later append
    /// errors (no ack can be issued over a file that may end in garbage).
    pub fn append(&mut self, seq: u64, items: &[u64], faults: &FaultPlan) -> io::Result<WalAppend> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal poisoned by an earlier failed append",
            ));
        }
        let record = encode_record(seq, items);
        let fault = faults.wal_write_fault(&record);
        let (bytes, landed): (&[u8], WalAppend) = match &fault {
            WalWriteFault::Clean => (&record, WalAppend::Clean),
            WalWriteFault::Torn(torn) => (torn, WalAppend::Torn),
            WalWriteFault::Corrupt(mangled) => (mangled, WalAppend::Corrupt),
        };
        if let Err(e) = self.file.write_all(bytes) {
            if self.file.set_len(self.len).is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.len += bytes.len() as u64;
        self.appended_bytes += bytes.len() as u64;
        if landed != WalAppend::Torn {
            self.records += 1;
            self.appended_records += 1;
        }
        self.unsynced_appends += 1;
        Ok(landed)
    }

    /// Fsync the journal: everything appended so far survives power loss.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.synced_len = self.len;
        self.unsynced_appends = 0;
        Ok(())
    }

    /// Fsync only once `group_commit` appends have accumulated (a knob of 0
    /// behaves as 1: every append syncs).
    pub fn maybe_sync(&mut self, group_commit: u64) -> io::Result<()> {
        if self.unsynced_appends >= group_commit.max(1) {
            self.sync()?;
        }
        Ok(())
    }

    /// Drop every record: the checkpoint that just landed covers them all.
    /// Atomic in the crash sense — a crash before the `set_len` leaves the
    /// full journal (recovery skips the covered records via the cursor), a
    /// crash after it leaves the empty journal (recovery replays nothing).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_HEADER)?;
        self.file.sync_all()?;
        self.len = WAL_HEADER;
        self.synced_len = WAL_HEADER;
        self.unsynced_appends = 0;
        self.records = 0;
        Ok(())
    }

    /// Records currently in the journal.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently in the journal file, header included.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Bytes known fsynced (`len` minus the power-loss exposure).
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Lifetime records appended since open (truncation does not reset this).
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Lifetime bytes appended since open (truncation does not reset this).
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Path of the journal file (drills truncate it to simulate power loss).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fsc-serve-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn appended_records_round_trip_through_open() {
        let dir = tmp_dir("roundtrip");
        let faults = FaultPlan::none();
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 0..5u64 {
            let items = vec![seq, seq * 10, seq * 100];
            assert_eq!(wal.append(seq, &items, &faults).unwrap(), WalAppend::Clean);
        }
        wal.sync().unwrap();
        assert_eq!(wal.records(), 5);
        drop(wal);

        let (wal, recovery) = Wal::open(&dir, 0).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.skipped, 0);
        assert!(recovery.damage.is_none());
        assert_eq!(recovery.replay.len(), 5);
        for (seq, record) in recovery.replay.iter().enumerate() {
            assert_eq!(record.seq, seq as u64);
            let seq = seq as u64;
            assert_eq!(record.items, vec![seq, seq * 10, seq * 100]);
        }
        assert_eq!(wal.records(), 5);
    }

    #[test]
    fn the_cursor_splits_skip_from_replay() {
        let dir = tmp_dir("cursor");
        let faults = FaultPlan::none();
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 0..6u64 {
            wal.append(seq, &[seq], &faults).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (_, recovery) = Wal::open(&dir, 4).unwrap();
        assert_eq!(recovery.skipped, 4);
        assert_eq!(
            recovery.replay.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn every_byte_prefix_of_a_journal_truncates_to_whole_records() {
        let dir = tmp_dir("prefix");
        let faults = FaultPlan::none();
        let mut wal = Wal::create(&dir).unwrap();
        let mut boundaries = vec![WAL_HEADER];
        for seq in 0..3u64 {
            wal.append(seq, &[seq, seq + 7], &faults).unwrap();
            boundaries.push(wal.len());
        }
        wal.sync().unwrap();
        drop(wal);
        let image = std::fs::read(wal_path(&dir)).unwrap();

        for cut in 0..=image.len() {
            let sub = dir.join(format!("cut-{cut}"));
            std::fs::create_dir(&sub).unwrap();
            std::fs::write(wal_path(&sub), &image[..cut]).unwrap();
            let (_, recovery) = Wal::open(&sub, 0).unwrap();
            let whole = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(
                recovery.replay.len(),
                whole,
                "cut at byte {cut} must keep exactly the whole records before it"
            );
            let valid = boundaries
                .iter()
                .copied()
                .filter(|&b| b <= cut as u64)
                .max()
                .unwrap_or(0);
            assert_eq!(
                recovery.truncated_bytes,
                cut as u64 - valid,
                "cut at byte {cut} must truncate exactly the torn tail"
            );
            assert_eq!(recovery.damage.is_some(), cut as u64 != valid || cut < 8);
            // The repaired file reopens clean.
            let (_, again) = Wal::open(&sub, 0).unwrap();
            assert!(again.damage.is_none());
            assert_eq!(again.truncated_bytes, 0);
        }
    }

    #[test]
    fn a_flipped_byte_is_caught_and_truncated() {
        let dir = tmp_dir("flip");
        let faults = FaultPlan::none();
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(0, &[1, 2, 3], &faults).unwrap();
        wal.append(1, &[4, 5, 6], &faults).unwrap();
        wal.sync().unwrap();
        let first_record_end = WAL_HEADER + RECORD_OVERHEAD + 24;
        drop(wal);

        let path = wal_path(&dir);
        let mut image = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let target = first_record_end as usize + 21;
        image[target] ^= 0x5A;
        std::fs::write(&path, &image).unwrap();

        let (_, recovery) = Wal::open(&dir, 0).unwrap();
        assert_eq!(recovery.replay.len(), 1);
        assert!(matches!(
            recovery.damage,
            Some(WalError::BadChecksum { at }) if at == first_record_end
        ));
        assert!(recovery.truncated_bytes > 0);
    }

    #[test]
    fn group_commit_syncs_every_nth_append() {
        let dir = tmp_dir("group");
        let faults = FaultPlan::none();
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 0..7u64 {
            wal.append(seq, &[seq], &faults).unwrap();
            wal.maybe_sync(3).unwrap();
        }
        // 7 appends, sync at 3 and 6: one append of exposure remains.
        assert_eq!(wal.len() - wal.synced_len(), RECORD_OVERHEAD + 8);
        wal.sync().unwrap();
        assert_eq!(wal.len(), wal.synced_len());
    }

    #[test]
    fn truncate_resets_the_journal_but_not_lifetime_counters() {
        let dir = tmp_dir("truncate");
        let faults = FaultPlan::none();
        let mut wal = Wal::create(&dir).unwrap();
        for seq in 0..4u64 {
            wal.append(seq, &[seq], &faults).unwrap();
        }
        let appended = wal.appended_bytes();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.len(), WAL_HEADER);
        assert_eq!(wal.appended_records(), 4);
        assert_eq!(wal.appended_bytes(), appended);

        wal.append(4, &[4], &faults).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(&dir, 4).unwrap();
        assert_eq!(recovery.replay.len(), 1);
        assert_eq!(recovery.replay[0].seq, 4);
    }

    #[test]
    fn a_torn_injected_append_leaves_a_repairable_tail() {
        let dir = tmp_dir("torn");
        let mut wal = Wal::create(&dir).unwrap();
        let clean = FaultPlan::none();
        wal.append(0, &[1, 2], &clean).unwrap();
        let faults = FaultPlan::none().with_torn_wal_append(1);
        assert_eq!(wal.append(1, &[3, 4], &faults).unwrap(), WalAppend::Torn);
        wal.sync().unwrap();
        drop(wal);

        let (_, recovery) = Wal::open(&dir, 0).unwrap();
        assert_eq!(recovery.replay.len(), 1);
        assert!(matches!(recovery.damage, Some(WalError::Truncated { .. })));
        assert!(recovery.truncated_bytes > 0);
    }

    #[test]
    fn a_corrupt_injected_append_is_caught_on_reopen() {
        let dir = tmp_dir("corrupt");
        let mut wal = Wal::create(&dir).unwrap();
        let clean = FaultPlan::none();
        wal.append(0, &[1, 2], &clean).unwrap();
        let faults = FaultPlan::none().with_corrupt_wal_record(1);
        assert_eq!(wal.append(1, &[3, 4], &faults).unwrap(), WalAppend::Corrupt);
        wal.sync().unwrap();
        drop(wal);

        let (_, recovery) = Wal::open(&dir, 0).unwrap();
        assert_eq!(recovery.replay.len(), 1);
        assert!(matches!(
            recovery.damage,
            Some(WalError::BadChecksum { .. })
        ));
    }

    #[test]
    fn scan_is_total_over_noise() {
        assert!(scan(b"").damage.is_some());
        assert!(scan(b"FSC").damage.is_some());
        assert!(scan(b"NOPE0000").damage.is_some());
        let mut v2 = Vec::new();
        v2.extend_from_slice(&WAL_MAGIC);
        v2.extend_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            scan(&v2).damage,
            Some(WalError::UnsupportedVersion(2))
        ));
        // A length field of garbage is BadLength, not a panic.
        let mut bad = Vec::new();
        bad.extend_from_slice(&WAL_MAGIC);
        bad.extend_from_slice(&WAL_VERSION.to_le_bytes());
        bad.extend_from_slice(&3u32.to_le_bytes());
        bad.extend_from_slice(&[0; 16]);
        assert!(matches!(
            scan(&bad).damage,
            Some(WalError::BadLength { at: 8, len: 3 })
        ));
    }
}
