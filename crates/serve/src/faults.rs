//! Deterministic fault injection: every failure class the server claims to
//! survive, producible on demand from a seed.
//!
//! The plan is *armed*, not random: each knob names one failure class (torn
//! checkpoint write, dropped connection, stalled reads/ingest) and fires at a
//! configured occurrence count, with any remaining nondeterminism (where a torn
//! write tears, which byte a corruption flips) drawn from a seeded SplitMix64
//! stream.  Runs with the same plan and seed inject byte-identical faults, which
//! is what lets the fault-matrix drill in `fig_serve_net` assert *exact*
//! recovery instead of "it probably worked".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 — the repository's stock deterministic mixer (also used for
/// routing hashes and the proptest shim), reused here for tear offsets and
/// backoff jitter so the serve crate needs no `rand`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where inside the write path of one ingest batch an injected crash fires.
///
/// The three points bracket the journal append and the in-memory apply — the
/// interleavings the durability contract is stated over. In every case the
/// client never sees an ack for the batch in flight; what differs is whether
/// the journal holds the batch when the server comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the journal append: the batch is nowhere on disk.
    BeforeJournal,
    /// After the journal append (and its fsync, per mode) but before the
    /// in-memory apply: recovery replays the batch from the journal.
    AfterJournal,
    /// After the apply but before the ack is written: the batch is journaled
    /// *and* applied, only the ack is lost.
    AfterApply,
}

/// How an injected fault mangles one journal append's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalWriteFault {
    /// Write faithfully.
    Clean,
    /// Write only this prefix: the record is torn mid-write.
    Torn(Vec<u8>),
    /// Write this instead: one byte flipped, framing intact.
    Corrupt(Vec<u8>),
}

/// A seeded injection plan.  [`FaultPlan::none`] (the default) injects nothing
/// and is what production servers run with; drills arm exactly one knob per
/// scenario so observed failures have one cause.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Tear the `nth` durable write (1-based), truncating it at a seeded offset.
    torn_write_at: Option<u64>,
    writes: AtomicU64,
    /// Tear the `nth` journal append (1-based) at a seeded offset.
    torn_wal_at: Option<u64>,
    /// Flip one seeded byte inside the `nth` journal append (1-based).
    corrupt_wal_at: Option<u64>,
    wal_appends: AtomicU64,
    /// Crash at this point inside the `nth` ingest (1-based).
    crash_at: Option<(CrashPoint, u64)>,
    ingests: AtomicU64,
    /// Drop each connection after it has answered this many frames.
    drop_after_frames: Option<u64>,
    /// Added to every ingest, holding the tenant lock (drills the admission
    /// bound: concurrent writers see `Overloaded`, readers stay live).
    stall_ingest: Option<Duration>,
    /// Whether the [`Request::Crash`](crate::protocol::Request::Crash) drill
    /// frame is honored.
    allow_crash_frame: bool,
}

impl FaultPlan {
    /// The empty plan: no injected faults, crash frame refused.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan seeded for reproducible tear offsets and flips.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Arms a torn durable write: the `nth` persisted blob (1-based, counted
    /// across all tenants) is truncated mid-write, as if the process died there.
    pub fn with_torn_write(mut self, nth: u64) -> Self {
        self.torn_write_at = Some(nth);
        self
    }

    /// Arms a torn journal append: the `nth` append (1-based, counted across
    /// all tenants) writes only a seeded prefix of its record, as if the
    /// process died mid-append.
    pub fn with_torn_wal_append(mut self, nth: u64) -> Self {
        self.torn_wal_at = Some(nth);
        self
    }

    /// Arms a corrupt journal record: one seeded byte of the `nth` append
    /// (1-based) is flipped before it reaches the file — latent media damage
    /// that only the next recovery's checksum pass can see.
    pub fn with_corrupt_wal_record(mut self, nth: u64) -> Self {
        self.corrupt_wal_at = Some(nth);
        self
    }

    /// Arms an injected crash at `point` inside the `nth` ingest (1-based,
    /// counted across all tenants). The connection dies without a response,
    /// exactly like a `kill -9` at that instruction.
    pub fn with_crash_at(mut self, point: CrashPoint, nth: u64) -> Self {
        self.crash_at = Some((point, nth));
        self
    }

    /// Arms connection drops: every connection dies after answering `frames`
    /// frames (the drop happens *after* the request takes effect but *before*
    /// the response is written — the worst case for a retrying client).
    pub fn with_drop_after_frames(mut self, frames: u64) -> Self {
        self.drop_after_frames = Some(frames);
        self
    }

    /// Arms slow ingest: every ingest holds the tenant for `stall` extra time.
    pub fn with_stall_ingest(mut self, stall: Duration) -> Self {
        self.stall_ingest = Some(stall);
        self
    }

    /// Honors the `Crash` control frame (kill-without-checkpoint drills).
    pub fn with_crash_frame(mut self) -> Self {
        self.allow_crash_frame = true;
        self
    }

    /// Whether the `Crash` control frame is honored.
    pub fn crash_frame_allowed(&self) -> bool {
        self.allow_crash_frame
    }

    /// Called by the storage layer before each durable write.  Returns the
    /// bytes to *actually* write: a seeded-truncation of `bytes` on the armed
    /// occurrence, `None` (write faithfully) otherwise.
    ///
    /// The tear keeps at least 1 byte and drops at least 1 byte, so an armed
    /// tear is never accidentally a no-op or an empty file.
    pub fn tear_write(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let nth = self.torn_write_at?;
        let count = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if count != nth || bytes.len() < 2 {
            return None;
        }
        let mut state = self.seed ^ nth;
        let cut = 1 + (splitmix64(&mut state) as usize) % (bytes.len() - 1);
        Some(bytes[..cut].to_vec())
    }

    /// Called by the journal before each append.  Returns how to mangle the
    /// record bytes: torn (seeded prefix, ≥ 1 byte kept and ≥ 1 dropped) or
    /// corrupt (one seeded byte flipped) on the armed occurrence, clean
    /// otherwise.  Appends are counted across both knobs so `nth` means "the
    /// nth journal append", whichever fault is armed.
    pub fn wal_write_fault(&self, bytes: &[u8]) -> WalWriteFault {
        if self.torn_wal_at.is_none() && self.corrupt_wal_at.is_none() {
            return WalWriteFault::Clean;
        }
        let count = self.wal_appends.fetch_add(1, Ordering::Relaxed) + 1;
        if self.torn_wal_at == Some(count) && bytes.len() >= 2 {
            let mut state = self.seed ^ count;
            let cut = 1 + (splitmix64(&mut state) as usize) % (bytes.len() - 1);
            return WalWriteFault::Torn(bytes[..cut].to_vec());
        }
        if self.corrupt_wal_at == Some(count) && !bytes.is_empty() {
            let mut mangled = bytes.to_vec();
            flip_one_byte(&mut mangled, self.seed ^ count);
            return WalWriteFault::Corrupt(mangled);
        }
        WalWriteFault::Clean
    }

    /// Journal appends attempted so far (tells a drill whether its fault fired).
    pub fn wal_appends_seen(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// Called by the server at the top of each admitted ingest.  Returns the
    /// 1-based ordinal of this ingest, which the crash-point checks below key on.
    pub fn ingest_begun(&self) -> u64 {
        self.ingests.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether the armed crash fires at `point` inside ingest number `nth`.
    pub fn crash_now(&self, point: CrashPoint, nth: u64) -> bool {
        self.crash_at == Some((point, nth))
    }

    /// Whether a connection that has answered `frames_answered` frames should
    /// now be dropped (before writing the pending response).
    pub fn should_drop(&self, frames_answered: u64) -> bool {
        self.drop_after_frames
            .is_some_and(|limit| frames_answered >= limit)
    }

    /// The armed per-ingest stall, if any.
    pub fn ingest_stall(&self) -> Option<Duration> {
        self.stall_ingest
    }

    /// Durable writes attempted so far (tells a drill whether its tear fired).
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// Flips one seeded byte of `bytes` (used by drills to corrupt a chain tip file
/// in place).  Returns the flipped offset.
pub fn flip_one_byte(bytes: &mut [u8], seed: u64) -> usize {
    assert!(!bytes.is_empty());
    let mut state = seed;
    let at = (splitmix64(&mut state) as usize) % bytes.len();
    // XOR with a nonzero mask always changes the byte.
    bytes[at] ^= 0x5A;
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_write_fires_exactly_once_at_the_armed_occurrence() {
        let plan = FaultPlan::seeded(7).with_torn_write(3);
        let blob = vec![9u8; 100];
        assert!(plan.tear_write(&blob).is_none());
        assert!(plan.tear_write(&blob).is_none());
        let torn = plan.tear_write(&blob).expect("third write tears");
        assert!(!torn.is_empty() && torn.len() < blob.len());
        assert!(plan.tear_write(&blob).is_none(), "fires once");
        assert_eq!(plan.writes_seen(), 4);
    }

    #[test]
    fn tears_are_reproducible_per_seed() {
        let blob = vec![1u8; 64];
        let a = FaultPlan::seeded(42).with_torn_write(1);
        let b = FaultPlan::seeded(42).with_torn_write(1);
        let c = FaultPlan::seeded(43).with_torn_write(1);
        let ta = a.tear_write(&blob).unwrap();
        assert_eq!(ta, b.tear_write(&blob).unwrap());
        // A different seed *may* pick the same cut; lengths just have to be valid.
        let tc = c.tear_write(&blob).unwrap();
        assert!((1..blob.len()).contains(&tc.len()));
        assert!((1..blob.len()).contains(&ta.len()));
    }

    #[test]
    fn byte_flip_always_changes_the_payload() {
        let original = vec![0xA5u8; 33];
        for seed in 0..32 {
            let mut copy = original.clone();
            let at = flip_one_byte(&mut copy, seed);
            assert!(at < copy.len());
            assert_ne!(copy, original, "seed {seed}");
        }
    }

    #[test]
    fn the_empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.tear_write(&[1, 2, 3]).is_none());
        assert_eq!(plan.wal_write_fault(&[1, 2, 3]), WalWriteFault::Clean);
        assert!(!plan.crash_now(CrashPoint::AfterApply, 1));
        assert!(!plan.should_drop(u64::MAX));
        assert!(plan.ingest_stall().is_none());
        assert!(!plan.crash_frame_allowed());
    }

    #[test]
    fn wal_faults_fire_exactly_once_at_the_armed_append() {
        let record = vec![7u8; 40];
        let plan = FaultPlan::seeded(9).with_torn_wal_append(2);
        assert_eq!(plan.wal_write_fault(&record), WalWriteFault::Clean);
        match plan.wal_write_fault(&record) {
            WalWriteFault::Torn(prefix) => {
                assert!(!prefix.is_empty() && prefix.len() < record.len());
                assert_eq!(prefix, record[..prefix.len()]);
            }
            other => panic!("second append must tear, got {other:?}"),
        }
        assert_eq!(plan.wal_write_fault(&record), WalWriteFault::Clean);
        assert_eq!(plan.wal_appends_seen(), 3);

        let plan = FaultPlan::seeded(9).with_corrupt_wal_record(1);
        match plan.wal_write_fault(&record) {
            WalWriteFault::Corrupt(mangled) => {
                assert_eq!(mangled.len(), record.len());
                let flips = mangled.iter().zip(&record).filter(|(a, b)| a != b).count();
                assert_eq!(flips, 1, "exactly one byte flips");
            }
            other => panic!("first append must corrupt, got {other:?}"),
        }
    }

    #[test]
    fn the_armed_crash_fires_only_at_its_point_and_ordinal() {
        let plan = FaultPlan::none().with_crash_at(CrashPoint::AfterJournal, 3);
        assert_eq!(plan.ingest_begun(), 1);
        assert_eq!(plan.ingest_begun(), 2);
        let nth = plan.ingest_begun();
        assert_eq!(nth, 3);
        assert!(!plan.crash_now(CrashPoint::BeforeJournal, nth));
        assert!(!plan.crash_now(CrashPoint::AfterApply, nth));
        assert!(plan.crash_now(CrashPoint::AfterJournal, nth));
        assert!(!plan.crash_now(CrashPoint::AfterJournal, plan.ingest_begun()));
    }
}
