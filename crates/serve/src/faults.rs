//! Deterministic fault injection: every failure class the server claims to
//! survive, producible on demand from a seed.
//!
//! The plan is *armed*, not random: each knob names one failure class (torn
//! checkpoint write, dropped connection, stalled reads/ingest) and fires at a
//! configured occurrence count, with any remaining nondeterminism (where a torn
//! write tears, which byte a corruption flips) drawn from a seeded SplitMix64
//! stream.  Runs with the same plan and seed inject byte-identical faults, which
//! is what lets the fault-matrix drill in `fig_serve_net` assert *exact*
//! recovery instead of "it probably worked".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 — the repository's stock deterministic mixer (also used for
/// routing hashes and the proptest shim), reused here for tear offsets and
/// backoff jitter so the serve crate needs no `rand`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded injection plan.  [`FaultPlan::none`] (the default) injects nothing
/// and is what production servers run with; drills arm exactly one knob per
/// scenario so observed failures have one cause.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Tear the `nth` durable write (1-based), truncating it at a seeded offset.
    torn_write_at: Option<u64>,
    writes: AtomicU64,
    /// Drop each connection after it has answered this many frames.
    drop_after_frames: Option<u64>,
    /// Added to every ingest, holding the tenant lock (drills the admission
    /// bound: concurrent writers see `Overloaded`, readers stay live).
    stall_ingest: Option<Duration>,
    /// Whether the [`Request::Crash`](crate::protocol::Request::Crash) drill
    /// frame is honored.
    allow_crash_frame: bool,
}

impl FaultPlan {
    /// The empty plan: no injected faults, crash frame refused.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan seeded for reproducible tear offsets and flips.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Arms a torn durable write: the `nth` persisted blob (1-based, counted
    /// across all tenants) is truncated mid-write, as if the process died there.
    pub fn with_torn_write(mut self, nth: u64) -> Self {
        self.torn_write_at = Some(nth);
        self
    }

    /// Arms connection drops: every connection dies after answering `frames`
    /// frames (the drop happens *after* the request takes effect but *before*
    /// the response is written — the worst case for a retrying client).
    pub fn with_drop_after_frames(mut self, frames: u64) -> Self {
        self.drop_after_frames = Some(frames);
        self
    }

    /// Arms slow ingest: every ingest holds the tenant for `stall` extra time.
    pub fn with_stall_ingest(mut self, stall: Duration) -> Self {
        self.stall_ingest = Some(stall);
        self
    }

    /// Honors the `Crash` control frame (kill-without-checkpoint drills).
    pub fn with_crash_frame(mut self) -> Self {
        self.allow_crash_frame = true;
        self
    }

    /// Whether the `Crash` control frame is honored.
    pub fn crash_frame_allowed(&self) -> bool {
        self.allow_crash_frame
    }

    /// Called by the storage layer before each durable write.  Returns the
    /// bytes to *actually* write: a seeded-truncation of `bytes` on the armed
    /// occurrence, `None` (write faithfully) otherwise.
    ///
    /// The tear keeps at least 1 byte and drops at least 1 byte, so an armed
    /// tear is never accidentally a no-op or an empty file.
    pub fn tear_write(&self, bytes: &[u8]) -> Option<Vec<u8>> {
        let nth = self.torn_write_at?;
        let count = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if count != nth || bytes.len() < 2 {
            return None;
        }
        let mut state = self.seed ^ nth;
        let cut = 1 + (splitmix64(&mut state) as usize) % (bytes.len() - 1);
        Some(bytes[..cut].to_vec())
    }

    /// Whether a connection that has answered `frames_answered` frames should
    /// now be dropped (before writing the pending response).
    pub fn should_drop(&self, frames_answered: u64) -> bool {
        self.drop_after_frames
            .is_some_and(|limit| frames_answered >= limit)
    }

    /// The armed per-ingest stall, if any.
    pub fn ingest_stall(&self) -> Option<Duration> {
        self.stall_ingest
    }

    /// Durable writes attempted so far (tells a drill whether its tear fired).
    pub fn writes_seen(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

/// Flips one seeded byte of `bytes` (used by drills to corrupt a chain tip file
/// in place).  Returns the flipped offset.
pub fn flip_one_byte(bytes: &mut [u8], seed: u64) -> usize {
    assert!(!bytes.is_empty());
    let mut state = seed;
    let at = (splitmix64(&mut state) as usize) % bytes.len();
    // XOR with a nonzero mask always changes the byte.
    bytes[at] ^= 0x5A;
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torn_write_fires_exactly_once_at_the_armed_occurrence() {
        let plan = FaultPlan::seeded(7).with_torn_write(3);
        let blob = vec![9u8; 100];
        assert!(plan.tear_write(&blob).is_none());
        assert!(plan.tear_write(&blob).is_none());
        let torn = plan.tear_write(&blob).expect("third write tears");
        assert!(!torn.is_empty() && torn.len() < blob.len());
        assert!(plan.tear_write(&blob).is_none(), "fires once");
        assert_eq!(plan.writes_seen(), 4);
    }

    #[test]
    fn tears_are_reproducible_per_seed() {
        let blob = vec![1u8; 64];
        let a = FaultPlan::seeded(42).with_torn_write(1);
        let b = FaultPlan::seeded(42).with_torn_write(1);
        let c = FaultPlan::seeded(43).with_torn_write(1);
        let ta = a.tear_write(&blob).unwrap();
        assert_eq!(ta, b.tear_write(&blob).unwrap());
        // A different seed *may* pick the same cut; lengths just have to be valid.
        let tc = c.tear_write(&blob).unwrap();
        assert!((1..blob.len()).contains(&tc.len()));
        assert!((1..blob.len()).contains(&ta.len()));
    }

    #[test]
    fn byte_flip_always_changes_the_payload() {
        let original = vec![0xA5u8; 33];
        for seed in 0..32 {
            let mut copy = original.clone();
            let at = flip_one_byte(&mut copy, seed);
            assert!(at < copy.len());
            assert_ne!(copy, original, "seed {seed}");
        }
    }

    #[test]
    fn the_empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.tear_write(&[1, 2, 3]).is_none());
        assert!(!plan.should_drop(u64::MAX));
        assert!(plan.ingest_stall().is_none());
        assert!(!plan.crash_frame_allowed());
    }
}
