//! The resilient client: per-request timeouts, bounded retries with jittered
//! exponential backoff, reconnects, and idempotent ingest — plus the
//! multi-connection load generator the saturation sweep runs.
//!
//! # Why retries are safe
//!
//! Every ingest batch carries a caller-chosen sequence number and the server
//! applies a batch **iff** its number equals the tenant's cursor.  The failure
//! a retry papers over is always one of:
//!
//! * the request never arrived → the cursor didn't move → the retry applies
//!   (acks `applied = true`);
//! * the request applied but the response was lost → the cursor moved past the
//!   batch → the retry is acknowledged **without** re-applying
//!   (`applied = false`).
//!
//! Either way the batch lands exactly once, and [`Client::ingest`] reports
//! which case happened.  Queries and stats are read-only, checkpoints are
//! no-ops when nothing changed — every request the client retries is
//! idempotent.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use fsc_state::{Answer, Query};

use crate::faults::splitmix64;
use crate::protocol::{
    read_frame, write_frame, FrameError, Request, Response, ServeError, ServerStatus, TenantStats,
};

/// Client resilience knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Per-request timeout (covers connect, send, and the response wait).
    pub timeout: Duration,
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per retry, with seeded
    /// jitter of up to one base added, capped at 500 ms.
    pub backoff: Duration,
    /// Jitter seed (deterministic per client).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_millis(500),
            retries: 5,
            backoff: Duration::from_millis(5),
            seed: 0x5EED,
        }
    }
}

/// What a request ultimately failed with (after retries, where applicable).
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure on a non-retryable path, or retries exhausted on I/O.
    Io(io::Error),
    /// The server's bytes did not parse, or the response type was impossible
    /// for the request.
    Protocol(String),
    /// The server answered a typed, non-retryable error.
    Server(ServeError),
    /// All attempts failed; `last` stringifies the final failure.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client transport: {e}"),
            ClientError::Protocol(msg) => write!(f, "client protocol: {msg}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters a client accumulates across its lifetime (drill assertions read
/// these: "the retry path actually fired").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Requests that needed at least one retry.
    pub retried_requests: u64,
    /// Total retry attempts.
    pub retries: u64,
    /// `Overloaded` responses absorbed by backoff.
    pub overloaded: u64,
    /// Connections established (the first connect counts; anything above 1 is a
    /// reconnect after a dead or dropped connection).
    pub reconnects: u64,
    /// Ingest acks with `applied = false` (retried batches whose first copy
    /// landed — the exactly-once evidence).
    pub duplicate_acks: u64,
}

/// A connection to one server, with resilience built in.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    stream: Option<TcpStream>,
    rng: u64,
    /// Lifetime counters.
    pub counters: ClientCounters,
}

impl Client {
    /// Creates a client for `addr` (connects lazily on first use).
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        Self {
            addr,
            config,
            stream: None,
            rng: config.seed ^ 0x9E37_79B9_7F4A_7C15,
            counters: ClientCounters::default(),
        }
    }

    fn ensure_stream(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.config.timeout)?;
            stream.set_read_timeout(Some(self.config.timeout))?;
            stream.set_write_timeout(Some(self.config.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    /// One attempt, no retries: send `request`, wait for one response frame.
    /// Any transport failure poisons the connection (the next attempt
    /// reconnects).
    pub fn request_once(&mut self, request: &Request) -> Result<Response, ClientError> {
        let result = self.request_once_inner(request);
        if matches!(result, Err(ClientError::Io(_))) {
            self.stream = None;
        }
        result
    }

    fn request_once_inner(&mut self, request: &Request) -> Result<Response, ClientError> {
        if self.stream.is_none() {
            self.counters.reconnects += 1;
        }
        self.ensure_stream().map_err(ClientError::Io)?;
        let stream = self.stream.as_mut().expect("ensured");
        write_frame(stream, &request.encode()).map_err(ClientError::Io)?;
        match read_frame(stream) {
            Ok(Some(payload)) => {
                Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            Ok(None) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ))),
            Err(FrameError::Idle) | Err(FrameError::Io(_)) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "response timed out",
            ))),
            Err(FrameError::Truncated) => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "response truncated",
            ))),
            Err(FrameError::Oversized { announced }) => Err(ClientError::Protocol(format!(
                "server announced a {announced}-byte frame"
            ))),
        }
    }

    /// Sends with bounded retries: transport failures and `Overloaded` back off
    /// (exponential, seeded jitter) and retry; every other response returns.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let attempts = self.config.retries + 1;
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                self.counters.retries += 1;
                if attempt == 1 {
                    self.counters.retried_requests += 1;
                }
                std::thread::sleep(self.backoff_delay(attempt));
            }
            match self.request_once(request) {
                Ok(Response::Error(ServeError::Overloaded)) => {
                    self.counters.overloaded += 1;
                    last = ServeError::Overloaded.to_string();
                }
                Ok(response) => return Ok(response),
                Err(ClientError::Io(e)) => last = e.to_string(),
                Err(fatal) => return Err(fatal),
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// Backoff before retry `attempt` (1-based): `base · 2^(attempt-1)` plus up
    /// to one extra base of seeded jitter, capped at 500 ms.
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff.max(Duration::from_micros(100));
        let exp = base.saturating_mul(1u32 << (attempt - 1).min(10));
        let jitter_us = splitmix64(&mut self.rng) % (base.as_micros().max(1) as u64);
        (exp + Duration::from_micros(jitter_us)).min(Duration::from_millis(500))
    }

    fn expect_ok(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.request(request)? {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Provisions a tenant.
    pub fn create_tenant(
        &mut self,
        tenant: &str,
        algorithm: &str,
        shards: u32,
    ) -> Result<(), ClientError> {
        self.expect_ok(&Request::CreateTenant {
            tenant: tenant.into(),
            algorithm: algorithm.into(),
            shards,
        })
    }

    /// Ingests one batch under `seq`.  Returns whether this call applied it
    /// (`false` = a retried duplicate had already landed; either way the batch
    /// is in exactly once).
    pub fn ingest(&mut self, tenant: &str, seq: u64, items: &[u64]) -> Result<bool, ClientError> {
        let request = Request::Ingest {
            tenant: tenant.into(),
            seq,
            items: items.to_vec(),
        };
        match self.request(&request)? {
            Response::IngestAck { applied, .. } => {
                if !applied {
                    self.counters.duplicate_acks += 1;
                }
                Ok(applied)
            }
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Asks a typed query.
    pub fn query(&mut self, tenant: &str, query: Query) -> Result<Answer, ClientError> {
        let request = Request::Query {
            tenant: tenant.into(),
            query,
        };
        match self.request(&request)? {
            Response::Answer(a) => Ok(a),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Forces a durable checkpoint of `tenant`.
    pub fn checkpoint(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::Checkpoint {
            tenant: tenant.into(),
        })
    }

    /// Reads tenant counters.
    pub fn stats(&mut self, tenant: &str) -> Result<TenantStats, ClientError> {
        let request = Request::Stats {
            tenant: tenant.into(),
        };
        match self.request(&request)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Reads the server-wide durability status (mode, boot recovery counts,
    /// live journal state per tenant).
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        match self.request(&Request::Status)? {
            Response::Status(s) => Ok(s),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Asks the server to checkpoint everything and stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Asks an armed server to die without checkpointing (drills only).  The
    /// server stops without responding, so a transport error here is success.
    pub fn crash(&mut self) {
        let _ = self.request_once(&Request::Crash);
        self.stream = None;
    }
}

/// The saturation-sweep load generator: `connections` threads, each its own
/// tenant, each sending `batches` batches of `batch_size` seeded items and
/// recording per-request latency.
#[derive(Debug, Clone)]
pub struct LoadGen {
    /// Concurrent connections (each gets tenant `lg-<i>`).
    pub connections: usize,
    /// Batches per connection.
    pub batches: usize,
    /// Items per batch.
    pub batch_size: usize,
    /// Registry algorithm every tenant runs.
    pub algorithm: String,
    /// Shards per tenant engine.
    pub shards: u32,
    /// Item universe (items are `splitmix64 % universe`).
    pub universe: u64,
    /// Workload seed.
    pub seed: u64,
    /// Client resilience knobs used by every connection.
    pub client: ClientConfig,
}

impl Default for LoadGen {
    fn default() -> Self {
        Self {
            connections: 2,
            batches: 20,
            batch_size: 256,
            algorithm: "count_min".into(),
            shards: 2,
            universe: 1 << 12,
            seed: 1,
            client: ClientConfig::default(),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections that completed all their batches.
    pub completed_connections: usize,
    /// Items acknowledged across all connections.
    pub items: u64,
    /// Batches applied on first delivery.
    pub applied_batches: u64,
    /// Batches acknowledged as already-applied duplicates.
    pub duplicate_batches: u64,
    /// Summed client counters.
    pub counters: ClientCounters,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Per-ingest-request latency, median.
    pub p50: Duration,
    /// Per-ingest-request latency, 99th percentile.
    pub p99: Duration,
    /// Stringified per-connection failures (empty on a clean run).
    pub errors: Vec<String>,
}

impl LoadReport {
    /// Acknowledged-item throughput of the run.
    pub fn items_per_sec(&self) -> f64 {
        self.items as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl LoadGen {
    /// Runs the load against `addr`.
    pub fn run(&self, addr: SocketAddr) -> LoadReport {
        let started = Instant::now();
        let results: Vec<ConnResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.connections)
                .map(|i| {
                    let gen = self.clone();
                    scope.spawn(move || gen.run_connection(addr, i))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let elapsed = started.elapsed();

        let mut latencies: Vec<Duration> = Vec::new();
        let mut report = LoadReport {
            completed_connections: 0,
            items: 0,
            applied_batches: 0,
            duplicate_batches: 0,
            counters: ClientCounters::default(),
            elapsed,
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            errors: Vec::new(),
        };
        for r in results {
            report.items += r.items;
            report.applied_batches += r.applied;
            report.duplicate_batches += r.duplicates;
            report.counters.retried_requests += r.counters.retried_requests;
            report.counters.retries += r.counters.retries;
            report.counters.overloaded += r.counters.overloaded;
            report.counters.reconnects += r.counters.reconnects;
            report.counters.duplicate_acks += r.counters.duplicate_acks;
            latencies.extend(r.latencies);
            match r.error {
                None => report.completed_connections += 1,
                Some(e) => report.errors.push(e),
            }
        }
        latencies.sort_unstable();
        report.p50 = percentile(&latencies, 0.50);
        report.p99 = percentile(&latencies, 0.99);
        report
    }

    fn run_connection(&self, addr: SocketAddr, index: usize) -> ConnResult {
        let mut result = ConnResult::default();
        let mut client = Client::new(
            addr,
            ClientConfig {
                seed: self.client.seed ^ (index as u64).wrapping_mul(0xA5A5_A5A5),
                ..self.client
            },
        );
        let tenant = format!("lg-{index}");
        if let Err(e) = client.create_tenant(&tenant, &self.algorithm, self.shards) {
            result.error = Some(format!("{tenant}: create: {e}"));
            return result;
        }
        let mut rng = self.seed ^ ((index as u64) << 32);
        for seq in 0..self.batches as u64 {
            let batch: Vec<u64> = (0..self.batch_size)
                .map(|_| splitmix64(&mut rng) % self.universe.max(1))
                .collect();
            let at = Instant::now();
            match client.ingest(&tenant, seq, &batch) {
                Ok(true) => result.applied += 1,
                Ok(false) => result.duplicates += 1,
                Err(e) => {
                    result.error = Some(format!("{tenant}: seq {seq}: {e}"));
                    result.counters = client.counters;
                    return result;
                }
            }
            result.latencies.push(at.elapsed());
            result.items += batch.len() as u64;
        }
        result.counters = client.counters;
        result
    }
}

#[derive(Default)]
struct ConnResult {
    items: u64,
    applied: u64,
    duplicates: u64,
    latencies: Vec<Duration>,
    counters: ClientCounters,
    error: Option<String>,
}
