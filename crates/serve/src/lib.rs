//! # fsc-serve — a crash-tolerant network front-end over the engine
//!
//! The paper's thesis is that state changes are scarce; PRs 5–7 turned that
//! into cheap checkpoints, delta chains, and a cached serving path.  This crate
//! is where those mechanisms earn their keep: a long-lived TCP server whose
//! failure behavior — torn checkpoint writes, corrupt chain tips, crashes
//! mid-ingest, dropped connections, overload — is *drilled*, not hoped about.
//!
//! Std-only by construction (threads + `std::net`, length-prefixed binary
//! frames reusing the `FSCS` codec): the build environment vendors its few
//! dependencies as shims, so the server depends on nothing it cannot see.
//!
//! ## The pieces
//!
//! * [`protocol`] — the framed wire format.  Total parsing: truncated, garbage,
//!   and oversized-length frames land in typed errors, never panics or
//!   unbounded allocations.
//! * [`server`] — thread-per-connection server over per-tenant
//!   [`DynEngine`](fsc_engine::DynEngine)s: lock-free reads off the cached
//!   serving view, admission-bounded writes, delta-chain persistence, startup
//!   recovery past damaged logs with a typed [`RecoveryReport`].
//! * [`client`] — per-request timeouts, bounded retries with jittered
//!   exponential backoff, sequence-numbered idempotent ingest, and the
//!   [`LoadGen`] saturation driver.
//! * [`faults`] — the seeded fault-injection plan the drills arm.
//! * [`storage`] — the per-tenant directory layout (meta, base, delta files,
//!   journal), with every durable write fsynced through to the directory.
//! * [`wal`] — the per-tenant write-ahead batch journal: checksummed,
//!   seq-stamped records appended before every ack, replayed at recovery,
//!   truncated at every checkpoint.
//!
//! ## Quickstart
//!
//! A server over a toy factory, a client ingesting and querying, a graceful
//! shutdown (the README's server quickstart, compile-checked and run as a doc
//! test):
//!
//! ```
//! use std::sync::Arc;
//! use fsc_engine::{Engine, EngineConfig};
//! use fsc_serve::{Client, ClientConfig, EngineFactory, Server, ServerConfig};
//! use fsc_state::{Answer, Query};
//!
//! // Engine factory: normally fsc_bench::registry::serve_factory(); any
//! // closure from algorithm id to DynEngine works.
//! # use fsc_state::{StateTracker, TrackerKind};
//! # use fsc_baselines::CountMin;
//! let factory: EngineFactory = Arc::new(|algorithm, config| match algorithm {
//!     "count_min" => Some(Box::new(Engine::new(config, |_| {
//!         CountMin::with_tracker(&StateTracker::of_kind(config.tracker), 1 << 10, 4, 1)
//!     })) as Box<dyn fsc_engine::DynEngine>),
//!     _ => None,
//! });
//!
//! let dir = std::env::temp_dir().join(format!("fsc-serve-quickstart-{}", std::process::id()));
//! let (server, recovery) =
//!     Server::start("127.0.0.1:0", ServerConfig::new(&dir), factory).unwrap();
//! assert_eq!(recovery.tenants.len(), 0, "fresh data dir: nothing to recover");
//!
//! let mut client = Client::new(server.addr(), ClientConfig::default());
//! client.create_tenant("demo", "count_min", 2).unwrap();
//! assert!(client.ingest("demo", 0, &[7, 7, 7, 8]).unwrap());
//! let answer = client.query("demo", Query::Point(7)).unwrap();
//! assert_eq!(answer, Answer::Scalar(3.0));
//! client.shutdown().unwrap();   // checkpoints every tenant, then stops
//! server.join();
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! ## The recovery law
//!
//! Kill a server mid-ingest and restart it over the same data dir: the restart
//! answers exactly like a twin that saw *every acked batch* — the delta chain
//! supplies the checkpointed prefix, the write-ahead journal replays the acked
//! suffix, and any torn journal tail is truncated at the last valid record
//! with typed counts in the [`RecoveryReport`].  Duplicate re-sends of
//! recovered batches ack without re-applying.  In
//! [`Durability::AckAfterDurable`] mode the
//! law holds against power loss too: the journal append is fsynced before
//! every ack.  `fig_serve_net` drills the fault classes (torn writes, corrupt
//! tips, dropped connections, overload) and `fig_recovery` sweeps the crash
//! points, both with exact-equality checks and a non-zero exit on divergence.

#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod protocol;
pub mod server;
pub mod storage;
pub mod wal;

pub use client::{Client, ClientConfig, ClientCounters, ClientError, LoadGen, LoadReport};
pub use faults::{CrashPoint, FaultPlan};
pub use protocol::{
    Request, Response, ServeError, ServerStatus, TenantStats, TenantStatus, MAX_FRAME,
};
pub use server::{EngineFactory, Server, ServerConfig, ServerHandle};
pub use storage::{RecoveryReport, TenantOutcome, TenantRecovery};
pub use wal::{Durability, Wal, WalError, WalRecord};
