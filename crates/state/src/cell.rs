//! A single tracked memory cell.

use crate::tracker::{AddrRange, StateTracker};
use crate::words_of;

/// A tracked storage location holding one value of type `T`.
///
/// Writes are charged to the owning [`StateTracker`]; a write only counts toward the
/// state-change counters when the new value differs from the stored one (writing an
/// identical value is a *redundant write*, which a careful implementation can skip after
/// a read — exactly the asymmetry the paper exploits).
#[derive(Debug, Clone)]
pub struct TrackedCell<T> {
    value: T,
    tracker: StateTracker,
    addr: AddrRange,
    words: usize,
}

impl<T: PartialEq> TrackedCell<T> {
    /// Allocates a new tracked cell holding `value`.
    ///
    /// The initial value is charged as a write (initialising memory is a write on real
    /// hardware), so a freshly constructed algorithm already has a nonzero write count;
    /// construction happens before the first epoch, so it does not add a state change
    /// unless an epoch is already open.
    pub fn new(tracker: &StateTracker, value: T) -> Self {
        let words = words_of::<T>();
        let addr = tracker.alloc(words);
        tracker.record_write(Some(addr.word(0)), true);
        Self {
            value,
            tracker: tracker.clone(),
            addr,
            words,
        }
    }

    /// Reads the value (charged as one read per word).
    #[inline]
    pub fn read(&self) -> &T {
        self.tracker.record_reads(self.words as u64);
        &self.value
    }

    /// Reads the value without charging a read.  Used by reporting / debugging code that
    /// is not part of the streaming algorithm itself.
    #[inline]
    pub fn peek(&self) -> &T {
        &self.value
    }

    /// Writes `value` into the cell.  Returns `true` if the stored value changed.
    #[inline]
    pub fn write(&mut self, value: T) -> bool {
        let changed = self.value != value;
        self.tracker.record_write(Some(self.addr.word(0)), changed);
        if changed {
            self.value = value;
        }
        changed
    }

    /// Applies `f` to the current value and writes the result back, charging one read
    /// and (if the result differs) one write.  Returns `true` if the value changed.
    #[inline]
    pub fn modify(&mut self, f: impl FnOnce(&T) -> T) -> bool {
        let new = f(self.read());
        self.write(new)
    }

    /// Overwrites the stored value without any accounting — the restore path of
    /// checkpointing.  The caller must follow container rebuilds with
    /// [`crate::StateTracker::import_state`], which replaces every counter with the
    /// checkpointed values; using this on a live algorithm path would under-count.
    #[inline]
    pub fn set_untracked(&mut self, value: T) {
        self.value = value;
    }

    /// Rebuilds a cell at an explicit tracked address, performing **no** allocation
    /// and **no** write accounting — the restore path for cells that were allocated
    /// dynamically mid-stream (e.g. held Morris-counter registers), whose addresses a
    /// checkpoint records so that post-restore wear lands exactly where it would have
    /// on the original.  Must be followed by
    /// [`crate::StateTracker::import_state`], which restores the allocation cursor
    /// and space accounts this bypassed.
    pub fn restore_at(tracker: &StateTracker, value: T, addr_start: usize) -> Self {
        let words = words_of::<T>();
        Self {
            value,
            tracker: tracker.clone(),
            addr: AddrRange {
                start: addr_start,
                len: words,
            },
            words,
        }
    }

    /// First tracked address of this cell (recorded by checkpoints so
    /// [`TrackedCell::restore_at`] can rebuild it in place).
    pub fn addr_start(&self) -> usize {
        self.addr.start
    }
}

impl<T> Drop for TrackedCell<T> {
    fn drop(&mut self) {
        self.tracker.dealloc(self.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_counts_only_changes() {
        let t = StateTracker::new();
        let mut c = TrackedCell::new(&t, 0u64);
        t.begin_epoch();
        assert!(c.write(1));
        t.begin_epoch();
        assert!(!c.write(1));
        t.begin_epoch();
        assert!(c.write(2));
        let r = t.snapshot();
        // One initialisation write + two changing writes.
        assert_eq!(r.word_writes, 3);
        assert_eq!(r.redundant_writes, 1);
        assert_eq!(r.state_changes, 2);
    }

    #[test]
    fn reads_are_charged() {
        let t = StateTracker::new();
        let c = TrackedCell::new(&t, 42u32);
        assert_eq!(*c.read(), 42);
        assert_eq!(*c.read(), 42);
        assert_eq!(t.snapshot().reads, 2);
        assert_eq!(*c.peek(), 42);
        assert_eq!(t.snapshot().reads, 2, "peek is free");
    }

    #[test]
    fn modify_reads_then_writes() {
        let t = StateTracker::new();
        let mut c = TrackedCell::new(&t, 10u64);
        t.begin_epoch();
        assert!(c.modify(|v| v + 1));
        assert!(!c.modify(|v| *v));
        let r = t.snapshot();
        assert_eq!(r.reads, 2);
        assert_eq!(r.word_writes, 2); // init + one change
        assert_eq!(*c.peek(), 11);
    }

    #[test]
    fn space_is_released_on_drop() {
        let t = StateTracker::new();
        {
            let _c = TrackedCell::new(&t, [0u64; 4]);
            assert_eq!(t.words_current(), 4);
        }
        assert_eq!(t.words_current(), 0);
        assert_eq!(t.words_peak(), 4);
    }
}
