//! A tracked fixed-or-growable array of values.

use crate::tracker::{AddrRange, StateTracker};
use crate::words_of;

/// A tracked vector: every element mutation is charged to the owning [`StateTracker`].
///
/// Sketch matrices (CountMin rows, CountSketch buckets, the reservoir `Q` of
/// `SampleAndHold`, …) are stored in `TrackedVec`s so that their write behaviour is
/// measured exactly.
#[derive(Debug, Clone)]
pub struct TrackedVec<T> {
    data: Vec<T>,
    tracker: StateTracker,
    addr: AddrRange,
    elem_words: usize,
}

impl<T: PartialEq + Clone> TrackedVec<T> {
    /// Allocates a tracked vector of length `len` filled with `init`.
    ///
    /// Initialisation is charged as `len` writes (zeroing memory is a write), performed
    /// before the first epoch.
    pub fn filled(tracker: &StateTracker, len: usize, init: T) -> Self {
        let elem_words = words_of::<T>();
        let addr = tracker.alloc(len * elem_words);
        for i in 0..len {
            tracker.record_write(Some(addr.word(i * elem_words)), true);
        }
        Self {
            data: vec![init; len],
            tracker: tracker.clone(),
            addr,
            elem_words,
        }
    }

    /// Creates an empty tracked vector (e.g. for push-based structures).
    pub fn new(tracker: &StateTracker) -> Self {
        Self {
            data: Vec::new(),
            tracker: tracker.clone(),
            addr: AddrRange::EMPTY,
            elem_words: words_of::<T>(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i` (charged as one read).
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        self.tracker.record_reads(self.elem_words as u64);
        &self.data[i]
    }

    /// Reads element `i` without charging (for reporting code only).
    #[inline]
    pub fn peek(&self, i: usize) -> &T {
        &self.data[i]
    }

    /// Writes `value` into slot `i`; returns `true` if the slot changed.
    #[inline]
    pub fn set(&mut self, i: usize, value: T) -> bool {
        let changed = self.data[i] != value;
        // Push-based vectors hold `AddrRange::EMPTY` (no per-slot addresses were
        // allocated), and `AddrRange::word` treats any index into an empty range as out
        // of range — so the guard on `len` is load-bearing, not defensive.
        let addr = if self.addr.len == 0 {
            None
        } else {
            Some(self.addr.word(i * self.elem_words))
        };
        self.tracker.record_write(addr, changed);
        if changed {
            self.data[i] = value;
        }
        changed
    }

    /// Applies `f` to element `i` and writes the result back (one read, one write).
    /// Returns `true` if the element changed.
    #[inline]
    pub fn update(&mut self, i: usize, f: impl FnOnce(&T) -> T) -> bool {
        let new = f(self.get(i));
        self.set(i, new)
    }

    /// Appends an element, growing the tracked allocation.
    pub fn push(&mut self, value: T) {
        self.tracker.alloc(self.elem_words);
        self.tracker.record_write(None, true);
        self.data.push(value);
    }

    /// Removes the last element, shrinking the tracked allocation.
    pub fn pop(&mut self) -> Option<T> {
        let out = self.data.pop();
        if out.is_some() {
            self.tracker.dealloc(self.elem_words);
            self.tracker.record_write(None, true);
        }
        out
    }

    /// Untracked iteration over the contents (reporting / extraction only).
    pub fn iter_untracked(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Untracked mutable view of the contents — the restore path of checkpointing
    /// (mirrors [`crate::TrackedMatrix::as_mut_slice_untracked`]).  Mutations through
    /// this slice bypass all accounting; restores follow them with
    /// [`crate::StateTracker::import_state`], which replaces every counter with the
    /// checkpointed values.
    pub fn as_mut_slice_untracked(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Untracked snapshot of the contents.
    pub fn to_vec_untracked(&self) -> Vec<T> {
        self.data.clone()
    }
}

impl<T> Drop for TrackedVec<T> {
    fn drop(&mut self) {
        self.tracker.dealloc(self.data.len() * self.elem_words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_charges_initialisation_writes() {
        let t = StateTracker::new();
        let v = TrackedVec::filled(&t, 8, 0u64);
        assert_eq!(v.len(), 8);
        assert_eq!(t.snapshot().word_writes, 8);
        assert_eq!(t.words_current(), 8);
        assert_eq!(
            t.state_changes(),
            0,
            "init happens before any epoch? no epoch opened"
        );
    }

    #[test]
    fn set_counts_only_changes() {
        let t = StateTracker::new();
        let mut v = TrackedVec::filled(&t, 4, 0u32);
        t.begin_epoch();
        assert!(v.set(2, 5));
        t.begin_epoch();
        assert!(!v.set(2, 5));
        t.begin_epoch();
        assert!(v.update(2, |x| x + 1));
        let r = t.snapshot();
        assert_eq!(r.state_changes, 2);
        assert_eq!(r.redundant_writes, 1);
        assert_eq!(*v.peek(2), 6);
    }

    #[test]
    fn per_cell_wear_is_attributed_to_the_right_slot() {
        let t = StateTracker::with_address_tracking();
        let mut v = TrackedVec::filled(&t, 4, 0u64);
        for k in 1..=5u64 {
            t.begin_epoch();
            v.set(1, k);
        }
        let writes = t.address_writes().unwrap();
        // Slot 1 received 1 init + 5 updates.
        assert_eq!(writes[1], 6);
        assert_eq!(writes[3], 1);
        assert_eq!(t.snapshot().max_cell_writes, Some(6));
    }

    #[test]
    fn push_and_pop_adjust_space() {
        let t = StateTracker::new();
        let mut v: TrackedVec<u64> = TrackedVec::new(&t);
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert_eq!(t.words_current(), 2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(t.words_current(), 1);
        assert_eq!(v.to_vec_untracked(), vec![1]);
        drop(v);
        assert_eq!(t.words_current(), 0);
        assert_eq!(t.words_peak(), 2);
    }

    #[test]
    fn reads_are_charged_per_element_word() {
        let t = StateTracker::new();
        let v = TrackedVec::filled(&t, 2, 0u128);
        let _ = v.get(0);
        assert_eq!(t.snapshot().reads, 2, "u128 spans two words");
        let _ = v.peek(1);
        assert_eq!(t.snapshot().reads, 2);
        assert_eq!(v.iter_untracked().count(), 2);
        assert_eq!(t.snapshot().reads, 2);
    }
}
