//! Asymmetric-memory (NVM / NAND flash) cost model.
//!
//! The paper's Section 1.1 motivates minimizing state changes by the read/write
//! asymmetry of non-volatile memory: writes cost more energy and latency than reads, and
//! NVM cells wear out after a bounded number of writes (10^8–10^12 for general NVM
//! \[MSCT14\], 10^4–10^6 for NAND flash cells \[BT11\]).  The paper itself does not measure
//! hardware; this module is the documented substitution: it converts the exact
//! state-change counts measured by [`crate::StateTracker`] into simulated energy,
//! latency, and wear figures under a configurable cost model, so that the benefit of a
//! write-frugal algorithm can be reported in interpretable units.

use crate::report::StateReport;

/// Per-operation costs and endurance of a memory technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmCostModel {
    /// Human-readable name of the technology profile.
    pub name: &'static str,
    /// Energy per word read, in nanojoules.
    pub read_energy_nj: f64,
    /// Energy per word write, in nanojoules.
    pub write_energy_nj: f64,
    /// Latency per word read, in nanoseconds.
    pub read_latency_ns: f64,
    /// Latency per word write, in nanoseconds.
    pub write_latency_ns: f64,
    /// Number of writes a single cell endures before wearing out.
    pub endurance_writes: u64,
}

impl NvmCostModel {
    /// DRAM-like profile: symmetric read/write costs, effectively unlimited endurance.
    /// Used as the "writes are free" reference point.
    pub fn dram() -> Self {
        Self {
            name: "DRAM",
            read_energy_nj: 1.0,
            write_energy_nj: 1.0,
            read_latency_ns: 50.0,
            write_latency_ns: 50.0,
            endurance_writes: u64::MAX,
        }
    }

    /// Phase-change-memory-like profile: writes ~10x the energy and ~5x the latency of
    /// reads, 10^8 write endurance (order-of-magnitude figures from the systems
    /// literature cited in the paper, e.g. [LIMB09, QGR11]).
    pub fn pcm() -> Self {
        Self {
            name: "PCM-NVM",
            read_energy_nj: 2.0,
            write_energy_nj: 20.0,
            read_latency_ns: 100.0,
            write_latency_ns: 500.0,
            endurance_writes: 100_000_000,
        }
    }

    /// NAND-flash-like profile: writes are far more expensive than reads and cells wear
    /// out after ~10^5 writes \[BT11\].
    pub fn nand_flash() -> Self {
        Self {
            name: "NAND-flash",
            read_energy_nj: 5.0,
            write_energy_nj: 250.0,
            read_latency_ns: 25_000.0,
            write_latency_ns: 200_000.0,
            endurance_writes: 100_000,
        }
    }

    /// Ratio of write energy to read energy (the asymmetry the paper targets).
    pub fn write_read_energy_ratio(&self) -> f64 {
        self.write_energy_nj / self.read_energy_nj
    }
}

/// Simulated cost of a measured execution under a given memory technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmReport {
    /// Technology profile name.
    pub model: &'static str,
    /// Total simulated energy (nJ) spent on reads.
    pub read_energy_nj: f64,
    /// Total simulated energy (nJ) spent on writes (only writes that changed memory;
    /// a read-before-write implementation skips redundant writes).
    pub write_energy_nj: f64,
    /// Total simulated memory latency (ns), reads plus writes.
    pub total_latency_ns: f64,
    /// Wear of the most-written cell as a fraction of the endurance budget,
    /// if per-cell tracking was enabled.
    pub max_cell_wear_fraction: Option<f64>,
    /// How many identical runs of this workload the device would survive before the
    /// most-written cell wears out (only with per-cell tracking).
    pub runs_to_wearout: Option<u64>,
}

impl NvmReport {
    /// Computes the simulated cost of `state` under `model`.
    pub fn from_state(state: &StateReport, model: &NvmCostModel) -> Self {
        let reads = state.reads as f64;
        let writes = state.word_writes as f64;
        let read_energy = reads * model.read_energy_nj;
        let write_energy = writes * model.write_energy_nj;
        let latency = reads * model.read_latency_ns + writes * model.write_latency_ns;
        let (wear, runs) = match state.max_cell_writes {
            Some(0) | None => (None, None),
            Some(w) => (
                Some(w as f64 / model.endurance_writes as f64),
                Some(model.endurance_writes / w),
            ),
        };
        Self {
            model: model.name,
            read_energy_nj: read_energy,
            write_energy_nj: write_energy,
            total_latency_ns: latency,
            max_cell_wear_fraction: wear,
            runs_to_wearout: runs,
        }
    }

    /// Total simulated energy (reads + writes), in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.read_energy_nj + self.write_energy_nj
    }

    /// Fraction of the total energy spent on writes.
    pub fn write_energy_fraction(&self) -> f64 {
        let total = self.total_energy_nj();
        if total == 0.0 {
            0.0
        } else {
            self.write_energy_nj / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(reads: u64, writes: u64, max_cell: Option<u64>) -> StateReport {
        StateReport {
            reads,
            word_writes: writes,
            max_cell_writes: max_cell,
            ..StateReport::default()
        }
    }

    #[test]
    fn profiles_are_ordered_by_asymmetry() {
        assert!(NvmCostModel::dram().write_read_energy_ratio() <= 1.0 + 1e-9);
        assert!(NvmCostModel::pcm().write_read_energy_ratio() > 5.0);
        assert!(
            NvmCostModel::nand_flash().write_read_energy_ratio()
                > NvmCostModel::pcm().write_read_energy_ratio()
        );
        assert!(NvmCostModel::nand_flash().endurance_writes < NvmCostModel::pcm().endurance_writes);
    }

    #[test]
    fn energy_accounting_matches_counts() {
        let model = NvmCostModel::pcm();
        let r = NvmReport::from_state(&report(1000, 10, None), &model);
        assert!((r.read_energy_nj - 2000.0).abs() < 1e-9);
        assert!((r.write_energy_nj - 200.0).abs() < 1e-9);
        assert!((r.total_energy_nj() - 2200.0).abs() < 1e-9);
        assert!((r.write_energy_fraction() - 200.0 / 2200.0).abs() < 1e-12);
        assert!(r.max_cell_wear_fraction.is_none());
    }

    #[test]
    fn wear_uses_the_hottest_cell() {
        let model = NvmCostModel::nand_flash();
        let r = NvmReport::from_state(&report(0, 500, Some(50)), &model);
        assert!((r.max_cell_wear_fraction.unwrap() - 50.0 / 100_000.0).abs() < 1e-12);
        assert_eq!(r.runs_to_wearout, Some(2000));
    }

    #[test]
    fn fewer_writes_means_less_energy_on_asymmetric_memory() {
        let model = NvmCostModel::nand_flash();
        // Same number of memory touches, different write shares.
        let write_heavy = NvmReport::from_state(&report(0, 1000, None), &model);
        let read_heavy = NvmReport::from_state(&report(990, 10, None), &model);
        assert!(read_heavy.total_energy_nj() < write_heavy.total_energy_nj() / 10.0);
    }

    #[test]
    fn zero_activity_report_is_zero_cost() {
        let r = NvmReport::from_state(&StateReport::default(), &NvmCostModel::dram());
        assert_eq!(r.total_energy_nj(), 0.0);
        assert_eq!(r.write_energy_fraction(), 0.0);
        assert!(r.runs_to_wearout.is_none());
    }
}
