//! The [`StateTracker`] handle and its internal counters.

use std::cell::RefCell;
use std::rc::Rc;

use crate::report::StateReport;

/// A contiguous range of tracked memory addresses, returned by [`StateTracker::alloc`].
///
/// Addresses are abstract word indices in the tracker's address space.  They are used
/// only when per-cell wear accounting is enabled (see
/// [`StateTracker::with_address_tracking`]); algorithms never interpret them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// First word index of the allocation.
    pub start: usize,
    /// Number of words allocated.
    pub len: usize,
}

impl AddrRange {
    /// An empty range used by structures created without an owning tracker allocation.
    pub const EMPTY: AddrRange = AddrRange { start: 0, len: 0 };

    /// Address of the `i`-th word in this range (`i < len`).
    pub fn word(&self, i: usize) -> usize {
        debug_assert!(i < self.len.max(1));
        self.start + i.min(self.len.saturating_sub(1))
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Paper-definition state changes: number of epochs in which ≥ 1 word changed.
    state_changes: u64,
    /// Number of individual word writes that changed the stored value.
    word_writes: u64,
    /// Number of word writes whose new value equalled the old value.
    redundant_writes: u64,
    /// Number of word reads.
    reads: u64,
    /// Number of epochs started so far (one per stream update by convention).
    epochs: u64,
    /// Whether the current epoch has already been counted as a state change.
    dirty: bool,
    /// Whether any epoch has been opened yet.  Writes performed before the first epoch
    /// (data-structure initialisation) are counted as word writes but not as state
    /// changes, matching the paper's convention that state changes are counted per
    /// stream update.
    in_epoch: bool,
    /// Currently allocated words.
    words_current: usize,
    /// Peak allocated words over the lifetime of the tracker.
    words_peak: usize,
    /// Per-address write counts (only when address tracking is enabled).
    addr_writes: Option<Vec<u64>>,
    /// Next free address for `alloc`.
    next_addr: usize,
}

impl Inner {
    fn charge_alloc(&mut self, words: usize) -> AddrRange {
        let range = AddrRange {
            start: self.next_addr,
            len: words,
        };
        self.next_addr += words;
        self.words_current += words;
        self.words_peak = self.words_peak.max(self.words_current);
        if let Some(aw) = &mut self.addr_writes {
            aw.resize(self.next_addr, 0);
        }
        range
    }

    fn charge_dealloc(&mut self, words: usize) {
        self.words_current = self.words_current.saturating_sub(words);
    }

    fn record_write(&mut self, addr: Option<usize>, changed: bool) {
        if changed {
            self.word_writes += 1;
            if self.in_epoch && !self.dirty {
                self.dirty = true;
                self.state_changes += 1;
            }
            if let (Some(aw), Some(a)) = (&mut self.addr_writes, addr) {
                if a >= aw.len() {
                    aw.resize(a + 1, 0);
                }
                aw[a] += 1;
            }
        } else {
            self.redundant_writes += 1;
        }
    }
}

/// Shared handle recording all memory activity of one streaming algorithm.
///
/// The handle is a thin reference-counted pointer, so tracked containers each hold a
/// clone of it.  Tracking is single-threaded by design: a streaming algorithm's state
/// change count is a sequential notion (one update at a time), and the paper's model is
/// sequential.
///
/// # Epochs
///
/// The paper counts a *state change* per stream update, not per modified word: an update
/// that rewrites five words counts once.  Call [`StateTracker::begin_epoch`] at the start
/// of each stream update (the [`crate::traits::StreamAlgorithm::update`] default method
/// does this for you); all writes until the next `begin_epoch` belong to that epoch, and
/// the epoch contributes at most one state change.
#[derive(Debug, Clone, Default)]
pub struct StateTracker {
    inner: Rc<RefCell<Inner>>,
}

impl StateTracker {
    /// Creates a tracker with aggregate counters only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker that additionally records per-address write counts, enabling
    /// wear analysis through [`crate::nvm::NvmReport`].
    ///
    /// Address tracking costs one `u64` per tracked word, so it is intended for
    /// moderate-size experiments (it is an analysis feature, not part of the algorithm).
    pub fn with_address_tracking() -> Self {
        let t = Self::new();
        t.inner.borrow_mut().addr_writes = Some(Vec::new());
        t
    }

    /// Starts a new epoch (stream update).  At most one state change is counted per
    /// epoch regardless of how many words are modified within it.
    pub fn begin_epoch(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.epochs += 1;
        inner.dirty = false;
        inner.in_epoch = true;
    }

    /// Allocates `words` words of tracked memory and charges them to the space accounts.
    pub fn alloc(&self, words: usize) -> AddrRange {
        self.inner.borrow_mut().charge_alloc(words)
    }

    /// Releases `words` words of tracked memory (peak usage is unaffected).
    pub fn dealloc(&self, words: usize) {
        self.inner.borrow_mut().charge_dealloc(words)
    }

    /// Records a write to one word.  `changed` must be `true` iff the stored value
    /// actually differs from the previous value; only changed writes can trigger a state
    /// change.  `addr` feeds per-cell wear accounting when enabled.
    pub fn record_write(&self, addr: Option<usize>, changed: bool) {
        self.inner.borrow_mut().record_write(addr, changed)
    }

    /// Records `n` word reads.
    pub fn record_reads(&self, n: u64) {
        self.inner.borrow_mut().reads += n;
    }

    /// Number of state changes so far (paper definition).
    pub fn state_changes(&self) -> u64 {
        self.inner.borrow().state_changes
    }

    /// Number of epochs (stream updates) started so far.
    pub fn epochs(&self) -> u64 {
        self.inner.borrow().epochs
    }

    /// Current number of allocated words.
    pub fn words_current(&self) -> usize {
        self.inner.borrow().words_current
    }

    /// Peak number of allocated words.
    pub fn words_peak(&self) -> usize {
        self.inner.borrow().words_peak
    }

    /// Produces an immutable snapshot of every counter.
    pub fn snapshot(&self) -> StateReport {
        let inner = self.inner.borrow();
        let (max_cell_writes, tracked_cells, total_addr_writes) = match &inner.addr_writes {
            Some(aw) => (
                aw.iter().copied().max(),
                Some(aw.len()),
                Some(aw.iter().sum()),
            ),
            None => (None, None, None),
        };
        StateReport {
            state_changes: inner.state_changes,
            word_writes: inner.word_writes,
            redundant_writes: inner.redundant_writes,
            reads: inner.reads,
            epochs: inner.epochs,
            words_current: inner.words_current,
            words_peak: inner.words_peak,
            max_cell_writes,
            tracked_cells,
            total_addr_writes,
        }
    }

    /// Per-address write counts, if address tracking is enabled.
    pub fn address_writes(&self) -> Option<Vec<u64>> {
        self.inner.borrow().addr_writes.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_bound_state_changes() {
        let t = StateTracker::new();
        for _ in 0..10 {
            t.begin_epoch();
            // Three changed writes within the same epoch count as one state change.
            t.record_write(None, true);
            t.record_write(None, true);
            t.record_write(None, true);
        }
        let r = t.snapshot();
        assert_eq!(r.epochs, 10);
        assert_eq!(r.state_changes, 10);
        assert_eq!(r.word_writes, 30);
    }

    #[test]
    fn unchanged_writes_are_not_state_changes() {
        let t = StateTracker::new();
        t.begin_epoch();
        t.record_write(None, false);
        t.record_write(None, false);
        assert_eq!(t.state_changes(), 0);
        assert_eq!(t.snapshot().redundant_writes, 2);
    }

    #[test]
    fn allocation_tracks_current_and_peak() {
        let t = StateTracker::new();
        let a = t.alloc(10);
        let b = t.alloc(5);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 10);
        assert_eq!(t.words_current(), 15);
        t.dealloc(10);
        assert_eq!(t.words_current(), 5);
        assert_eq!(t.words_peak(), 15);
        let c = t.alloc(1);
        assert_eq!(c.start, 15, "addresses are never reused");
    }

    #[test]
    fn address_tracking_records_per_cell_wear() {
        let t = StateTracker::with_address_tracking();
        let r = t.alloc(4);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        t.begin_epoch();
        t.record_write(Some(r.word(3)), true);
        let snap = t.snapshot();
        assert_eq!(snap.max_cell_writes, Some(2));
        assert_eq!(snap.total_addr_writes, Some(3));
        assert_eq!(snap.tracked_cells, Some(4));
    }

    #[test]
    fn clones_share_counters() {
        let t = StateTracker::new();
        let t2 = t.clone();
        t.begin_epoch();
        t2.record_write(None, true);
        assert_eq!(t.state_changes(), 1);
    }

    #[test]
    fn addr_range_word_is_clamped() {
        let r = AddrRange { start: 7, len: 3 };
        assert_eq!(r.word(0), 7);
        assert_eq!(r.word(2), 9);
        assert_eq!(AddrRange::EMPTY.word(0), 0);
    }
}
