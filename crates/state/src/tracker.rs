//! The [`StateTracker`] handle dispatching to a pluggable [`TrackerBackend`].

use std::sync::Arc;

use crate::backend::{FullTracker, LeanTracker, TrackerBackend, TrackerKind};
use crate::report::StateReport;

/// A contiguous range of tracked memory addresses, returned by [`StateTracker::alloc`].
///
/// Addresses are abstract word indices in the tracker's address space.  They are used
/// only when per-cell wear accounting is enabled (see
/// [`StateTracker::with_address_tracking`]); algorithms never interpret them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// First word index of the allocation.
    pub start: usize,
    /// Number of words allocated.
    pub len: usize,
}

impl AddrRange {
    /// An empty range used by structures created without an owning tracker allocation.
    /// Calling [`AddrRange::word`] on it is out of range for every index; callers
    /// holding a possibly-empty range must check `len` first (see
    /// [`crate::TrackedVec`]'s write path, the one such caller).
    pub const EMPTY: AddrRange = AddrRange { start: 0, len: 0 };

    /// Address of the `i`-th word in this range.  Out-of-range indices (`i ≥ len`,
    /// including any index into [`AddrRange::EMPTY`]) are a caller bug and panic in
    /// debug builds.
    pub fn word(&self, i: usize) -> usize {
        debug_assert!(
            i < self.len,
            "AddrRange::word index {i} out of range for len {}",
            self.len
        );
        self.start + i
    }
}

/// Shared handle recording all memory activity of one streaming algorithm.
///
/// The handle is a thin reference-counted pointer to a [`TrackerBackend`], so tracked
/// containers each hold a clone of it.  The backend decides what is counted:
///
/// * [`StateTracker::new`] (the default) — the exact-accounting [`FullTracker`];
/// * [`StateTracker::with_address_tracking`] — exact accounting plus per-cell wear;
/// * [`StateTracker::lean`] — the atomic [`LeanTracker`] (epochs, state changes, and
///   space only) whose update path is a few relaxed atomic operations.
///
/// Every backend is internally synchronised, so the handle — and therefore every
/// algorithm built on tracked containers — is `Send + Sync`.  The streaming model
/// itself stays sequential per tracker: a state change is a per-update notion, and
/// sharded runs give each shard its own tracker.
///
/// # Epochs
///
/// The paper counts a *state change* per stream update, not per modified word: an update
/// that rewrites five words counts once.  Call [`StateTracker::begin_epoch`] at the start
/// of each stream update (the [`crate::traits::StreamAlgorithm::update`] default method
/// does this for you); all writes until the next `begin_epoch` belong to that epoch, and
/// the epoch contributes at most one state change.
#[derive(Debug, Clone)]
pub struct StateTracker {
    backend: Arc<dyn TrackerBackend>,
}

impl Default for StateTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl StateTracker {
    /// Creates a tracker with the exact-accounting [`FullTracker`] backend.
    pub fn new() -> Self {
        Self::of_kind(TrackerKind::Full)
    }

    /// Creates an exact tracker that additionally records per-address write counts,
    /// enabling wear analysis through [`crate::nvm::NvmReport`].
    ///
    /// Address tracking costs one `u64` per tracked word, so it is intended for
    /// moderate-size experiments (it is an analysis feature, not part of the algorithm).
    pub fn with_address_tracking() -> Self {
        Self::of_kind(TrackerKind::FullAddressTracked)
    }

    /// Creates a tracker with the near-zero-overhead [`LeanTracker`] backend: atomic
    /// epoch/state-change/space counters only (see the backend docs for what is and is
    /// not counted).
    pub fn lean() -> Self {
        Self::of_kind(TrackerKind::Lean)
    }

    /// Creates a tracker with the given backend kind — the hook `Params`-style
    /// configuration uses to select a backend per algorithm without touching algorithm
    /// code.
    pub fn of_kind(kind: TrackerKind) -> Self {
        match kind {
            TrackerKind::Full => Self::from_backend(Arc::new(FullTracker::new())),
            TrackerKind::FullAddressTracked => {
                Self::from_backend(Arc::new(FullTracker::with_address_tracking()))
            }
            TrackerKind::Lean => Self::from_backend(Arc::new(LeanTracker::new())),
        }
    }

    /// Wraps a caller-supplied backend (e.g. a custom instrumented implementation).
    pub fn from_backend(backend: Arc<dyn TrackerBackend>) -> Self {
        Self { backend }
    }

    /// The kind of backend this tracker dispatches to.
    pub fn kind(&self) -> TrackerKind {
        self.backend.kind()
    }

    /// Starts a new epoch (stream update).  At most one state change is counted per
    /// epoch regardless of how many words are modified within it.
    pub fn begin_epoch(&self) {
        self.backend.begin_epoch()
    }

    /// Reserves a span of `n` consecutive epochs and returns the id of the first; the
    /// batch loop then activates each id in turn with [`StateTracker::enter_epoch`].
    ///
    /// This is the batch-amortised face of [`StateTracker::begin_epoch`]: the backends
    /// implement the pair so that a whole batch costs O(1) atomic read-modify-writes
    /// while [`StateTracker::epochs`] still advances per activated epoch (mid-batch
    /// observers such as age-bucketed maintenance see per-item time).
    pub fn begin_epochs(&self, n: u64) -> u64 {
        self.backend.begin_epochs(n)
    }

    /// Activates reserved epoch `id` (see [`StateTracker::begin_epochs`]).
    #[inline]
    pub fn enter_epoch(&self, id: u64) {
        self.backend.enter_epoch(id)
    }

    /// Allocates `words` words of tracked memory and charges them to the space accounts.
    pub fn alloc(&self, words: usize) -> AddrRange {
        self.backend.alloc(words)
    }

    /// Releases `words` words of tracked memory (peak usage is unaffected).
    pub fn dealloc(&self, words: usize) {
        self.backend.dealloc(words)
    }

    /// Records a write to one word.  `changed` must be `true` iff the stored value
    /// actually differs from the previous value; only changed writes can trigger a state
    /// change.  `addr` feeds per-cell wear accounting when enabled.
    pub fn record_write(&self, addr: Option<usize>, changed: bool) {
        self.backend.record_write(addr, changed)
    }

    /// Records `n` changed writes at the consecutive addresses `start..start + n`
    /// within the current epoch — the bulk face of [`StateTracker::record_write`] used
    /// by batch kernels whose writes land on a contiguous run (see
    /// [`crate::backend::TrackerBackend::record_changed_run`]).
    #[inline]
    pub fn record_changed_run(&self, start: Option<usize>, n: u64) {
        self.backend.record_changed_run(start, n)
    }

    /// Records one changed write at each of `addrs` within the current epoch (see
    /// [`crate::backend::TrackerBackend::record_changed_at`]).
    #[inline]
    pub fn record_changed_at(&self, addrs: &[usize]) {
        self.backend.record_changed_at(addrs)
    }

    /// Activates the reserved epochs `first..first + n` and records `writes` changed
    /// word writes in each — the bulk accounting call behind run-length kernels (see
    /// [`crate::backend::TrackerBackend::record_run_epochs`] for the exact contract).
    #[inline]
    pub fn record_run_epochs(&self, first: u64, n: u64, writes: u64, addrs: Option<&[usize]>) {
        self.backend.record_run_epochs(first, n, writes, addrs)
    }

    /// Activates each reserved epoch `first + i` and records, within it, one changed
    /// write at each address of `addrs[i * writes..(i + 1) * writes]` — the bulk
    /// accounting call behind the lane-packed scatter kernels (see
    /// [`crate::backend::TrackerBackend::record_scatter_epochs`] for the exact
    /// contract and the constant-time backend overrides).
    #[inline]
    pub fn record_scatter_epochs(&self, first: u64, writes: usize, addrs: &[usize]) {
        self.backend.record_scatter_epochs(first, writes, addrs)
    }

    /// Records `n` word reads.
    pub fn record_reads(&self, n: u64) {
        self.backend.record_reads(n)
    }

    /// Number of state changes so far (paper definition).
    pub fn state_changes(&self) -> u64 {
        self.backend.state_changes()
    }

    /// Monotone staleness clock for cached serving views; see
    /// [`TrackerBackend::state_change_generation`] for the conservative contract
    /// (compare only at epoch boundaries; restore taints the clock forward).
    pub fn state_change_generation(&self) -> u64 {
        self.backend.state_change_generation()
    }

    /// Number of epochs (stream updates) started so far.
    pub fn epochs(&self) -> u64 {
        self.backend.epochs()
    }

    /// Current number of allocated words.
    pub fn words_current(&self) -> usize {
        self.backend.words_current()
    }

    /// Peak number of allocated words.
    pub fn words_peak(&self) -> usize {
        self.backend.words_peak()
    }

    /// Produces an immutable snapshot of every counter the backend maintains.
    pub fn snapshot(&self) -> StateReport {
        self.backend.snapshot()
    }

    /// Per-address write counts, if address tracking is enabled.
    pub fn address_writes(&self) -> Option<Vec<u64>> {
        self.backend.address_writes()
    }

    /// Exports the complete counter state for checkpointing (see
    /// [`crate::snapshot::TrackerState`]).
    pub fn export_state(&self) -> crate::snapshot::TrackerState {
        self.backend.export_state()
    }

    /// Overwrites every counter with a previously exported state — the final step of
    /// an algorithm restore, after its containers have been rebuilt (any accounting
    /// the rebuild charged is clobbered by this call, which is what makes
    /// `restore(checkpoint(a))` reproduce the original [`crate::StateReport`] and
    /// wear table exactly).
    pub fn import_state(&self, state: &crate::snapshot::TrackerState) {
        self.backend.import_state(state)
    }

    /// The addresses dirtied after `epoch`, or `None` as the conservative
    /// "assume everything changed" answer (see
    /// [`crate::backend::TrackerBackend::dirty_since`] for the exact soundness
    /// contract — only the address-tracked backend ever answers `Some`).
    pub fn dirty_since(&self, epoch: u64) -> Option<Vec<usize>> {
        self.backend.dirty_since(epoch)
    }

    /// Drains the dirty-address journal since the previous drain.  Call only at an
    /// epoch boundary — between updates — or current-epoch writes after the drain go
    /// unreported (see [`crate::backend::TrackerBackend::drain_dirty`]).
    pub fn drain_dirty(&self) -> Option<Vec<usize>> {
        self.backend.drain_dirty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_bound_state_changes() {
        let t = StateTracker::new();
        for _ in 0..10 {
            t.begin_epoch();
            // Three changed writes within the same epoch count as one state change.
            t.record_write(None, true);
            t.record_write(None, true);
            t.record_write(None, true);
        }
        let r = t.snapshot();
        assert_eq!(r.epochs, 10);
        assert_eq!(r.state_changes, 10);
        assert_eq!(r.word_writes, 30);
    }

    #[test]
    fn unchanged_writes_are_not_state_changes() {
        let t = StateTracker::new();
        t.begin_epoch();
        t.record_write(None, false);
        t.record_write(None, false);
        assert_eq!(t.state_changes(), 0);
        assert_eq!(t.snapshot().redundant_writes, 2);
    }

    #[test]
    fn allocation_tracks_current_and_peak() {
        let t = StateTracker::new();
        let a = t.alloc(10);
        let b = t.alloc(5);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 10);
        assert_eq!(t.words_current(), 15);
        t.dealloc(10);
        assert_eq!(t.words_current(), 5);
        assert_eq!(t.words_peak(), 15);
        let c = t.alloc(1);
        assert_eq!(c.start, 15, "addresses are never reused");
    }

    #[test]
    fn address_tracking_records_per_cell_wear() {
        let t = StateTracker::with_address_tracking();
        let r = t.alloc(4);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        t.begin_epoch();
        t.record_write(Some(r.word(3)), true);
        let snap = t.snapshot();
        assert_eq!(snap.max_cell_writes, Some(2));
        assert_eq!(snap.total_addr_writes, Some(3));
        assert_eq!(snap.tracked_cells, Some(4));
    }

    #[test]
    fn clones_share_counters() {
        let t = StateTracker::new();
        let t2 = t.clone();
        t.begin_epoch();
        t2.record_write(None, true);
        assert_eq!(t.state_changes(), 1);
    }

    #[test]
    fn lean_tracker_counts_epochs_and_state_changes() {
        let t = StateTracker::lean();
        assert_eq!(t.kind(), TrackerKind::Lean);
        let r = t.alloc(2);
        t.record_write(Some(r.word(0)), true); // init, before any epoch
        for _ in 0..5 {
            t.begin_epoch();
            t.record_write(Some(r.word(0)), true);
            t.record_write(Some(r.word(1)), true);
        }
        t.begin_epoch();
        t.record_write(None, false);
        let snap = t.snapshot();
        assert_eq!(snap.epochs, 6);
        assert_eq!(snap.state_changes, 5);
        assert_eq!(snap.words_peak, 2);
        assert_eq!(
            snap.word_writes, 0,
            "lean backend does not count word writes"
        );
    }

    #[test]
    fn kind_round_trips_through_of_kind() {
        for kind in [
            TrackerKind::Full,
            TrackerKind::FullAddressTracked,
            TrackerKind::Lean,
        ] {
            assert_eq!(StateTracker::of_kind(kind).kind(), kind);
        }
    }

    #[test]
    fn addr_range_word_indexes_within_range() {
        let r = AddrRange { start: 7, len: 3 };
        assert_eq!(r.word(0), 7);
        assert_eq!(r.word(2), 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn addr_range_word_out_of_range_panics_in_debug() {
        let _ = AddrRange::EMPTY.word(0);
    }

    #[test]
    fn trackers_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StateTracker>();
    }
}
