//! A tracked two-dimensional array stored in one contiguous allocation.

use crate::tracker::{AddrRange, StateTracker};
use crate::words_of;

/// A tracked `rows × width` matrix backed by a single row-major `Vec`.
///
/// Sketch tables (CountMin rows, CountSketch rows, the AMS counter groups) are
/// naturally two-dimensional but per-update touch one cell per row; storing the whole
/// sketch as one allocation instead of `rows` boxed [`crate::TrackedVec`]s removes a
/// pointer chase per row from the per-update hot path and keeps the counters on a
/// prefetch-friendly stride.
///
/// # Accounting equivalence
///
/// The accounting is cell-for-cell identical to `rows` consecutive
/// `TrackedVec::filled` allocations on the same tracker: one allocation of
/// `rows × width` elements charged up front, one initialisation write per cell
/// (performed before the first epoch), and cell `(r, c)` living at tracked address
/// `base + (r·width + c)·elem_words` — exactly where the `r`-th consecutively
/// allocated row vector would have put it.  Recorded experiments therefore reproduce
/// bit-for-bit across the storage change (the golden `table1` test pins this).
#[derive(Debug, Clone)]
pub struct TrackedMatrix<T> {
    data: Vec<T>,
    rows: usize,
    width: usize,
    tracker: StateTracker,
    addr: AddrRange,
    elem_words: usize,
}

impl<T: PartialEq + Clone> TrackedMatrix<T> {
    /// Allocates a `rows × width` matrix filled with `init`.
    ///
    /// Initialisation is charged as `rows × width` writes (zeroing memory is a write),
    /// performed before the first epoch.
    pub fn filled(tracker: &StateTracker, rows: usize, width: usize, init: T) -> Self {
        assert!(rows >= 1 && width >= 1);
        let elem_words = words_of::<T>();
        let len = rows * width;
        let addr = tracker.alloc(len * elem_words);
        for i in 0..len {
            tracker.record_write(Some(addr.word(i * elem_words)), true);
        }
        Self {
            data: vec![init; len],
            rows,
            width,
            tracker: tracker.clone(),
            addr,
            elem_words,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no cells (never true: dimensions are ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline(always)]
    fn index(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.width);
        r * self.width + c
    }

    /// Reads cell `(r, c)` (charged as one element read).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &T {
        self.tracker.record_reads(self.elem_words as u64);
        &self.data[self.index(r, c)]
    }

    /// Reads cell `(r, c)` without charging (reporting code only).
    #[inline]
    pub fn peek(&self, r: usize, c: usize) -> &T {
        &self.data[self.index(r, c)]
    }

    /// Writes `value` into cell `(r, c)`; returns `true` if the cell changed.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: T) -> bool {
        let i = self.index(r, c);
        let changed = self.data[i] != value;
        self.tracker
            .record_write(Some(self.addr.word(i * self.elem_words)), changed);
        if changed {
            self.data[i] = value;
        }
        changed
    }

    /// Applies `f` to cell `(r, c)` and writes the result back (one read, one write).
    /// Returns `true` if the cell changed.
    #[inline]
    pub fn update(&mut self, r: usize, c: usize, f: impl FnOnce(&T) -> T) -> bool {
        let new = f(self.get(r, c));
        self.set(r, c, new)
    }

    /// Tracked address of cell `(r, c)` (the address charged per word by
    /// [`TrackedMatrix::set`]/[`TrackedMatrix::update`]) — what a batch kernel passes
    /// to the bulk write-accounting calls on the tracker.
    #[inline(always)]
    pub fn addr_of(&self, r: usize, c: usize) -> usize {
        self.addr.word(self.index(r, c) * self.elem_words)
    }

    /// Number of tracked words per element (1 for `u64`/`i64` cells).
    #[inline(always)]
    pub fn elem_words(&self) -> usize {
        self.elem_words
    }

    /// Untracked view of row `r` (reporting / merge bookkeeping only).
    pub fn row_untracked(&self, r: usize) -> &[T] {
        let start = r * self.width;
        &self.data[start..start + self.width]
    }

    /// Untracked mutable view of all cells in row-major order — the data path of the
    /// specialized batch kernels.
    ///
    /// Mutations through this slice bypass per-cell accounting entirely: the caller
    /// **must** charge the tracker with the exact equivalent of the per-cell calls it
    /// skipped ([`StateTracker::record_reads`] plus
    /// [`StateTracker::record_changed_run`]/[`StateTracker::record_changed_at`] with
    /// the addresses from [`TrackedMatrix::addr_of`]), or recorded experiments
    /// diverge from the per-item path.  The batch-law tests pin that equivalence for
    /// every kernel in the repository.
    #[inline(always)]
    pub fn as_mut_slice_untracked(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Untracked iteration over all cells in row-major order.
    pub fn iter_untracked(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }
}

impl<T> Drop for TrackedMatrix<T> {
    fn drop(&mut self) {
        self.tracker.dealloc(self.data.len() * self.elem_words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackedVec;

    #[test]
    fn filled_charges_initialisation_like_consecutive_row_vectors() {
        let t_rows = StateTracker::new();
        let rows: Vec<TrackedVec<u64>> = (0..3)
            .map(|_| TrackedVec::filled(&t_rows, 4, 0u64))
            .collect();
        let t_flat = StateTracker::new();
        let flat = TrackedMatrix::filled(&t_flat, 3, 4, 0u64);
        assert_eq!(t_flat.snapshot(), t_rows.snapshot());
        assert_eq!(flat.len(), rows.iter().map(|r| r.len()).sum::<usize>());
        assert_eq!(t_flat.snapshot().word_writes, 12);
        assert_eq!(t_flat.words_current(), 12);
        assert_eq!(t_flat.state_changes(), 0, "init precedes the first epoch");
    }

    #[test]
    fn updates_charge_the_same_addresses_as_row_vectors() {
        // Same mutation pattern through both layouts: per-address wear must agree.
        let t_rows = StateTracker::with_address_tracking();
        let mut rows: Vec<TrackedVec<u64>> = (0..2)
            .map(|_| TrackedVec::filled(&t_rows, 3, 0u64))
            .collect();
        let t_flat = StateTracker::with_address_tracking();
        let mut flat = TrackedMatrix::filled(&t_flat, 2, 3, 0u64);
        for (r, c) in [(0, 1), (1, 2), (1, 2), (0, 0)] {
            t_rows.begin_epoch();
            rows[r].update(c, |v| v + 1);
            t_flat.begin_epoch();
            flat.update(r, c, |v| v + 1);
        }
        assert_eq!(t_flat.address_writes(), t_rows.address_writes());
        assert_eq!(t_flat.snapshot(), t_rows.snapshot());
        assert_eq!(*flat.peek(1, 2), 2);
    }

    #[test]
    fn set_counts_only_changes() {
        let t = StateTracker::new();
        let mut m = TrackedMatrix::filled(&t, 2, 2, 0u32);
        t.begin_epoch();
        assert!(m.set(1, 1, 5));
        t.begin_epoch();
        assert!(!m.set(1, 1, 5));
        let r = t.snapshot();
        assert_eq!(r.state_changes, 1);
        assert_eq!(r.redundant_writes, 1);
    }

    #[test]
    fn reads_are_charged_per_element_word() {
        let t = StateTracker::new();
        let m = TrackedMatrix::filled(&t, 2, 2, 0u128);
        let init_reads = t.snapshot().reads;
        let _ = m.get(0, 1);
        assert_eq!(t.snapshot().reads - init_reads, 2, "u128 spans two words");
        let _ = m.peek(1, 0);
        assert_eq!(t.snapshot().reads - init_reads, 2);
        assert_eq!(m.iter_untracked().count(), 4);
        assert_eq!(m.row_untracked(1).len(), 2);
    }

    #[test]
    fn addr_of_matches_the_addresses_charged_by_per_cell_writes() {
        // A kernel that mutates via the untracked slice and charges the tracker with
        // addr_of-addressed bulk writes must leave the same wear table as per-cell
        // update() calls.
        let t_cell = StateTracker::with_address_tracking();
        let mut cell = TrackedMatrix::filled(&t_cell, 2, 3, 0u64);
        let t_bulk = StateTracker::with_address_tracking();
        let mut bulk = TrackedMatrix::filled(&t_bulk, 2, 3, 0u64);
        for (r, c) in [(0, 2), (1, 0), (1, 2)] {
            t_cell.begin_epoch();
            cell.update(r, c, |v| v + 1);
            t_bulk.begin_epoch();
            t_bulk.record_reads(1);
            let addr = bulk.addr_of(r, c);
            bulk.as_mut_slice_untracked()[r * 3 + c] += 1;
            t_bulk.record_changed_at(&[addr]);
        }
        assert_eq!(t_bulk.address_writes(), t_cell.address_writes());
        assert_eq!(t_bulk.snapshot(), t_cell.snapshot());
        assert_eq!(bulk.peek(1, 2), cell.peek(1, 2));
        assert_eq!(bulk.elem_words(), 1);
    }

    #[test]
    fn dimensions_and_drop_release_space() {
        let t = StateTracker::new();
        let m = TrackedMatrix::filled(&t, 3, 5, 0u64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.width(), 5);
        assert_eq!(m.len(), 15);
        assert!(!m.is_empty());
        drop(m);
        assert_eq!(t.words_current(), 0);
        assert_eq!(t.words_peak(), 15);
    }
}
