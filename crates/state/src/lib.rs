//! # fsc-state — state-change accounting substrate
//!
//! The paper *Streaming Algorithms with Few State Changes* (PODS 2024) proposes the
//! **number of internal state changes** of a streaming algorithm as a first-class
//! complexity measure, alongside space and update time.  Formally (paper, Section 1.5):
//! for an algorithm `A` with memory state `σ_t` after processing the `t`-th stream
//! update, let `X_t = 1` if `σ_t ≠ σ_{t−1}` and `X_t = 0` otherwise; the number of
//! internal state changes is `Σ_t X_t`.
//!
//! This crate provides the substrate on which every algorithm in this repository is
//! built so that state changes are measured uniformly and cannot be under-counted:
//!
//! * [`StateTracker`] — a cheaply clonable handle that records, per stream update
//!   ("epoch"), whether any tracked word of memory changed, along with finer-grained
//!   counters (word writes, redundant writes, reads) and space usage (current / peak
//!   words).  The handle dispatches to a pluggable [`backend`]: the exact-accounting
//!   [`FullTracker`] (default) or the atomic, `Send + Sync` [`LeanTracker`] that counts
//!   only epochs, state changes, and space.
//! * [`TrackedCell`], [`TrackedVec`], [`TrackedMatrix`], [`TrackedMap`] — drop-in
//!   storage primitives that report every mutation to their tracker and only count a
//!   *state change* when the stored value actually differs.
//! * [`nvm`] — an asymmetric-memory (NVM / NAND flash) cost model that converts a
//!   [`StateReport`] into simulated write energy, latency, and per-cell wear, following
//!   the motivation of Section 1.1 of the paper.
//! * [`traits`] — the common traits implemented by the paper's algorithms and by all
//!   baselines ([`StreamAlgorithm`], [`FrequencyEstimator`], [`MomentEstimator`], …).
//!
//! ## Example
//!
//! ```
//! use fsc_state::{StateTracker, TrackedCell};
//!
//! let tracker = StateTracker::new();
//! let mut cell = TrackedCell::new(&tracker, 0u64);
//!
//! // Three stream updates; only two of them modify the cell.
//! tracker.begin_epoch();
//! cell.write(5);
//! tracker.begin_epoch();
//! cell.write(5); // unchanged: a redundant write, not a state change
//! tracker.begin_epoch();
//! cell.write(7);
//!
//! let report = tracker.snapshot();
//! assert_eq!(report.state_changes, 2);
//! // Initialising the cell plus the two updates that changed it:
//! assert_eq!(report.word_writes, 3);
//! assert_eq!(report.redundant_writes, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
mod cell;
pub mod delta;
mod map;
mod matrix;
pub mod nvm;
mod report;
pub mod snapshot;
mod tracker;
pub mod traits;
mod vec;

pub use backend::{FullTracker, LeanTracker, TrackerBackend, TrackerKind};
pub use cell::TrackedCell;
pub use delta::{
    apply_delta, encode_delta, peek_delta, BaseRef, ChainRecovery, CheckpointChain, DeltaInfo,
    DeltaStats, DiscardedDelta,
};
pub use map::TrackedMap;
pub use matrix::TrackedMatrix;
pub use nvm::{NvmCostModel, NvmReport};
pub use report::StateReport;
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter, TrackerState};
pub use tracker::{AddrRange, StateTracker};
pub use traits::{
    Answer, EntropyEstimator, FrequencyEstimator, Mergeable, MomentEstimator, Query, Queryable,
    Snapshot, StreamAlgorithm, SupportRecovery,
};
pub use vec::TrackedVec;

/// Number of 64-bit machine words needed to store a value of type `T`.
///
/// Every tracked container charges space in words of `O(log n + log m)` bits, matching
/// the word model of the paper (Section 1.5).  Zero-sized types are charged one word so
/// that presence/absence information is never free.
pub fn words_of<T>() -> usize {
    std::mem::size_of::<T>().div_ceil(8).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_of_charges_at_least_one_word() {
        assert_eq!(words_of::<()>(), 1);
        assert_eq!(words_of::<u8>(), 1);
        assert_eq!(words_of::<u64>(), 1);
        assert_eq!(words_of::<u128>(), 2);
        assert_eq!(words_of::<[u64; 5]>(), 5);
    }
}
