//! Delta checkpoints (`FSCD`) and time-travel chains over the `FSCS` format.
//!
//! The paper's thesis is that state changes are scarce — `Õ(n^{1−1/p})` for the
//! moment and heavy-hitter summaries of Sections 3–4 — so the bytes that must be
//! *persisted* per checkpoint should be proportional to what changed, not to the
//! summary size.  A full [`Snapshot::checkpoint`]
//! always serializes the whole summary; this module adds the incremental layer:
//!
//! * [`encode_delta`] / [`apply_delta`] — the `FSCD` wire format: a word-granular
//!   binary diff between two full `FSCS` checkpoints of the same algorithm.  The
//!   encoder compares the checkpoints as zero-padded 8-byte words and emits runs of
//!   changed words; when the diff would exceed the full checkpoint it embeds the full
//!   payload instead, so a delta is never more than a small header larger than the
//!   checkpoint it replaces ([`DELTA_OVERHEAD`]).  A checksum of the reconstruction
//!   target and the exact base length are stored, so applying a delta to the wrong
//!   base fails with a typed [`SnapshotError::MissingBase`] — never silent corruption.
//! * [`BaseRef`] — a captured full checkpoint plus its epoch, the "since" argument of
//!   [`Snapshot::checkpoint_delta`].
//! * [`CheckpointChain`] — a base plus ordered deltas: append with ordering
//!   validation ([`SnapshotError::OutOfOrderDelta`]), reconstruct the tip, answer
//!   time-travel queries with [`CheckpointChain::bytes_at`] /
//!   [`CheckpointChain::restore_at`] (replay from the base up to the nearest
//!   checkpoint at-or-before the asked epoch), and fold history into a fresh base
//!   with [`CheckpointChain::compact`].
//!
//! # Why a byte diff and not an address diff
//!
//! Tracked addresses ([`crate::AddrRange`]) are abstract word indices with no stable
//! mapping to checkpoint byte offsets: container layouts are algorithm-private, and
//! [`crate::TrackedMap`] writes are anonymous (no address at all).  The per-backend
//! dirty journal ([`crate::backend::TrackerBackend::dirty_since`]) therefore serves
//! as a *conservative observability layer* — it tells persistence layers when nothing
//! changed and bounds how much could have — while the delta encoding itself diffs the
//! serialized state, which is correct for every algorithm unconditionally.  Because
//! checkpoint encodings are deterministic and word-aligned (`SnapshotWriter` emits
//! little-endian words), a summary with few state changes produces a byte diff whose
//! size tracks the changed words, which is exactly the persistence-cost claim the
//! `fig_engine` curves measure (EXPERIMENTS.md §checkpoint-bytes).

use crate::snapshot::{SnapshotError, SnapshotReader, SNAPSHOT_VERSION};
use crate::traits::Snapshot;

/// Leading magic of every delta checkpoint (`FSCD` = Few-State-Changes Delta).
pub const DELTA_MAGIC: [u8; 4] = *b"FSCD";

/// Worst-case size overhead of a delta over the full checkpoint it encodes, in bytes
/// (header, lengths, checksum, and the embedded-payload length prefix), excluding the
/// algorithm-id string both formats carry.  The encoder falls back to embedding the
/// full payload whenever the word diff would be larger, so
/// `delta.len() ≤ full.len() + DELTA_OVERHEAD + algorithm_id.len()` always holds —
/// the "delta bytes ≤ full checkpoint bytes" law up to this additive slack.
pub const DELTA_OVERHEAD: usize = 4 + 2 + 8 + 8 * 5 + 1 + 8;

/// FNV-1a over `bytes` — the integrity checksum stored in every delta, validating
/// that applying it reproduced the exact full checkpoint it was encoded from.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `i`-th 8-byte little-endian word of `bytes`, zero-padded past the end — the
/// word view both diff sides are compared in (padding makes grow/shrink well-defined).
fn padded_word(bytes: &[u8], i: usize) -> u64 {
    let start = i * 8;
    let mut buf = [0u8; 8];
    if start < bytes.len() {
        let end = (start + 8).min(bytes.len());
        buf[..end - start].copy_from_slice(&bytes[start..end]);
    }
    u64::from_le_bytes(buf)
}

/// Parsed header of a delta checkpoint — everything needed to validate ordering and
/// base identity before committing to an apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaInfo {
    /// Algorithm id shared with the base/target `FSCS` headers.
    pub algorithm: String,
    /// Epoch of the base checkpoint this delta was encoded against.
    pub base_epoch: u64,
    /// Epoch of the checkpoint this delta reconstructs.
    pub epoch: u64,
    /// Exact byte length the base must have.
    pub base_len: usize,
    /// Byte length of the reconstructed full checkpoint.
    pub new_len: usize,
}

/// Sizes recorded when a delta is appended to a [`CheckpointChain`] — the raw
/// material of the checkpoint-bytes-vs-stream-length curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaStats {
    /// Epoch of the checkpoint the delta reconstructs.
    pub epoch: u64,
    /// Size of the full checkpoint at that epoch.
    pub full_bytes: usize,
    /// Size of the emitted delta.
    pub delta_bytes: usize,
}

/// One delta dropped by [`CheckpointChain::recover`], with the typed reason.
///
/// `index` is the delta's position in the supplied log (0 = the first delta after
/// the base); `epoch` is the target epoch the delta claimed, when its header was
/// still parseable (a torn header yields `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscardedDelta {
    /// Position of the delta in the supplied log.
    pub index: usize,
    /// Target epoch from the delta header, if the header parsed.
    pub epoch: Option<u64>,
    /// Why the delta was not applied.
    pub error: SnapshotError,
}

/// Outcome of [`CheckpointChain::recover`]: how much of a persisted delta log was
/// restorable and exactly what was discarded — the typed report a crash-recovering
/// server surfaces instead of silently dropping history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainRecovery {
    /// Deltas applied onto the base, in order.
    pub applied: usize,
    /// Epoch of the recovered tip (base epoch when nothing applied).
    pub tip_epoch: u64,
    /// Deltas that failed validation or application, with typed reasons.
    pub discarded: Vec<DiscardedDelta>,
}

impl ChainRecovery {
    /// Whether the whole log was applied (nothing discarded).
    pub fn is_clean(&self) -> bool {
        self.discarded.is_empty()
    }
}

impl std::fmt::Display for ChainRecovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} delta(s) applied to epoch {}",
            self.applied, self.tip_epoch
        )?;
        for d in &self.discarded {
            match d.epoch {
                Some(e) => write!(f, "; discarded #{} (epoch {}): {}", d.index, e, d.error)?,
                None => write!(f, "; discarded #{}: {}", d.index, d.error)?,
            }
        }
        Ok(())
    }
}

/// A captured full checkpoint plus the epoch it was taken at: the `since` argument of
/// [`Snapshot::checkpoint_delta`].
#[derive(Debug, Clone)]
pub struct BaseRef {
    epoch: u64,
    bytes: Vec<u8>,
}

impl BaseRef {
    /// Captures `a`'s current full checkpoint and epoch clock.
    pub fn capture<A: Snapshot + ?Sized>(a: &A) -> Self {
        Self {
            epoch: a.report().epochs,
            bytes: a.checkpoint(),
        }
    }

    /// Wraps previously captured checkpoint bytes taken at `epoch` (e.g. an engine
    /// checkpoint, which is not a [`Snapshot`] implementor).
    pub fn new(bytes: Vec<u8>, epoch: u64) -> Self {
        Self { epoch, bytes }
    }

    /// The epoch the base was captured at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The captured full checkpoint.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Encodes the `FSCD` delta transforming the full checkpoint `base` (taken at
/// `base_epoch`) into the full checkpoint `new` (taken at `epoch`).
///
/// Both inputs must be valid `FSCS` checkpoints of the same algorithm; `epoch` must
/// not precede `base_epoch`.  The payload is whichever is smaller of (a) run-length
/// encoded changed 8-byte words and (b) the full `new` bytes embedded verbatim, so
/// the result never exceeds `new.len() + DELTA_OVERHEAD + algorithm_id.len()`.
pub fn encode_delta(
    base: &[u8],
    new: &[u8],
    base_epoch: u64,
    epoch: u64,
) -> Result<Vec<u8>, SnapshotError> {
    let algorithm = SnapshotReader::peek_algorithm(base)?;
    let new_algorithm = SnapshotReader::peek_algorithm(new)?;
    if algorithm != new_algorithm {
        return Err(SnapshotError::WrongAlgorithm {
            expected: algorithm,
            found: new_algorithm,
        });
    }
    if epoch < base_epoch {
        return Err(SnapshotError::Corrupt("delta epoch precedes base epoch"));
    }

    // Changed-word runs over the zero-padded word views.  Only `new`'s words need
    // entries: apply_delta resizes the output to `new_len` before replaying runs,
    // which already drops any base bytes past it, and it rejects runs beyond
    // `new`'s word count — emitting shrink-truncated words here would make a
    // sparse shrinking diff encode fine but fail to apply.
    let words = new.len().div_ceil(8);
    let mut runs: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut i = 0;
    while i < words {
        if padded_word(base, i) == padded_word(new, i) {
            i += 1;
            continue;
        }
        let start = i;
        let mut changed = Vec::new();
        while i < words && padded_word(base, i) != padded_word(new, i) {
            changed.push(padded_word(new, i));
            i += 1;
        }
        runs.push((start, changed));
    }
    let runs_bytes: usize = 8 + runs.iter().map(|(_, w)| 16 + 8 * w.len()).sum::<usize>();

    let mut w = Vec::new();
    w.extend_from_slice(&DELTA_MAGIC);
    w.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    w.extend_from_slice(&(algorithm.len() as u64).to_le_bytes());
    w.extend_from_slice(algorithm.as_bytes());
    w.extend_from_slice(&base_epoch.to_le_bytes());
    w.extend_from_slice(&epoch.to_le_bytes());
    w.extend_from_slice(&(base.len() as u64).to_le_bytes());
    w.extend_from_slice(&(new.len() as u64).to_le_bytes());
    w.extend_from_slice(&fnv1a(new).to_le_bytes());
    if runs_bytes < 8 + new.len() {
        w.push(0); // mode: changed-word runs
        w.extend_from_slice(&(runs.len() as u64).to_le_bytes());
        for (start, words) in &runs {
            w.extend_from_slice(&(*start as u64).to_le_bytes());
            w.extend_from_slice(&(words.len() as u64).to_le_bytes());
            for word in words {
                w.extend_from_slice(&word.to_le_bytes());
            }
        }
    } else {
        w.push(1); // mode: full payload embedded verbatim
        w.extend_from_slice(&(new.len() as u64).to_le_bytes());
        w.extend_from_slice(new);
    }
    Ok(w)
}

/// Parses a delta's header without applying it (ordering/identity checks, labeling).
pub fn peek_delta(delta: &[u8]) -> Result<DeltaInfo, SnapshotError> {
    let mut r = SnapshotReader::raw(delta);
    let (info, _) = read_delta_header(&mut r)?;
    Ok(info)
}

/// Reads the `FSCD` header; returns the parsed info and the expected checksum,
/// leaving the reader positioned at the mode tag.
fn read_delta_header<'a>(r: &mut SnapshotReader<'a>) -> Result<(DeltaInfo, u64), SnapshotError> {
    if r.take_bytes(4)? != DELTA_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let algorithm = r.string()?;
    let base_epoch = r.u64()?;
    let epoch = r.u64()?;
    if epoch < base_epoch {
        return Err(SnapshotError::Corrupt("delta epoch precedes base epoch"));
    }
    let base_len = r.usize()?;
    let new_len = r.usize()?;
    let checksum = r.u64()?;
    Ok((
        DeltaInfo {
            algorithm,
            base_epoch,
            epoch,
            base_len,
            new_len,
        },
        checksum,
    ))
}

/// Applies an `FSCD` delta to the full checkpoint it was encoded against, returning
/// the reconstructed full checkpoint.
///
/// Validation is total: a base belonging to a different algorithm fails with
/// [`SnapshotError::WrongAlgorithm`]; a base of the wrong length — or one whose
/// content leads to a checksum mismatch — fails with
/// [`SnapshotError::MissingBase`]; truncated or malformed delta bytes fail with the
/// usual typed errors.  On success the result is byte-identical to the `new`
/// argument of the matching [`encode_delta`] call.
pub fn apply_delta(base: &[u8], delta: &[u8]) -> Result<Vec<u8>, SnapshotError> {
    let mut r = SnapshotReader::raw(delta);
    let (info, checksum) = read_delta_header(&mut r)?;
    let base_algorithm = SnapshotReader::peek_algorithm(base)?;
    if base_algorithm != info.algorithm {
        return Err(SnapshotError::WrongAlgorithm {
            expected: info.algorithm,
            found: base_algorithm,
        });
    }
    if info.base_len != base.len() {
        return Err(SnapshotError::MissingBase);
    }
    let mut out = match r.u8()? {
        0 => {
            let mut out = base.to_vec();
            out.resize(info.new_len, 0);
            let run_count = r.len_prefix(16)?;
            let max_word = info.new_len.div_ceil(8);
            for _ in 0..run_count {
                let start = r.usize()?;
                let len = r.len_prefix(8)?;
                if start.checked_add(len).is_none_or(|end| end > max_word) {
                    return Err(SnapshotError::Corrupt("delta run out of bounds"));
                }
                for i in 0..len {
                    let word = r.u64()?.to_le_bytes();
                    let at = (start + i) * 8;
                    let end = (at + 8).min(info.new_len);
                    out[at..end].copy_from_slice(&word[..end - at]);
                }
            }
            out
        }
        1 => {
            let payload = r.byte_slice()?;
            if payload.len() != info.new_len {
                return Err(SnapshotError::Corrupt("embedded payload length"));
            }
            payload.to_vec()
        }
        _ => return Err(SnapshotError::Corrupt("delta mode tag")),
    };
    r.finish()?;
    out.truncate(info.new_len);
    if fnv1a(&out) != checksum {
        return Err(SnapshotError::MissingBase);
    }
    Ok(out)
}

/// A base checkpoint plus an ordered run of deltas — the durable form of an
/// incrementally persisted summary, and the index time-travel queries run against.
///
/// The chain is byte-generic: it works for any `FSCS` checkpoint producer, including
/// `fsc-engine` shard-set checkpoints (algorithm id `"fsc_engine"`), not just
/// [`Snapshot`] implementors.  Appends validate algorithm identity, base length, and
/// epoch ordering with typed errors, so a corrupted or reordered persistence log is
/// rejected instead of reconstructing garbage.
#[derive(Debug, Clone)]
pub struct CheckpointChain {
    algorithm: String,
    base: Vec<u8>,
    base_epoch: u64,
    /// `(epoch, delta bytes)` in append order; epochs are non-decreasing.
    deltas: Vec<(u64, Vec<u8>)>,
    /// Reconstruction of the tip (cached so appends validate in O(delta)).
    tip: Vec<u8>,
    tip_epoch: u64,
}

impl CheckpointChain {
    /// Starts a chain from a full checkpoint taken at `base_epoch`.
    pub fn new(base: Vec<u8>, base_epoch: u64) -> Result<Self, SnapshotError> {
        let algorithm = SnapshotReader::peek_algorithm(&base)?;
        Ok(Self {
            algorithm,
            tip: base.clone(),
            tip_epoch: base_epoch,
            base,
            base_epoch,
            deltas: Vec::new(),
        })
    }

    /// Rebuilds a chain from a persisted log — a base plus deltas read back from
    /// durable storage — **recovering past corrupt, truncated, or misordered
    /// entries** instead of failing the whole chain.
    ///
    /// Each delta is validated and applied in log order; one that fails (torn
    /// bytes, flipped bits caught by the checksum, an epoch that does not chain
    /// onto the tip) is *discarded* with its typed error and recovery continues
    /// with the next entry.  Because a delta must chain onto the exact tip epoch
    /// and content, discarding entry `k` normally discards everything after it
    /// too — the newest valid prefix semantics a crash-recovering server wants —
    /// but a retried write of the same range (first copy torn, second intact)
    /// heals without loss.  The base itself must be a valid `FSCS` checkpoint;
    /// a torn base fails the whole recovery (the caller falls back to an older
    /// base or reports the tenant lost).
    ///
    /// [`CheckpointChain::restore`] and [`CheckpointChain::restore_at`] on the
    /// returned chain therefore answer from the newest restorable state, and the
    /// [`ChainRecovery`] says exactly which persisted entries were thrown away.
    pub fn recover(
        base: Vec<u8>,
        base_epoch: u64,
        deltas: impl IntoIterator<Item = Vec<u8>>,
    ) -> Result<(Self, ChainRecovery), SnapshotError> {
        let mut chain = Self::new(base, base_epoch)?;
        let mut discarded = Vec::new();
        for (index, delta) in deltas.into_iter().enumerate() {
            let epoch = peek_delta(&delta).ok().map(|info| info.epoch);
            if let Err(error) = chain.append_delta(delta) {
                discarded.push(DiscardedDelta {
                    index,
                    epoch,
                    error,
                });
            }
        }
        let recovery = ChainRecovery {
            applied: chain.len(),
            tip_epoch: chain.tip_epoch(),
            discarded,
        };
        Ok((chain, recovery))
    }

    /// The algorithm id shared by the base and every delta.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Epoch of the chain's base checkpoint.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Epoch of the chain's tip (base epoch when no deltas are appended).
    pub fn tip_epoch(&self) -> u64 {
        self.tip_epoch
    }

    /// Number of deltas currently in the chain.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the chain holds no deltas (tip == base).
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Encodes `full` (the current full checkpoint, taken at `epoch`) as a delta
    /// against the tip, appends it, and reports the sizes.  This is the persistence
    /// write path: only the returned `delta_bytes` need to be made durable.
    pub fn record(&mut self, full: &[u8], epoch: u64) -> Result<DeltaStats, SnapshotError> {
        let delta = encode_delta(&self.tip, full, self.tip_epoch, epoch)?;
        let stats = DeltaStats {
            epoch,
            full_bytes: full.len(),
            delta_bytes: delta.len(),
        };
        self.append_delta(delta)?;
        Ok(stats)
    }

    /// Appends a delta produced elsewhere (e.g. read back from a persistence log),
    /// validating algorithm identity, ordering, and base identity before advancing
    /// the tip.
    pub fn append_delta(&mut self, delta: Vec<u8>) -> Result<(), SnapshotError> {
        let info = peek_delta(&delta)?;
        if info.algorithm != self.algorithm {
            return Err(SnapshotError::WrongAlgorithm {
                expected: self.algorithm.clone(),
                found: info.algorithm,
            });
        }
        if info.base_epoch != self.tip_epoch {
            return Err(SnapshotError::OutOfOrderDelta {
                expected: self.tip_epoch,
                found: info.base_epoch,
            });
        }
        self.tip = apply_delta(&self.tip, &delta)?;
        self.tip_epoch = info.epoch;
        self.deltas.push((info.epoch, delta));
        Ok(())
    }

    /// The reconstructed full checkpoint at the tip of the chain.
    pub fn tip_bytes(&self) -> &[u8] {
        &self.tip
    }

    /// Restores a summary from the tip of the chain.
    pub fn restore<A: Snapshot>(&self) -> Result<A, SnapshotError> {
        A::restore(&self.tip)
    }

    /// Time travel: the full checkpoint as of `epoch` — the latest checkpoint in the
    /// chain taken at-or-before `epoch`, reconstructed by replaying deltas from the
    /// base.  Asking for an epoch before the base fails with
    /// [`SnapshotError::MissingBase`] (that history was compacted away).  Returns the
    /// bytes and the epoch of the checkpoint actually used.
    pub fn bytes_at(&self, epoch: u64) -> Result<(Vec<u8>, u64), SnapshotError> {
        if epoch < self.base_epoch {
            return Err(SnapshotError::MissingBase);
        }
        let mut bytes = self.base.clone();
        let mut at = self.base_epoch;
        for (delta_epoch, delta) in &self.deltas {
            if *delta_epoch > epoch {
                break;
            }
            bytes = apply_delta(&bytes, delta)?;
            at = *delta_epoch;
        }
        Ok((bytes, at))
    }

    /// Time travel: restores the summary as it was at `epoch` (see
    /// [`CheckpointChain::bytes_at`] for nearest-checkpoint semantics).  Returns the
    /// instance and the epoch of the checkpoint it was restored from.
    pub fn restore_at<A: Snapshot>(&self, epoch: u64) -> Result<(A, u64), SnapshotError> {
        let (bytes, at) = self.bytes_at(epoch)?;
        Ok((A::restore(&bytes)?, at))
    }

    /// Folds the chain into a fresh base at the tip: the reconstruction and its epoch
    /// become the new base and the deltas are dropped.  History before the tip is no
    /// longer reachable ([`CheckpointChain::bytes_at`] of earlier epochs then fails),
    /// which is the intended trade: a compacted chain costs one full checkpoint of
    /// storage and zero replay work.
    pub fn compact(&mut self) {
        self.base = self.tip.clone();
        self.base_epoch = self.tip_epoch;
        self.deltas.clear();
    }

    /// Total bytes held in deltas (the incremental persistence cost since the base).
    pub fn delta_bytes(&self) -> usize {
        self.deltas.iter().map(|(_, d)| d.len()).sum()
    }

    /// Total bytes a durable copy of the chain occupies (base plus deltas).
    pub fn total_bytes(&self) -> usize {
        self.base.len() + self.delta_bytes()
    }

    /// The epochs at which checkpoints exist in the chain (base first).
    pub fn epochs(&self) -> Vec<u64> {
        let mut out = vec![self.base_epoch];
        out.extend(self.deltas.iter().map(|(e, _)| *e));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotWriter;

    fn checkpoint_with(algorithm: &str, payload: &[u64]) -> Vec<u8> {
        let mut w = SnapshotWriter::new(algorithm);
        for &v in payload {
            w.u64(v);
        }
        w.finish()
    }

    #[test]
    fn delta_round_trips_sparse_changes() {
        let payload: Vec<u64> = (0..64).collect();
        let base = checkpoint_with("unit", &payload);
        let mut new_payload = payload.clone();
        new_payload[2] = 99;
        new_payload[46] = 100;
        let new = checkpoint_with("unit", &new_payload);

        let delta = encode_delta(&base, &new, 10, 20).unwrap();
        assert!(delta.len() < new.len(), "two changed words must diff small");
        let info = peek_delta(&delta).unwrap();
        assert_eq!(info.algorithm, "unit");
        assert_eq!(info.base_epoch, 10);
        assert_eq!(info.epoch, 20);
        assert_eq!(apply_delta(&base, &delta).unwrap(), new);
    }

    #[test]
    fn delta_handles_growth_shrink_and_unaligned_lengths() {
        // Checkpoint lengths are not multiples of 8 (the id string unaligns them),
        // so the padded-word view and clipping are load-bearing here.
        let shapes: [(&[u64], &[u64]); 4] = [
            (&[1, 2], &[1, 2, 3, 4]), // grow
            (&[1, 2, 3, 4], &[9]),    // shrink
            (&[], &[7]),              // from empty payload
            (&[5, 5, 5], &[5, 5, 5]), // identical
        ];
        for (a, b) in shapes {
            let base = checkpoint_with("odd", a);
            let new = checkpoint_with("odd", b);
            let delta = encode_delta(&base, &new, 0, 1).unwrap();
            assert_eq!(apply_delta(&base, &delta).unwrap(), new);
            assert!(delta.len() <= new.len() + DELTA_OVERHEAD + "odd".len());
        }
    }

    #[test]
    fn sparse_shrink_with_nonzero_trailing_base_bytes_round_trips() {
        // Regression: a shrinking checkpoint whose trailing base bytes are nonzero
        // and whose diff is otherwise sparse selects runs mode (not the embedded
        // fallback).  The encoder used to emit runs for the truncated trailing
        // words — past the word count apply_delta accepts — so encode succeeded
        // but apply failed with Corrupt("delta run out of bounds").
        let base = checkpoint_with("unit", &vec![u64::MAX; 200]);
        let new = checkpoint_with("unit", &vec![u64::MAX; 199]);
        let delta = encode_delta(&base, &new, 0, 1).unwrap();
        assert!(
            delta.len() < new.len(),
            "sparse shrink must stay in runs mode for this regression to bite"
        );
        assert_eq!(apply_delta(&base, &delta).unwrap(), new);

        // Same shape through the chain API that the F12 runner uses.
        let mut chain = CheckpointChain::new(base, 0).unwrap();
        let stats = chain.record(&new, 1).unwrap();
        assert_eq!(chain.tip_bytes(), &new[..]);
        assert!(stats.delta_bytes < stats.full_bytes);
    }

    #[test]
    fn dense_changes_fall_back_to_embedded_payload() {
        let base = checkpoint_with("unit", &(0..64).collect::<Vec<_>>());
        let new = checkpoint_with("unit", &(100..164).collect::<Vec<_>>());
        let delta = encode_delta(&base, &new, 0, 5).unwrap();
        assert!(delta.len() <= new.len() + DELTA_OVERHEAD + "unit".len());
        assert_eq!(apply_delta(&base, &delta).unwrap(), new);
    }

    #[test]
    fn wrong_base_is_a_typed_missing_base_error() {
        let base = checkpoint_with("unit", &[1, 2, 3]);
        let new = checkpoint_with("unit", &[1, 9, 3]);
        let delta = encode_delta(&base, &new, 0, 1).unwrap();
        // Wrong length.
        let short = checkpoint_with("unit", &[1, 2]);
        assert_eq!(
            apply_delta(&short, &delta).unwrap_err(),
            SnapshotError::MissingBase
        );
        // Right length, wrong content: the checksum catches it.
        let sibling = checkpoint_with("unit", &[8, 2, 3]);
        assert_eq!(
            apply_delta(&sibling, &delta).unwrap_err(),
            SnapshotError::MissingBase
        );
    }

    #[test]
    fn mismatched_algorithms_are_rejected_at_encode_time() {
        let a = checkpoint_with("alpha", &[1]);
        let b = checkpoint_with("beta", &[1]);
        assert!(matches!(
            encode_delta(&a, &b, 0, 1),
            Err(SnapshotError::WrongAlgorithm { .. })
        ));
    }

    #[test]
    fn backwards_epochs_are_rejected() {
        let base = checkpoint_with("unit", &[1]);
        let new = checkpoint_with("unit", &[2]);
        assert!(matches!(
            encode_delta(&base, &new, 5, 4),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn every_truncation_of_a_delta_errors_instead_of_panicking() {
        let base = checkpoint_with("unit", &[1, 2, 3, 4]);
        let new = checkpoint_with("unit", &[1, 9, 3, 8]);
        let delta = encode_delta(&base, &new, 3, 7).unwrap();
        for cut in 0..delta.len() {
            assert!(
                apply_delta(&base, &delta[..cut]).is_err(),
                "truncation at {cut} unexpectedly applied"
            );
        }
        // Flipped magic / future version.
        let mut bad = delta.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            apply_delta(&base, &bad).unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut future = delta.clone();
        future[4] = 0xFE;
        assert!(matches!(
            apply_delta(&base, &future).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
        // Trailing garbage.
        let mut long = delta.clone();
        long.push(0);
        assert!(matches!(
            apply_delta(&base, &long).unwrap_err(),
            SnapshotError::TrailingBytes(1)
        ));
    }

    #[test]
    fn chain_replays_orders_and_time_travels() {
        let v0 = checkpoint_with("unit", &[0, 0, 0, 0]);
        let v1 = checkpoint_with("unit", &[1, 0, 0, 0]);
        let v2 = checkpoint_with("unit", &[1, 2, 0, 0]);
        let v3 = checkpoint_with("unit", &[1, 2, 3, 0]);

        let mut chain = CheckpointChain::new(v0.clone(), 0).unwrap();
        chain.record(&v1, 10).unwrap();
        chain.record(&v2, 20).unwrap();
        chain.record(&v3, 30).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.tip_bytes(), &v3[..]);
        assert_eq!(chain.tip_epoch(), 30);
        assert_eq!(chain.epochs(), vec![0, 10, 20, 30]);

        // Nearest-checkpoint-at-or-before semantics.
        assert_eq!(chain.bytes_at(0).unwrap(), (v0.clone(), 0));
        assert_eq!(chain.bytes_at(9).unwrap(), (v0.clone(), 0));
        assert_eq!(chain.bytes_at(10).unwrap(), (v1.clone(), 10));
        assert_eq!(chain.bytes_at(25).unwrap(), (v2.clone(), 20));
        assert_eq!(chain.bytes_at(u64::MAX).unwrap(), (v3.clone(), 30));

        // Out-of-order append: a delta based on an epoch that is not the tip.
        let stale = encode_delta(&v1, &v2, 10, 20).unwrap();
        assert_eq!(
            chain.append_delta(stale).unwrap_err(),
            SnapshotError::OutOfOrderDelta {
                expected: 30,
                found: 10
            }
        );

        // Compaction folds to the tip and forgets earlier history.
        chain.compact();
        assert!(chain.is_empty());
        assert_eq!(chain.base_epoch(), 30);
        assert_eq!(chain.tip_bytes(), &v3[..]);
        assert_eq!(chain.bytes_at(20).unwrap_err(), SnapshotError::MissingBase);
        assert_eq!(chain.bytes_at(30).unwrap(), (v3, 30));
    }

    #[test]
    fn chain_rejects_foreign_algorithms() {
        let mut chain = CheckpointChain::new(checkpoint_with("alpha", &[1]), 0).unwrap();
        assert_eq!(chain.algorithm(), "alpha");
        let foreign = encode_delta(
            &checkpoint_with("beta", &[1]),
            &checkpoint_with("beta", &[2]),
            0,
            1,
        )
        .unwrap();
        assert!(matches!(
            chain.append_delta(foreign),
            Err(SnapshotError::WrongAlgorithm { .. })
        ));
    }

    /// The persisted parts of a 3-checkpoint chain: base bytes/epoch plus the two
    /// delta byte strings, and the intermediate full checkpoints for oracles.
    fn persisted_chain() -> (Vec<u8>, Vec<Vec<u8>>, Vec<Vec<u8>>) {
        let v0 = checkpoint_with("unit", &[0, 0, 0, 0]);
        let v1 = checkpoint_with("unit", &[1, 0, 7, 0]);
        let v2 = checkpoint_with("unit", &[1, 2, 7, 9]);
        let mut chain = CheckpointChain::new(v0.clone(), 0).unwrap();
        chain.record(&v1, 10).unwrap();
        chain.record(&v2, 20).unwrap();
        let deltas: Vec<Vec<u8>> = chain.deltas.iter().map(|(_, d)| d.clone()).collect();
        (v0, deltas, vec![v1, v2])
    }

    #[test]
    fn recover_applies_a_clean_log_fully() {
        let (base, deltas, fulls) = persisted_chain();
        let (chain, report) = CheckpointChain::recover(base, 0, deltas).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.applied, 2);
        assert_eq!(report.tip_epoch, 20);
        assert_eq!(chain.tip_bytes(), &fulls[1][..]);
        assert_eq!(chain.bytes_at(10).unwrap(), (fulls[0].clone(), 10));
    }

    #[test]
    fn recover_falls_back_past_every_truncation_of_the_tip() {
        let (base, deltas, fulls) = persisted_chain();
        for cut in 0..deltas[1].len() {
            let log = vec![deltas[0].clone(), deltas[1][..cut].to_vec()];
            let (chain, report) =
                CheckpointChain::recover(base.clone(), 0, log).expect("base is intact");
            assert_eq!(report.applied, 1, "cut at {cut}");
            assert_eq!(report.tip_epoch, 10, "cut at {cut}");
            assert_eq!(
                chain.tip_bytes(),
                &fulls[0][..],
                "cut at {cut}: tip must be the pre-corruption checkpoint"
            );
            assert_eq!(report.discarded.len(), 1, "cut at {cut}");
            let discarded = &report.discarded[0];
            assert_eq!(discarded.index, 1, "cut at {cut}");
            assert!(
                discarded.error != SnapshotError::BadMagic || cut < 4,
                "cut at {cut}: full magic present must not read as BadMagic"
            );
        }
    }

    #[test]
    fn recover_falls_back_past_a_bit_flipped_tip() {
        let (base, mut deltas, fulls) = persisted_chain();
        // Flip one payload byte near the end: the header parses, the checksum
        // catches the damage, and the typed reason says so.
        let last = deltas[1].len() - 1;
        deltas[1][last] ^= 0x40;
        let (chain, report) = CheckpointChain::recover(base, 0, deltas).unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(chain.tip_bytes(), &fulls[0][..]);
        assert_eq!(report.discarded.len(), 1);
        assert_eq!(report.discarded[0].epoch, Some(20), "header still parses");
        assert!(!report.is_clean());
        let rendered = report.to_string();
        assert!(rendered.contains("discarded #1"), "{rendered}");
    }

    #[test]
    fn recover_discards_everything_chained_past_a_corrupt_middle() {
        let (base, mut deltas, _) = persisted_chain();
        deltas[0][6] ^= 0xFF; // corrupt the *first* delta
        let (chain, report) = CheckpointChain::recover(base.clone(), 0, deltas).unwrap();
        // The second delta chains onto epoch 10, which never materialized.
        assert_eq!(report.applied, 0);
        assert_eq!(report.tip_epoch, 0);
        assert_eq!(chain.tip_bytes(), &base[..]);
        assert_eq!(report.discarded.len(), 2);
        assert_eq!(
            report.discarded[1].error,
            SnapshotError::OutOfOrderDelta {
                expected: 0,
                found: 10
            }
        );
    }

    #[test]
    fn recover_heals_a_torn_write_that_was_retried() {
        let (base, deltas, fulls) = persisted_chain();
        // The first copy of delta 0 is torn mid-write; the retried copy landed
        // intact right after it.  Recovery discards the torn copy and applies the
        // retry — no history lost.
        let log = vec![
            deltas[0][..deltas[0].len() / 2].to_vec(),
            deltas[0].clone(),
            deltas[1].clone(),
        ];
        let (chain, report) = CheckpointChain::recover(base, 0, log).unwrap();
        assert_eq!(report.applied, 2);
        assert_eq!(report.tip_epoch, 20);
        assert_eq!(chain.tip_bytes(), &fulls[1][..]);
        assert_eq!(report.discarded.len(), 1);
        assert_eq!(report.discarded[0].index, 0);
    }

    #[test]
    fn recover_rejects_a_base_torn_inside_the_header() {
        let (base, deltas, _) = persisted_chain();
        assert!(CheckpointChain::recover(base[..3].to_vec(), 0, deltas).is_err());
    }

    #[test]
    fn recover_applies_nothing_onto_a_base_torn_inside_the_payload() {
        // A tear past the header parses as a (shorter) checkpoint, so the chain
        // layer cannot reject it outright — but every delta was encoded against
        // the intact base, so each one fails its length/checksum pairing and the
        // report shows an empty prefix.  Callers treat `applied == 0` with a
        // non-empty discard list as "restore from the tip and let the algorithm's
        // own total parsing have the final word".
        let (base, deltas, _) = persisted_chain();
        let torn = base[..base.len() / 2].to_vec();
        let (chain, report) = CheckpointChain::recover(torn.clone(), 0, deltas).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(chain.tip_bytes(), &torn[..]);
        assert_eq!(report.discarded.len(), 2);
        assert_eq!(report.discarded[0].error, SnapshotError::MissingBase);
    }

    #[test]
    fn chain_accounts_delta_and_total_bytes() {
        let v0 = checkpoint_with("unit", &[0; 32]);
        let mut v1_payload = [0u64; 32];
        v1_payload[7] = 1;
        let v1 = checkpoint_with("unit", &v1_payload);
        let mut chain = CheckpointChain::new(v0.clone(), 0).unwrap();
        let stats = chain.record(&v1, 1).unwrap();
        assert_eq!(stats.full_bytes, v1.len());
        assert!(stats.delta_bytes < stats.full_bytes);
        assert_eq!(chain.delta_bytes(), stats.delta_bytes);
        assert_eq!(chain.total_bytes(), v0.len() + stats.delta_bytes);
    }
}
