//! Immutable snapshots of a [`crate::StateTracker`]'s counters.

use std::fmt;

/// A snapshot of every counter maintained by a [`crate::StateTracker`].
///
/// Reports are plain data: they can be compared, aggregated across repetitions, and fed
/// to the NVM cost model ([`crate::nvm::NvmReport::from_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateReport {
    /// Number of stream updates in which at least one tracked word changed
    /// (the paper's definition of the number of internal state changes).
    pub state_changes: u64,
    /// Number of individual word writes that changed the stored value.
    pub word_writes: u64,
    /// Number of word writes whose new value equalled the old value (these cost a read
    /// in a read-before-write implementation but never a state change).
    pub redundant_writes: u64,
    /// Number of word reads.
    pub reads: u64,
    /// Number of epochs (stream updates) processed.
    pub epochs: u64,
    /// Words of tracked memory currently allocated.
    pub words_current: usize,
    /// Peak words of tracked memory allocated at any point.
    pub words_peak: usize,
    /// Maximum number of writes to any single tracked word (only with address tracking).
    pub max_cell_writes: Option<u64>,
    /// Number of addressable words observed (only with address tracking).
    pub tracked_cells: Option<usize>,
    /// Total writes recorded across all addresses (only with address tracking).
    pub total_addr_writes: Option<u64>,
}

impl StateReport {
    /// Peak space usage in bits, assuming 64-bit words.
    pub fn bits_peak(&self) -> usize {
        self.words_peak * 64
    }

    /// Fraction of stream updates that changed the state (`state_changes / epochs`).
    ///
    /// Classic streaming algorithms (Misra-Gries, CountMin, …) have a fraction close to
    /// 1; the paper's algorithms have a fraction that vanishes as `n^{-1/p}`.
    pub fn change_fraction(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.state_changes as f64 / self.epochs as f64
        }
    }

    /// Writes per update that actually modified memory (`word_writes / epochs`).
    pub fn writes_per_update(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            self.word_writes as f64 / self.epochs as f64
        }
    }

    /// Component-wise sum of two reports (useful for aggregating algorithm ensembles
    /// that use several trackers).
    pub fn merged(&self, other: &StateReport) -> StateReport {
        fn add_opt<T: std::ops::Add<Output = T>>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x + y),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            }
        }
        StateReport {
            state_changes: self.state_changes + other.state_changes,
            word_writes: self.word_writes + other.word_writes,
            redundant_writes: self.redundant_writes + other.redundant_writes,
            reads: self.reads + other.reads,
            epochs: self.epochs.max(other.epochs),
            words_current: self.words_current + other.words_current,
            words_peak: self.words_peak + other.words_peak,
            max_cell_writes: match (self.max_cell_writes, other.max_cell_writes) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (a, b) => a.or(b),
            },
            tracked_cells: add_opt(self.tracked_cells, other.tracked_cells),
            total_addr_writes: add_opt(self.total_addr_writes, other.total_addr_writes),
        }
    }
}

impl StateReport {
    /// Combination of reports from *sharded* runs over disjoint substreams.
    ///
    /// Unlike [`StateReport::merged`] (which models several trackers observing the
    /// *same* stream and therefore keeps the maximum epoch count), sharding splits one
    /// stream across independent trackers, so epochs — like state changes, writes, and
    /// space — are additive: the combined report describes the total accounting cost of
    /// processing the whole stream across all shards.
    pub fn sharded(&self, other: &StateReport) -> StateReport {
        StateReport {
            epochs: self.epochs + other.epochs,
            ..self.merged(other)
        }
    }
}

impl fmt::Display for StateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "state_changes={} word_writes={} reads={} epochs={} words_peak={} change_fraction={:.4}",
            self.state_changes,
            self.word_writes,
            self.reads,
            self.epochs,
            self.words_peak,
            self.change_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateReport {
        StateReport {
            state_changes: 10,
            word_writes: 25,
            redundant_writes: 5,
            reads: 100,
            epochs: 40,
            words_current: 8,
            words_peak: 16,
            max_cell_writes: Some(7),
            tracked_cells: Some(16),
            total_addr_writes: Some(25),
        }
    }

    #[test]
    fn change_fraction_and_writes_per_update() {
        let r = sample();
        assert!((r.change_fraction() - 0.25).abs() < 1e-12);
        assert!((r.writes_per_update() - 0.625).abs() < 1e-12);
        assert_eq!(StateReport::default().change_fraction(), 0.0);
        assert_eq!(StateReport::default().writes_per_update(), 0.0);
    }

    #[test]
    fn bits_peak_is_words_times_64() {
        assert_eq!(sample().bits_peak(), 16 * 64);
    }

    #[test]
    fn merged_sums_counts_and_maxes_wear() {
        let a = sample();
        let mut b = sample();
        b.max_cell_writes = Some(3);
        b.epochs = 50;
        let m = a.merged(&b);
        assert_eq!(m.state_changes, 20);
        assert_eq!(m.word_writes, 50);
        assert_eq!(m.words_peak, 32);
        assert_eq!(m.epochs, 50, "epochs of a shared stream are not additive");
        assert_eq!(m.max_cell_writes, Some(7));
        assert_eq!(m.tracked_cells, Some(32));
    }

    #[test]
    fn sharded_sums_epochs() {
        let a = sample();
        let mut b = sample();
        b.epochs = 50;
        let s = a.sharded(&b);
        assert_eq!(s.epochs, 90, "disjoint substream epochs are additive");
        assert_eq!(s.state_changes, 20);
        assert_eq!(s.words_peak, 32, "shards coexist, so peaks add");
    }

    #[test]
    fn merged_handles_missing_address_tracking() {
        let a = sample();
        let b = StateReport {
            max_cell_writes: None,
            tracked_cells: None,
            total_addr_writes: None,
            ..sample()
        };
        let m = a.merged(&b);
        assert_eq!(m.max_cell_writes, Some(7));
        assert_eq!(m.tracked_cells, Some(16));
    }

    #[test]
    fn display_is_stable() {
        let s = sample().to_string();
        assert!(s.contains("state_changes=10"));
        assert!(s.contains("change_fraction=0.2500"));
    }
}
