//! Versioned binary checkpoints of summary state and tracker accounting.
//!
//! The paper's central object — a summary whose state changes are scarce — is exactly
//! what makes checkpoint/restore cheap: the bytes that must be persisted are the few
//! words the algorithm actually wrote.  This module provides the wire format shared by
//! every [`Snapshot`](crate::traits::Snapshot) implementation and by the `fsc-engine`
//! shard checkpoints:
//!
//! * a fixed header — magic `FSCS`, a format version, and the algorithm id — so stale
//!   or foreign bytes are rejected with a typed error instead of a panic or a
//!   misinterpreted payload;
//! * [`SnapshotWriter`] / [`SnapshotReader`] — length-checked little-endian
//!   serialization helpers (hand-rolled: the workspace is offline and carries no
//!   serde).  Every reader method returns [`SnapshotError::Truncated`] instead of
//!   panicking on short input, and length prefixes are validated against the remaining
//!   byte count before any allocation, so corrupt input cannot trigger an OOM;
//! * [`TrackerState`] — the complete counter state of a tracker backend (including the
//!   per-address wear table when present), exported via
//!   [`TrackerBackend::export_state`](crate::backend::TrackerBackend::export_state) and
//!   re-imported on restore so that `restore(checkpoint(a))` reproduces not just the
//!   answers but the full [`crate::StateReport`] and wear accounting.

use std::fmt;

use crate::backend::TrackerKind;
use crate::report::StateReport;

/// Leading magic of every checkpoint (`FSCS` = Few-State-Changes Snapshot).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"FSCS";

/// Current format version.  Bumped on any incompatible layout change; readers reject
/// other versions with [`SnapshotError::UnsupportedVersion`].
pub const SNAPSHOT_VERSION: u16 = 1;

/// Typed failure of [`SnapshotReader`] / `Snapshot::restore`.
///
/// Corrupt, truncated, or mismatched input always surfaces as an `Err` of this type —
/// never a panic (pinned by the unit tests below and by `tests/snapshot_laws.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`] — not a checkpoint at all.
    BadMagic,
    /// The checkpoint was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The checkpoint belongs to a different algorithm than the one restoring it.
    WrongAlgorithm {
        /// The algorithm id the caller expected.
        expected: String,
        /// The algorithm id found in the header.
        found: String,
    },
    /// The input ended before the declared payload did.
    Truncated,
    /// A structurally valid read produced a value the algorithm cannot accept
    /// (impossible enum tag, mismatched dimension, inconsistent table size, …).
    Corrupt(&'static str),
    /// Bytes remained after the payload was fully parsed (the count is attached).
    TrailingBytes(usize),
    /// A delta checkpoint was applied to a base it was not encoded against (wrong
    /// length or content), or a time-travel query asked for an epoch before the
    /// chain's base.
    MissingBase,
    /// A delta was appended out of order: its recorded base epoch does not match the
    /// epoch of the chain's current tip.
    OutOfOrderDelta {
        /// The tip epoch the chain expected the delta to be based on.
        expected: u64,
        /// The base epoch the delta was actually encoded against.
        found: u64,
    },
    /// A structurally valid checkpoint was restored *into* a live structure whose
    /// configuration it does not match — e.g. an engine checkpoint with a different
    /// shard count, routing policy, tracker kind, or summary geometry than the
    /// engine performing the failover.  Distinct from [`SnapshotError::Corrupt`]:
    /// the bytes are fine, the *pairing* is wrong.
    ConfigMismatch {
        /// Which configuration axis mismatched (e.g. `"shard count"`).
        what: &'static str,
        /// The receiving structure's value.
        expected: String,
        /// The checkpoint's value.
        found: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot: bad magic (not a checkpoint)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot: unsupported format version {v}")
            }
            SnapshotError::WrongAlgorithm { expected, found } => {
                write!(
                    f,
                    "snapshot: expected algorithm {expected:?}, found {found:?}"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot: truncated input"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot: corrupt payload ({what})"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "snapshot: {n} trailing byte(s) after the payload")
            }
            SnapshotError::MissingBase => {
                write!(f, "snapshot: delta does not match the supplied base")
            }
            SnapshotError::OutOfOrderDelta { expected, found } => {
                write!(
                    f,
                    "snapshot: delta based on epoch {found}, chain tip is at epoch {expected}"
                )
            }
            SnapshotError::ConfigMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "snapshot: checkpoint {what} mismatch (restoring structure has \
                     {expected:?}, checkpoint has {found:?})"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Little-endian checkpoint writer.  Construction writes the versioned header.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a checkpoint for the algorithm identified by `algorithm` (a short stable
    /// id such as `"count_min"`; see `Snapshot::snapshot_id`).
    pub fn new(algorithm: &str) -> Self {
        let mut w = Self { buf: Vec::new() };
        w.buf.extend_from_slice(&SNAPSHOT_MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.str(algorithm);
        w
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (as its two's-complement `u64`).
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Appends a `usize` (as `u64`, portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact round trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte string (e.g. a nested checkpoint).
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Finishes the checkpoint and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Little-endian checkpoint reader over a byte slice.  All methods are total: short or
/// malformed input returns an error, never panics.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a checkpoint, validating magic, version, and the algorithm id against
    /// `expected_algorithm`.  Returns a reader positioned at the first payload byte.
    pub fn open(bytes: &'a [u8], expected_algorithm: &str) -> Result<Self, SnapshotError> {
        let mut r = Self { bytes, pos: 0 };
        let magic = r.take(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let found = r.string()?;
        if found != expected_algorithm {
            return Err(SnapshotError::WrongAlgorithm {
                expected: expected_algorithm.to_string(),
                found,
            });
        }
        Ok(r)
    }

    /// The algorithm id stored in a checkpoint header, without committing to restore it
    /// (used for labeling and dispatch).
    pub fn peek_algorithm(bytes: &[u8]) -> Result<String, SnapshotError> {
        let mut r = SnapshotReader { bytes, pos: 0 };
        if r.take(4)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        r.string()
    }

    /// Opens a reader with **no** header validation — the delta format
    /// ([`crate::delta`]) carries its own magic and parses the shared header fields
    /// itself.
    pub(crate) fn raw(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Crate-internal raw read of `n` bytes (the delta header parser).
    pub(crate) fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `usize`, rejecting values that do not fit the platform word.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("usize overflow"))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting tags other than 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.len_prefix(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("non-UTF-8 string"))
    }

    /// Reads a length prefix for elements of `elem_bytes` serialized bytes each,
    /// validating it against the remaining input *before* any allocation (a corrupt
    /// length cannot cause an OOM or a partial read that panics later).
    pub fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.usize()?;
        let need = len
            .checked_mul(elem_bytes.max(1))
            .ok_or(SnapshotError::Corrupt("length overflow"))?;
        if need > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    /// Reads a length-prefixed `Vec<u64>`.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let len = self.len_prefix(8)?;
        (0..len).map(|_| self.u64()).collect()
    }

    /// Reads a length-prefixed byte string (e.g. a nested checkpoint).
    pub fn byte_slice(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.len_prefix(1)?;
        self.take(len)
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes(self.bytes.len() - self.pos))
        }
    }
}

/// Writes a length-prefixed `&[u64]`.
pub fn write_u64_slice(w: &mut SnapshotWriter, values: &[u64]) {
    w.usize(values.len());
    for &v in values {
        w.u64(v);
    }
}

// ---------------------------------------------------------------------------
// TrackerState — the serializable counter state of a tracker backend.
// ---------------------------------------------------------------------------

/// The complete counter state of a tracker backend, sufficient to make a freshly
/// constructed tracker observably identical to the exported one: the same
/// [`StateReport`], the same per-address wear table, the same epoch clock, and the
/// same address-allocation cursor (so writes *after* a restore land on the same
/// tracked addresses as they would have on the original).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerState {
    /// Backend kind the state was exported from (restore builds the same kind).
    pub kind: TrackerKind,
    /// Current epoch id (number of stream updates entered).
    pub epochs: u64,
    /// Id of the last epoch counted as a state change (0 = none).
    pub last_change_epoch: u64,
    /// Paper-definition state changes.
    pub state_changes: u64,
    /// Changed word writes (0 on the lean backend).
    pub word_writes: u64,
    /// Redundant word writes (0 on the lean backend).
    pub redundant_writes: u64,
    /// Word reads (0 on the lean backend).
    pub reads: u64,
    /// Currently allocated words.
    pub words_current: usize,
    /// Peak allocated words.
    pub words_peak: usize,
    /// Next free address handed out by `alloc`.
    pub next_addr: usize,
    /// Per-address wear counts (present only with address tracking).
    pub wear: Option<Vec<u64>>,
}

impl TrackerState {
    /// The [`StateReport`] this state reproduces (what `snapshot()` returns after a
    /// faithful import).
    pub fn report(&self) -> StateReport {
        StateReport {
            state_changes: self.state_changes,
            word_writes: self.word_writes,
            redundant_writes: self.redundant_writes,
            reads: self.reads,
            epochs: self.epochs,
            words_current: self.words_current,
            words_peak: self.words_peak,
            max_cell_writes: self
                .wear
                .as_ref()
                .map(|w| w.iter().copied().max().unwrap_or(0)),
            tracked_cells: self.wear.as_ref().map(|w| w.len()),
            total_addr_writes: self.wear.as_ref().map(|w| w.iter().sum()),
        }
    }

    /// Serializes the state into a checkpoint.
    pub fn write_to(&self, w: &mut SnapshotWriter) {
        w.u8(self.kind.tag());
        w.u64(self.epochs);
        w.u64(self.last_change_epoch);
        w.u64(self.state_changes);
        w.u64(self.word_writes);
        w.u64(self.redundant_writes);
        w.u64(self.reads);
        w.usize(self.words_current);
        w.usize(self.words_peak);
        w.usize(self.next_addr);
        match &self.wear {
            Some(wear) => {
                w.bool(true);
                write_u64_slice(w, wear);
            }
            None => w.bool(false),
        }
    }

    /// Deserializes a state written by [`TrackerState::write_to`].
    pub fn read_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let kind =
            TrackerKind::from_tag(r.u8()?).ok_or(SnapshotError::Corrupt("tracker kind tag"))?;
        let state = Self {
            kind,
            epochs: r.u64()?,
            last_change_epoch: r.u64()?,
            state_changes: r.u64()?,
            word_writes: r.u64()?,
            redundant_writes: r.u64()?,
            reads: r.u64()?,
            words_current: r.usize()?,
            words_peak: r.usize()?,
            next_addr: r.usize()?,
            wear: if r.bool()? { Some(r.u64_vec()?) } else { None },
        };
        if state.wear.is_some() != (kind == TrackerKind::FullAddressTracked) {
            return Err(SnapshotError::Corrupt(
                "wear table presence vs tracker kind",
            ));
        }
        Ok(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_scalar_shape() {
        let mut w = SnapshotWriter::new("unit");
        w.u8(7);
        w.u16(65_000);
        w.u32(4_000_000_000);
        w.u64(u64::MAX);
        w.i64(-42);
        w.usize(123);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("hello");
        write_u64_slice(&mut w, &[1, 2, 3]);
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes, "unit").expect("open");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "hello");
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn header_validation_is_typed() {
        assert_eq!(
            SnapshotReader::open(b"", "x").unwrap_err(),
            SnapshotError::Truncated
        );
        assert_eq!(
            SnapshotReader::open(b"NOPE\x01\x00\x00\x00", "x").unwrap_err(),
            SnapshotError::BadMagic
        );
        let mut versioned = SNAPSHOT_MAGIC.to_vec();
        versioned.extend_from_slice(&99u16.to_le_bytes());
        assert_eq!(
            SnapshotReader::open(&versioned, "x").unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
        let bytes = SnapshotWriter::new("count_min").finish();
        match SnapshotReader::open(&bytes, "ams").unwrap_err() {
            SnapshotError::WrongAlgorithm { expected, found } => {
                assert_eq!(expected, "ams");
                assert_eq!(found, "count_min");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(SnapshotReader::peek_algorithm(&bytes).unwrap(), "count_min");
    }

    #[test]
    fn every_truncation_point_errors_instead_of_panicking() {
        let mut w = SnapshotWriter::new("unit");
        w.u64(5);
        w.str("payload");
        write_u64_slice(&mut w, &[9, 9, 9]);
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let short = &bytes[..cut];
            // Either the header or a later read must fail with a typed error.
            let outcome = SnapshotReader::open(short, "unit").and_then(|mut r| {
                r.u64()?;
                r.string()?;
                r.u64_vec()?;
                r.finish()
            });
            assert!(outcome.is_err(), "cut at {cut} unexpectedly parsed");
        }
    }

    #[test]
    fn corrupt_length_prefixes_cannot_allocate() {
        // A length prefix claiming 2^60 elements is rejected before allocation.
        let mut w = SnapshotWriter::new("unit");
        w.u64(1 << 60);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes, "unit").unwrap();
        assert_eq!(r.u64_vec().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut w = SnapshotWriter::new("unit");
        w.u64(1);
        let mut bytes = w.finish();
        bytes.push(0xAB);
        let mut r = SnapshotReader::open(&bytes, "unit").unwrap();
        r.u64().unwrap();
        assert_eq!(r.finish().unwrap_err(), SnapshotError::TrailingBytes(1));
    }

    #[test]
    fn tracker_state_round_trips_with_and_without_wear() {
        for wear in [None, Some(vec![0, 3, 1, 7])] {
            let state = TrackerState {
                kind: if wear.is_some() {
                    TrackerKind::FullAddressTracked
                } else {
                    TrackerKind::Lean
                },
                epochs: 10,
                last_change_epoch: 9,
                state_changes: 4,
                word_writes: 11,
                redundant_writes: 2,
                reads: 30,
                words_current: 5,
                words_peak: 8,
                next_addr: 12,
                wear: wear.clone(),
            };
            let mut w = SnapshotWriter::new("t");
            state.write_to(&mut w);
            let bytes = w.finish();
            let mut r = SnapshotReader::open(&bytes, "t").unwrap();
            let back = TrackerState::read_from(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, state);
            assert_eq!(back.report().epochs, 10);
            assert_eq!(
                back.report().max_cell_writes,
                wear.map(|_| 7),
                "report derives wear aggregates"
            );
        }
    }

    #[test]
    fn mismatched_wear_presence_is_corrupt() {
        let state = TrackerState {
            kind: TrackerKind::Full,
            epochs: 0,
            last_change_epoch: 0,
            state_changes: 0,
            word_writes: 0,
            redundant_writes: 0,
            reads: 0,
            words_current: 0,
            words_peak: 0,
            next_addr: 0,
            wear: Some(vec![1]),
        };
        let mut w = SnapshotWriter::new("t");
        state.write_to(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes, "t").unwrap();
        assert!(matches!(
            TrackerState::read_from(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
