//! A tracked associative map for counter tables keyed by stream items.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

use crate::tracker::StateTracker;
use crate::words_of;

/// A tracked hash map from keys to values.
///
/// Dynamic counter tables — Misra-Gries summaries, SpaceSaving tables, the per-item
/// Morris-counter table of `SampleAndHold` — are stored in `TrackedMap`s.  Every
/// insertion, removal, and value modification is charged to the owning
/// [`StateTracker`]; writes that leave the stored value unchanged are redundant and do
/// not count as state changes.
///
/// The hasher is a type parameter (defaulting to the standard library's SipHash
/// `RandomState`): key-holding hot paths hash the key on every update, and the
/// DoS-resistant default costs several times more than a deterministic multiply-xor
/// hash.  The `fsc-counters::fastmap` module provides the fast seeded hasher the
/// algorithms plug in here; nothing observable depends on iteration order, so the
/// choice of hasher never changes a recorded experiment.
///
/// Space accounting charges `words_of::<K>() + words_of::<V>() + 1` words per entry
/// (key, value, and one word of table overhead).
#[derive(Debug, Clone)]
pub struct TrackedMap<K, V, S = std::collections::hash_map::RandomState> {
    data: HashMap<K, V, S>,
    tracker: StateTracker,
    entry_words: usize,
}

impl<K: Eq + Hash + Clone, V: PartialEq + Clone, S: BuildHasher + Default> TrackedMap<K, V, S> {
    /// Creates an empty tracked map with a default-constructed hasher.
    pub fn new(tracker: &StateTracker) -> Self {
        Self::with_hasher(tracker, S::default())
    }
}

impl<K: Eq + Hash + Clone, V: PartialEq + Clone, S: BuildHasher> TrackedMap<K, V, S> {
    /// Creates an empty tracked map using `hasher` for key hashing.
    pub fn with_hasher(tracker: &StateTracker, hasher: S) -> Self {
        Self {
            data: HashMap::with_hasher(hasher),
            tracker: tracker.clone(),
            entry_words: words_of::<K>() + words_of::<V>() + 1,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Looks up `key` (charged as one read).
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.tracker.record_reads(1);
        self.data.get(key)
    }

    /// Membership test (charged as one read).
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.tracker.record_reads(1);
        self.data.contains_key(key)
    }

    /// Inserts or overwrites `key → value`.  Returns the previous value, if any.
    /// A brand-new entry or a changed value counts as a write; re-inserting an identical
    /// value is redundant.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.data.get(&key) {
            Some(old) if *old == value => {
                self.tracker.record_write(None, false);
                Some(value)
            }
            Some(_) => {
                self.tracker.record_write(None, true);
                self.data.insert(key, value)
            }
            None => {
                self.tracker.alloc(self.entry_words);
                self.tracker.record_write(None, true);
                self.data.insert(key, value)
            }
        }
    }

    /// Removes `key`, returning its value.  Removal is a state-changing write.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let out = self.data.remove(key);
        if out.is_some() {
            self.tracker.dealloc(self.entry_words);
            self.tracker.record_write(None, true);
        }
        out
    }

    /// Applies `f` to the value stored under `key`, writing back the result.
    /// Returns `true` if the key existed and the value changed.
    #[inline]
    pub fn modify(&mut self, key: &K, f: impl FnOnce(&V) -> V) -> bool {
        self.tracker.record_reads(1);
        let new = match self.data.get(key) {
            Some(v) => f(v),
            None => return false,
        };
        let changed = self.data[key] != new;
        self.tracker.record_write(None, changed);
        if changed {
            self.data.insert(key.clone(), new);
        }
        changed
    }

    /// Removes every entry for which `pred` returns `false`, charging one write per
    /// removed entry.  Returns the number of removed entries.
    pub fn retain(&mut self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        let before = self.data.len();
        let tracker = self.tracker.clone();
        let entry_words = self.entry_words;
        self.data.retain(|k, v| {
            let keep = pred(k, v);
            if !keep {
                tracker.dealloc(entry_words);
                tracker.record_write(None, true);
            }
            keep
        });
        before - self.data.len()
    }

    /// Looks up `key` without charging a read (reporting / merge bookkeeping only; the
    /// tracked analogue is [`TrackedMap::get`]).
    #[inline]
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.data.get(key)
    }

    /// Mutable lookup without any accounting — the data path of run-length batch
    /// kernels, which fold a run of identical updates into one stored mutation and
    /// charge the tracker in bulk.  The caller **must** charge the exact equivalent of
    /// the per-item [`TrackedMap::contains_key`]/[`TrackedMap::modify`] calls it skips
    /// (reads via [`StateTracker::record_reads`], epochs and writes via
    /// [`StateTracker::record_run_epochs`]); the batch-law tests pin that equivalence.
    #[inline]
    pub fn get_mut_untracked(&mut self, key: &K) -> Option<&mut V> {
        self.data.get_mut(key)
    }

    /// Inserts `key → value` without any accounting (no allocation charge, no write) —
    /// the restore path of checkpointing, which rebuilds a freshly constructed map's
    /// entries and then replaces every tracker counter via
    /// [`crate::StateTracker::import_state`].  Entry space still counts toward the
    /// tracked-words invariants through that import, and later tracked `remove`/
    /// `retain` calls release it exactly as on the original instance.
    pub fn insert_untracked(&mut self, key: K, value: V) {
        self.data.insert(key, value);
    }

    /// Untracked iteration (reporting / extraction only).
    pub fn iter_untracked(&self) -> std::collections::hash_map::Iter<'_, K, V> {
        self.data.iter()
    }

    /// Untracked key snapshot.
    pub fn keys_untracked(&self) -> Vec<K> {
        self.data.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_accounting() {
        let t = StateTracker::new();
        let mut m: TrackedMap<u64, u64> = TrackedMap::new(&t);
        t.begin_epoch();
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.len(), 2);
        assert_eq!(t.words_current(), 2 * 3);
        t.begin_epoch();
        assert_eq!(
            m.insert(1, 10),
            Some(10),
            "identical re-insert is redundant"
        );
        assert_eq!(t.state_changes(), 1);
        t.begin_epoch();
        m.insert(1, 11);
        assert_eq!(t.state_changes(), 2);
        t.begin_epoch();
        assert_eq!(m.remove(&2), Some(20));
        assert_eq!(t.words_current(), 3);
        assert_eq!(t.state_changes(), 3);
        assert_eq!(m.remove(&2), None);
    }

    #[test]
    fn modify_only_counts_changes() {
        let t = StateTracker::new();
        let mut m: TrackedMap<u64, u64> = TrackedMap::new(&t);
        m.insert(7, 0);
        t.begin_epoch();
        assert!(m.modify(&7, |v| v + 1));
        assert!(!m.modify(&7, |v| *v));
        assert!(!m.modify(&99, |v| v + 1), "missing keys are untouched");
        assert_eq!(*m.get(&7).unwrap(), 1);
        assert_eq!(t.state_changes(), 1);
    }

    #[test]
    fn retain_charges_removals() {
        let t = StateTracker::new();
        let mut m: TrackedMap<u64, u64> = TrackedMap::new(&t);
        for i in 0..10 {
            m.insert(i, i * i);
        }
        let peak = t.words_peak();
        t.begin_epoch();
        let removed = m.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(m.len(), 5);
        assert!(t.words_current() < peak);
        assert!(m.contains_key(&4));
        assert!(!m.contains_key(&5));
    }

    #[test]
    fn reads_are_charged_for_lookups() {
        let t = StateTracker::new();
        let mut m: TrackedMap<u64, u64> = TrackedMap::new(&t);
        m.insert(1, 1);
        let _ = m.get(&1);
        let _ = m.contains_key(&2);
        assert_eq!(t.snapshot().reads, 2);
        assert_eq!(m.keys_untracked(), vec![1]);
        assert_eq!(m.iter_untracked().count(), 1);
        assert_eq!(t.snapshot().reads, 2, "untracked accessors are free");
    }
}
