//! Pluggable tracker backends: exact accounting vs. near-zero-overhead counting.
//!
//! A [`crate::StateTracker`] handle dispatches every accounting event to a
//! [`TrackerBackend`].  Two implementations exist:
//!
//! * [`FullTracker`] — the exact accounting the repository has always used: per-epoch
//!   state changes, word writes, redundant writes, reads, current/peak space, and
//!   optional per-address wear counts.  Counter semantics are identical to the original
//!   single-threaded tracker, so all recorded experiment tables reproduce bit-for-bit.
//! * [`LeanTracker`] — atomic epoch/state-change counters plus space accounting only.
//!   It does **not** count word writes, redundant writes, reads, or per-cell wear
//!   (those fields of its [`StateReport`] are zero/`None`).  Use it when only answers
//!   and the state-change count are needed — e.g. sharded or throughput-critical runs.
//!
//! # Hot-path cost model
//!
//! Epoch bookkeeping is a sequential per-tracker notion — a state change is defined per
//! stream update, and sharded runs give each shard its own tracker — so the update path
//! deliberately uses **relaxed load + store** sequences instead of atomic
//! read-modify-write instructions: on one thread they are equivalent, and a plain store
//! retires in a cycle where a `lock xadd` costs tens.  The atomics exist to make the
//! handles `Send + Sync` (shareable), not to merge concurrent streams into one tracker;
//! counters incremented from several threads at once may drop increments, which is
//! outside the accounting contract (each tracker is driven by one stream at a time).
//! Allocation (cold path) keeps its RMW operations so concurrent `alloc` from clones
//! stays address-disjoint.
//!
//! Epochs follow the same philosophy in batched form: [`TrackerBackend::begin_epochs`]
//! reserves a span of epoch ids up front and [`TrackerBackend::enter_epoch`] activates
//! each id with a single relaxed store, so `process_batch` performs O(1) atomic RMWs
//! per batch (in these backends: zero) instead of one-plus per item.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::report::StateReport;
use crate::snapshot::TrackerState;
use crate::tracker::AddrRange;

/// Bumps a sequentially-driven counter with a relaxed load + store pair.
///
/// Equivalent to `fetch_add` for the single-driver contract described in the module
/// docs, but compiles to plain loads/stores on the hot path.
#[inline(always)]
fn bump(counter: &AtomicU64, n: u64) {
    counter.store(counter.load(Ordering::Relaxed) + n, Ordering::Relaxed);
}

/// Which backend a [`crate::StateTracker`] was constructed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackerKind {
    /// Exact accounting (the default; reproduces all recorded experiments).
    #[default]
    Full,
    /// Exact accounting plus per-address wear counts (analysis runs only).
    FullAddressTracked,
    /// Atomic epoch/state-change/space counters only; near-zero update cost.
    Lean,
}

impl TrackerKind {
    /// The kind's checkpoint wire tag — the single source for every serializer that
    /// stores a kind (a new kind gets a tag here, and every codec picks it up).
    pub fn tag(self) -> u8 {
        match self {
            TrackerKind::Full => 0,
            TrackerKind::FullAddressTracked => 1,
            TrackerKind::Lean => 2,
        }
    }

    /// Inverse of [`TrackerKind::tag`] (`None` for unknown tags — corrupt input).
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TrackerKind::Full),
            1 => Some(TrackerKind::FullAddressTracked),
            2 => Some(TrackerKind::Lean),
            _ => None,
        }
    }
}

/// The accounting interface a tracker handle dispatches to.
///
/// All methods take `&self`: backends are internally synchronised, which is what lets
/// tracked algorithms be `Send + Sync` without any change to algorithm code.
pub trait TrackerBackend: fmt::Debug + Send + Sync {
    /// Starts a new epoch (stream update).  At most one state change is counted per
    /// epoch regardless of how many words are modified within it.
    fn begin_epoch(&self);
    /// Reserves a span of `n` consecutive epochs and returns the id of the first.
    ///
    /// The caller must activate each epoch in turn with [`TrackerBackend::enter_epoch`]
    /// (ids `first..first + n`), exactly one activation per stream update, before
    /// reserving another span or calling [`TrackerBackend::begin_epoch`].  The epoch
    /// count observed through [`TrackerBackend::epochs`] advances per *activation*, so
    /// mid-batch readers (e.g. age-bucketed maintenance) see the same values as with
    /// per-item [`TrackerBackend::begin_epoch`] calls.  The default implementation
    /// supports backends that only implement `begin_epoch`.
    fn begin_epochs(&self, n: u64) -> u64 {
        let _ = n;
        self.epochs() + 1
    }
    /// Makes reserved epoch `id` the current epoch (see
    /// [`TrackerBackend::begin_epochs`]).  The default implementation falls back to
    /// [`TrackerBackend::begin_epoch`] for backends without span support.
    fn enter_epoch(&self, id: u64) {
        let _ = id;
        self.begin_epoch();
    }
    /// Allocates `words` words of tracked memory and charges the space accounts.
    fn alloc(&self, words: usize) -> AddrRange;
    /// Releases `words` words of tracked memory (peak usage is unaffected).
    fn dealloc(&self, words: usize);
    /// Records a write to one word; `changed` must be `true` iff the stored value
    /// actually differs from the previous one.
    fn record_write(&self, addr: Option<usize>, changed: bool);
    /// Records `n` changed writes at the consecutive addresses `start..start + n`
    /// (`None` for anonymous words), all within the current epoch — the bulk
    /// equivalent of `n` calls to [`TrackerBackend::record_write`] with
    /// `changed = true`.  Used by batch kernels whose per-item writes land on a
    /// contiguous address run (e.g. an AMS sketch touching every counter).
    ///
    /// The default implementation is the per-word loop; backends may override it with
    /// a counter-equivalent constant-time version.
    fn record_changed_run(&self, start: Option<usize>, n: u64) {
        for i in 0..n {
            self.record_write(start.map(|s| s + i as usize), true);
        }
    }
    /// Records one changed write at each of `addrs`, all within the current epoch —
    /// the bulk equivalent of per-address [`TrackerBackend::record_write`] calls with
    /// `changed = true`.  Used by batch kernels with scattered per-item writes (e.g.
    /// one counter per CountMin row).
    fn record_changed_at(&self, addrs: &[usize]) {
        for &a in addrs {
            self.record_write(Some(a), true);
        }
    }
    /// Activates each reserved epoch `first + i` for `i in 0..addrs.len() / writes`
    /// in turn and records, within it, one changed write at each address of
    /// `addrs[i * writes..(i + 1) * writes]` — the bulk equivalent of the per-item
    /// scatter-accounting loop
    /// `for each item: enter_epoch(first + i); record_changed_at(item addrs)`
    /// used by the lane-packed batch kernels (`writes` probes per item, every probe
    /// a changed write, as in CountMin/CountSketch).  `addrs.len()` must be a
    /// multiple of `writes`, and the caller must have reserved the span via
    /// [`TrackerBackend::begin_epochs`] without entering any of its epochs.
    ///
    /// The default implementation is that per-item loop; backends may override it
    /// with a counter-equivalent constant-time version (the full tracker does when
    /// it is not recording per-address wear).
    fn record_scatter_epochs(&self, first: u64, writes: usize, addrs: &[usize]) {
        if writes == 0 {
            return;
        }
        debug_assert_eq!(addrs.len() % writes, 0);
        for (i, chunk) in addrs.chunks_exact(writes).enumerate() {
            self.enter_epoch(first + i as u64);
            self.record_changed_at(chunk);
        }
    }
    /// Activates each reserved epoch `first..first + n` in turn and records, within
    /// each, `writes` changed word writes — at the addresses `addrs` when provided
    /// (then `writes` must equal `addrs.len()`), anonymously otherwise.  This is the
    /// bulk equivalent of the per-item loop
    /// `for id in first..first + n { enter_epoch(id); for each write: record_write(_, true) }`
    /// and is what lets a run-length kernel process a run of identical updates with
    /// O(1) accounting calls.  The caller must have reserved the span via
    /// [`TrackerBackend::begin_epochs`] and must not have entered any of its epochs.
    fn record_run_epochs(&self, first: u64, n: u64, writes: u64, addrs: Option<&[usize]>) {
        debug_assert!(addrs.is_none_or(|a| a.len() as u64 == writes));
        for id in first..first + n {
            self.enter_epoch(id);
            match addrs {
                Some(addrs) => {
                    for &a in addrs {
                        self.record_write(Some(a), true);
                    }
                }
                None => {
                    for _ in 0..writes {
                        self.record_write(None, true);
                    }
                }
            }
        }
    }
    /// Records `n` word reads (a no-op on backends that do not count reads).
    fn record_reads(&self, n: u64);
    /// Number of state changes so far (paper definition).
    fn state_changes(&self) -> u64;
    /// A monotone **staleness clock**: a counter that never decreases over the
    /// lifetime of this backend instance and is guaranteed to have advanced, by the
    /// next epoch boundary, after any mutation that could change an observable
    /// answer — a changed word write, or an [`TrackerBackend::import_state`] (which
    /// replaces the whole state and therefore *taints* the generation by at least
    /// one, mirroring the dirty-journal taint on restore).
    ///
    /// **Conservative contract.**  The generation may advance *at most once per
    /// epoch* (it is allowed to coalesce all changed writes of one epoch into a
    /// single tick, as [`LeanTracker`] does), so two generation reads are comparable
    /// only when both were taken at epoch boundaries — between stream updates, never
    /// mid-update.  Under that discipline, `generation unchanged` implies `no state
    /// change happened in between`, which is what lets a cached serving view skip
    /// its rebuild.  The converse direction is deliberately weak: the generation may
    /// advance without an observable answer changing (e.g. an import that restored
    /// identical state still ticks), which costs a spurious rebuild, never a stale
    /// answer.
    ///
    /// The default implementation returns [`TrackerBackend::state_changes`], which
    /// satisfies the contract for backends that never import state; backends that
    /// support `import_state` must override it (an import can rewind the
    /// state-change counter, which would move this clock backwards).
    fn state_change_generation(&self) -> u64 {
        self.state_changes()
    }
    /// Number of epochs (stream updates) started so far.
    fn epochs(&self) -> u64;
    /// Current number of allocated words.
    fn words_current(&self) -> usize;
    /// Peak number of allocated words.
    fn words_peak(&self) -> usize;
    /// Immutable snapshot of every counter the backend maintains.
    fn snapshot(&self) -> StateReport;
    /// Per-address write counts, if the backend records them.
    fn address_writes(&self) -> Option<Vec<u64>>;
    /// The backend's kind tag.
    fn kind(&self) -> TrackerKind;
    /// Exports the complete counter state for checkpointing (see
    /// [`TrackerState`]): every aggregate counter, the epoch clock including the
    /// last-state-change epoch, the address-allocation cursor, and the wear table
    /// when present.  [`TrackerBackend::import_state`] on a freshly constructed
    /// backend of the same kind must make it observably identical.
    fn export_state(&self) -> TrackerState;
    /// Overwrites the backend's counters with a previously exported state — the
    /// restore half of checkpointing.  Called on a backend of the same kind as the
    /// exporting one, after the restoring algorithm has rebuilt its containers (any
    /// accounting those rebuilds charged is deliberately clobbered here).
    fn import_state(&self, state: &TrackerState);
    /// The addresses whose stored value changed in any epoch **after** `epoch`, if
    /// the backend can enumerate them *soundly* — the dirty-address journal behind
    /// delta checkpointing (see [`crate::delta`]).
    ///
    /// `None` is the **conservative fallback** meaning "assume everything is dirty":
    /// returned by backends without per-address accounting ([`LeanTracker`], plain
    /// [`FullTracker`]), and by the address-tracked backend whenever an *anonymous*
    /// write (`record_write(None, true)` — e.g. any [`crate::TrackedMap`] mutation)
    /// happened after `epoch`, since such writes cannot be attributed to an address.
    /// `Some(addrs)` is a completeness guarantee: every tracked word not listed holds
    /// the same value it held at the end of epoch `epoch`.  A restored backend
    /// ([`TrackerBackend::import_state`]) also answers `None` for any `epoch` before
    /// its import point — the journal does not survive a checkpoint round trip.
    fn dirty_since(&self, epoch: u64) -> Option<Vec<usize>> {
        let _ = epoch;
        None
    }
    /// Drains the journal: the addresses dirtied since the previous drain (or since
    /// construction), advancing the drain mark to the current epoch.  Same `None`
    /// semantics as [`TrackerBackend::dirty_since`]; a `None` drain also advances the
    /// mark, since the caller's response to `None` (persist everything) covers all
    /// history up to the current epoch.
    ///
    /// **Must be called at an epoch boundary** — between updates, i.e. not between a
    /// `begin_epoch` and the writes of that epoch.  The drain claims all history up
    /// to and including the current epoch, so a write stamped with the current epoch
    /// that lands *after* a mid-epoch drain is treated as already reported and never
    /// appears in a later drain.  All in-tree callers (checkpoint paths) drain only
    /// after an update completes, where this cannot happen.
    fn drain_dirty(&self) -> Option<Vec<usize>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shared epoch machinery.
// ---------------------------------------------------------------------------

/// The epoch state shared by both backends: the id of the current epoch (0 = no epoch
/// opened yet, i.e. data-structure initialisation) and the id of the last epoch that
/// was counted as a state change.
///
/// Writes performed before the first epoch are counted as word writes but not as state
/// changes, matching the paper's convention that state changes are counted per stream
/// update.
#[derive(Debug, Default)]
struct EpochState {
    /// Id of the currently active epoch; equals the number of epochs entered so far.
    current: AtomicU64,
    /// Id of the last epoch already counted as a state change (0 = none).
    last_change: AtomicU64,
}

impl EpochState {
    #[inline(always)]
    fn begin(&self) {
        self.enter(self.current.load(Ordering::Relaxed) + 1);
    }

    #[inline(always)]
    fn reserve(&self, _n: u64) -> u64 {
        self.current.load(Ordering::Relaxed) + 1
    }

    #[inline(always)]
    fn enter(&self, id: u64) {
        self.current.store(id, Ordering::Relaxed);
    }

    #[inline(always)]
    fn epochs(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Returns `true` iff a changed write in the current epoch is that epoch's first —
    /// i.e. the write that makes the epoch a state change.  Pre-epoch writes (id 0)
    /// never count.
    #[inline(always)]
    fn claims_state_change(&self) -> bool {
        let e = self.current.load(Ordering::Relaxed);
        if e != 0 && self.last_change.load(Ordering::Relaxed) != e {
            self.last_change.store(e, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Id of the last epoch counted as a state change (0 = none) — exported by
    /// checkpoints so a restored tracker's next claim decision is identical.
    #[inline(always)]
    fn last_change(&self) -> u64 {
        self.last_change.load(Ordering::Relaxed)
    }

    /// Overwrites the clock with checkpointed values (restore path).
    #[inline(always)]
    fn restore(&self, current: u64, last_change: u64) {
        self.current.store(current, Ordering::Relaxed);
        self.last_change.store(last_change, Ordering::Relaxed);
    }

    /// Enters the fresh epochs `first..first + n` (n ≥ 1) and marks every one of them
    /// as claimed, leaving `current`/`last_change` exactly where the per-item loop
    /// (enter, claim, enter, claim, …) would leave them.
    #[inline(always)]
    fn enter_claimed_run(&self, first: u64, n: u64) {
        debug_assert!(first >= 1 && n >= 1);
        let last = first + n - 1;
        self.current.store(last, Ordering::Relaxed);
        self.last_change.store(last, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// FullTracker — exact accounting (the original tracker semantics).
// ---------------------------------------------------------------------------

/// Exact accounting backend: every counter of the original tracker, held in relaxed
/// atomics so the handle is `Send + Sync` without paying for a lock on the update path.
///
/// State-change semantics, initial-write conventions, address assignment, and every
/// counter are unchanged from the pre-backend tracker, so experiment tables recorded
/// against it reproduce exactly.  Only the optional per-address wear table sits behind
/// a mutex, and it is touched only when address tracking was requested at construction.
#[derive(Debug, Default)]
pub struct FullTracker {
    /// Paper-definition state changes: number of epochs in which ≥ 1 word changed.
    state_changes: AtomicU64,
    /// Number of individual word writes that changed the stored value.
    word_writes: AtomicU64,
    /// Number of word writes whose new value equalled the old value.
    redundant_writes: AtomicU64,
    /// Number of word reads.
    reads: AtomicU64,
    /// Current/last-state-change epoch ids (one epoch per stream update).
    epoch: EpochState,
    /// Currently allocated words.
    words_current: AtomicUsize,
    /// Peak allocated words over the lifetime of the tracker.
    words_peak: AtomicUsize,
    /// Next free address for `alloc`.
    next_addr: AtomicUsize,
    /// Per-address wear counts and dirty-journal stamps; populated only when
    /// `address_tracked` is set.
    addr_writes: Mutex<WearJournal>,
    /// Epoch of the last *anonymous* changed write (`record_write(None, true)`), the
    /// taint that forces [`TrackerBackend::dirty_since`] to its conservative `None`
    /// answer; 0 = none.  Maintained only when `address_tracked` is set.
    last_anon_change: AtomicU64,
    /// Epoch up to which [`TrackerBackend::drain_dirty`] has already reported.
    drain_mark: AtomicU64,
    /// Monotone staleness clock (see [`TrackerBackend::state_change_generation`]):
    /// ticks per changed write (the exact counter already paid for by
    /// `word_writes`) plus one taint tick per [`TrackerBackend::import_state`].
    /// Deliberately **not** serialized in [`TrackerState`] — it is an ephemeral
    /// per-instance clock, like the dirty journal, so the checkpoint format is
    /// unchanged.
    generation: AtomicU64,
    /// Whether per-address wear accounting is enabled (fixed at construction).
    address_tracked: bool,
}

/// The per-address tables behind [`FullTracker`]'s wear lock: lifetime write counts
/// (wear analysis) and the epoch of each address's last changed write (the dirty
/// journal).  Both grow together and are updated under the one existing lock, so the
/// journal costs no extra synchronisation on the tracked hot path.
#[derive(Debug, Default)]
struct WearJournal {
    /// Lifetime changed-write count per address.
    wear: Vec<u64>,
    /// Epoch id of the last changed write per address (0 = only pre-epoch writes).
    last_write_epoch: Vec<u64>,
}

impl WearJournal {
    /// Grow-only resize keeping both tables the same length.
    fn grow_to(&mut self, len: usize) {
        if len > self.wear.len() {
            self.wear.resize(len, 0);
            self.last_write_epoch.resize(len, 0);
        }
    }
}

impl FullTracker {
    /// Creates a backend with aggregate counters only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a backend that additionally records per-address write counts, enabling
    /// wear analysis through [`crate::nvm::NvmReport`].  Address tracking costs one
    /// `u64` per tracked word plus a lock per write, so it is intended for
    /// moderate-size analysis runs.
    pub fn with_address_tracking() -> Self {
        Self {
            address_tracked: true,
            ..Self::default()
        }
    }

    fn wear_table(&self) -> std::sync::MutexGuard<'_, WearJournal> {
        match self.addr_writes.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Stamps the anonymous-write taint with the current epoch (see
    /// [`FullTracker::last_anon_change`]); epoch 0 (pre-epoch initialisation) is
    /// stamped as 1 so a base captured before the write still sees the taint.
    #[inline]
    fn taint_anonymous(&self) {
        let e = self.epoch.epochs().max(1);
        self.last_anon_change.fetch_max(e, Ordering::Relaxed);
    }
}

impl TrackerBackend for FullTracker {
    #[inline]
    fn begin_epoch(&self) {
        self.epoch.begin();
    }

    #[inline]
    fn begin_epochs(&self, n: u64) -> u64 {
        self.epoch.reserve(n)
    }

    #[inline]
    fn enter_epoch(&self, id: u64) {
        self.epoch.enter(id);
    }

    fn alloc(&self, words: usize) -> AddrRange {
        let start = self.next_addr.fetch_add(words, Ordering::Relaxed);
        let current = self.words_current.fetch_add(words, Ordering::Relaxed) + words;
        self.words_peak.fetch_max(current, Ordering::Relaxed);
        if self.address_tracked {
            // Grow-only: a concurrent alloc may already have extended the table past
            // this range's end, and resizing down would truncate its wear counts.
            self.wear_table().grow_to(start + words);
        }
        AddrRange { start, len: words }
    }

    fn dealloc(&self, words: usize) {
        let _ = self
            .words_current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(words))
            });
    }

    #[inline]
    fn record_write(&self, addr: Option<usize>, changed: bool) {
        if changed {
            bump(&self.word_writes, 1);
            bump(&self.generation, 1);
            if self.epoch.claims_state_change() {
                bump(&self.state_changes, 1);
            }
            if self.address_tracked {
                match addr {
                    Some(a) => {
                        let mut journal = self.wear_table();
                        journal.grow_to(a + 1);
                        journal.wear[a] += 1;
                        journal.last_write_epoch[a] = self.epoch.epochs();
                    }
                    None => self.taint_anonymous(),
                }
            }
        } else {
            bump(&self.redundant_writes, 1);
        }
    }

    #[inline]
    fn record_changed_run(&self, start: Option<usize>, n: u64) {
        if n == 0 {
            return;
        }
        bump(&self.word_writes, n);
        bump(&self.generation, n);
        if self.epoch.claims_state_change() {
            bump(&self.state_changes, 1);
        }
        if self.address_tracked {
            match start {
                Some(start) => {
                    let end = start + n as usize;
                    let mut journal = self.wear_table();
                    journal.grow_to(end);
                    let epoch = self.epoch.epochs();
                    for w in &mut journal.wear[start..end] {
                        *w += 1;
                    }
                    for e in &mut journal.last_write_epoch[start..end] {
                        *e = epoch;
                    }
                }
                None => self.taint_anonymous(),
            }
        }
    }

    #[inline]
    fn record_changed_at(&self, addrs: &[usize]) {
        if addrs.is_empty() {
            return;
        }
        bump(&self.word_writes, addrs.len() as u64);
        bump(&self.generation, addrs.len() as u64);
        if self.epoch.claims_state_change() {
            bump(&self.state_changes, 1);
        }
        if self.address_tracked {
            let mut journal = self.wear_table();
            let epoch = self.epoch.epochs();
            for &a in addrs {
                journal.grow_to(a + 1);
                journal.wear[a] += 1;
                journal.last_write_epoch[a] = epoch;
            }
        }
    }

    /// Constant time when wear is not tracked: every scatter epoch carries
    /// `writes ≥ 1` changed writes, so each claims exactly one state change and the
    /// clock ends on the last epoch with `last_change == current` — exactly where
    /// the per-item loop leaves it.  With wear tracking on, falls back to the
    /// per-item loop so each address's `last_write_epoch` is stamped with its own
    /// item's epoch, not the block's last.
    #[inline]
    fn record_scatter_epochs(&self, first: u64, writes: usize, addrs: &[usize]) {
        if writes == 0 || addrs.is_empty() {
            return;
        }
        debug_assert_eq!(addrs.len() % writes, 0);
        let n = (addrs.len() / writes) as u64;
        if self.address_tracked {
            for (i, chunk) in addrs.chunks_exact(writes).enumerate() {
                self.epoch.enter(first + i as u64);
                self.record_changed_at(chunk);
            }
            return;
        }
        self.epoch.enter_claimed_run(first, n);
        bump(&self.state_changes, n);
        bump(&self.word_writes, addrs.len() as u64);
        bump(&self.generation, addrs.len() as u64);
    }

    #[inline]
    fn record_run_epochs(&self, first: u64, n: u64, writes: u64, addrs: Option<&[usize]>) {
        debug_assert!(addrs.is_none_or(|a| a.len() as u64 == writes));
        if n == 0 {
            return;
        }
        if writes == 0 {
            // Entering epochs without writes changes no counter except the clock.
            self.epoch.enter(first + n - 1);
            return;
        }
        self.epoch.enter_claimed_run(first, n);
        bump(&self.state_changes, n);
        bump(&self.word_writes, n * writes);
        bump(&self.generation, n * writes);
        if self.address_tracked {
            match addrs {
                Some(addrs) => {
                    let mut journal = self.wear_table();
                    let epoch = self.epoch.epochs();
                    for &a in addrs {
                        journal.grow_to(a + 1);
                        journal.wear[a] += n;
                        journal.last_write_epoch[a] = epoch;
                    }
                }
                None => self.taint_anonymous(),
            }
        }
    }

    #[inline]
    fn record_reads(&self, n: u64) {
        bump(&self.reads, n);
    }

    fn state_changes(&self) -> u64 {
        self.state_changes.load(Ordering::Relaxed)
    }

    /// Exact per-changed-write clock: ticks with `word_writes` (never with
    /// redundant writes or reads) plus one taint tick per import — strictly finer
    /// than the once-per-epoch minimum the contract requires.
    fn state_change_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    fn epochs(&self) -> u64 {
        self.epoch.epochs()
    }

    fn words_current(&self) -> usize {
        self.words_current.load(Ordering::Relaxed)
    }

    fn words_peak(&self) -> usize {
        self.words_peak.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> StateReport {
        let (max_cell_writes, tracked_cells, total_addr_writes) = if self.address_tracked {
            let journal = self.wear_table();
            (
                journal.wear.iter().copied().max(),
                Some(journal.wear.len()),
                Some(journal.wear.iter().sum()),
            )
        } else {
            (None, None, None)
        };
        StateReport {
            state_changes: self.state_changes(),
            word_writes: self.word_writes.load(Ordering::Relaxed),
            redundant_writes: self.redundant_writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            epochs: self.epochs(),
            words_current: self.words_current(),
            words_peak: self.words_peak(),
            max_cell_writes,
            tracked_cells,
            total_addr_writes,
        }
    }

    fn address_writes(&self) -> Option<Vec<u64>> {
        if self.address_tracked {
            Some(self.wear_table().wear.clone())
        } else {
            None
        }
    }

    fn kind(&self) -> TrackerKind {
        if self.address_tracked {
            TrackerKind::FullAddressTracked
        } else {
            TrackerKind::Full
        }
    }

    fn export_state(&self) -> TrackerState {
        TrackerState {
            kind: self.kind(),
            epochs: self.epoch.epochs(),
            last_change_epoch: self.epoch.last_change(),
            state_changes: self.state_changes(),
            word_writes: self.word_writes.load(Ordering::Relaxed),
            redundant_writes: self.redundant_writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            words_current: self.words_current(),
            words_peak: self.words_peak(),
            next_addr: self.next_addr.load(Ordering::Relaxed),
            wear: self.address_writes(),
        }
    }

    fn import_state(&self, state: &TrackerState) {
        debug_assert_eq!(state.kind, self.kind(), "import into a same-kind tracker");
        self.epoch.restore(state.epochs, state.last_change_epoch);
        self.state_changes
            .store(state.state_changes, Ordering::Relaxed);
        self.word_writes.store(state.word_writes, Ordering::Relaxed);
        self.redundant_writes
            .store(state.redundant_writes, Ordering::Relaxed);
        self.reads.store(state.reads, Ordering::Relaxed);
        self.words_current
            .store(state.words_current, Ordering::Relaxed);
        self.words_peak.store(state.words_peak, Ordering::Relaxed);
        self.next_addr.store(state.next_addr, Ordering::Relaxed);
        if self.address_tracked {
            let wear = state.wear.clone().unwrap_or_default();
            let mut journal = self.wear_table();
            // The dirty journal is not serialized ([`TrackerState`] is format-stable),
            // so a restored tracker re-stamps every address with the import epoch and
            // taints anonymity: `dirty_since` answers conservatively for any epoch
            // before the import point instead of under-reporting.
            journal.last_write_epoch = vec![state.epochs; wear.len()];
            journal.wear = wear;
            self.last_anon_change.store(state.epochs, Ordering::Relaxed);
        }
        self.drain_mark.store(0, Ordering::Relaxed);
        // Restore taints the staleness clock: the counters above may rewind, but the
        // generation only ever moves forward — an import is a state mutation, so any
        // generation captured before it must now compare stale.
        bump(&self.generation, 1);
    }

    fn dirty_since(&self, epoch: u64) -> Option<Vec<usize>> {
        if !self.address_tracked || self.last_anon_change.load(Ordering::Relaxed) > epoch {
            return None;
        }
        let journal = self.wear_table();
        Some(
            journal
                .last_write_epoch
                .iter()
                .enumerate()
                .filter(|&(_, &e)| e > epoch)
                .map(|(a, _)| a)
                .collect(),
        )
    }

    fn drain_dirty(&self) -> Option<Vec<usize>> {
        let mark = self.drain_mark.swap(self.epoch.epochs(), Ordering::Relaxed);
        self.dirty_since(mark)
    }
}

// ---------------------------------------------------------------------------
// LeanTracker — atomic epoch/state-change/space counters only.
// ---------------------------------------------------------------------------

/// Near-zero-overhead backend: relaxed atomic counters for epochs, state changes, and
/// space; everything else is uncounted.
///
/// What it counts identically to [`FullTracker`]: `epochs`, `state_changes` (the paper's
/// headline measure — at most one per epoch, only for writes that actually change a
/// value, never for pre-epoch initialisation writes), `words_current`, and `words_peak`.
/// What it does not count: `word_writes`, `redundant_writes`, `reads`, and per-address
/// wear — those report as zero/`None`.
#[derive(Debug, Default)]
pub struct LeanTracker {
    epoch: EpochState,
    state_changes: AtomicU64,
    /// Monotone staleness clock (see [`TrackerBackend::state_change_generation`]):
    /// ticks with the state-change counter — at most once per epoch, the coarsest
    /// granularity the conservative contract allows — plus one taint tick per
    /// [`TrackerBackend::import_state`].  Not serialized.
    generation: AtomicU64,
    next_addr: AtomicUsize,
    words_current: AtomicUsize,
    words_peak: AtomicUsize,
}

impl LeanTracker {
    /// Creates a lean backend with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrackerBackend for LeanTracker {
    #[inline]
    fn begin_epoch(&self) {
        self.epoch.begin();
    }

    #[inline]
    fn begin_epochs(&self, n: u64) -> u64 {
        self.epoch.reserve(n)
    }

    #[inline]
    fn enter_epoch(&self, id: u64) {
        self.epoch.enter(id);
    }

    fn alloc(&self, words: usize) -> AddrRange {
        let start = self.next_addr.fetch_add(words, Ordering::Relaxed);
        let current = self.words_current.fetch_add(words, Ordering::Relaxed) + words;
        self.words_peak.fetch_max(current, Ordering::Relaxed);
        AddrRange { start, len: words }
    }

    fn dealloc(&self, words: usize) {
        let _ = self
            .words_current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(words))
            });
    }

    #[inline]
    fn record_write(&self, _addr: Option<usize>, changed: bool) {
        if changed && self.epoch.claims_state_change() {
            bump(&self.state_changes, 1);
            bump(&self.generation, 1);
        }
    }

    #[inline]
    fn record_changed_run(&self, _start: Option<usize>, n: u64) {
        if n > 0 && self.epoch.claims_state_change() {
            bump(&self.state_changes, 1);
            bump(&self.generation, 1);
        }
    }

    #[inline]
    fn record_changed_at(&self, addrs: &[usize]) {
        if !addrs.is_empty() && self.epoch.claims_state_change() {
            bump(&self.state_changes, 1);
            bump(&self.generation, 1);
        }
    }

    #[inline]
    fn record_run_epochs(&self, first: u64, n: u64, writes: u64, addrs: Option<&[usize]>) {
        debug_assert!(addrs.is_none_or(|a| a.len() as u64 == writes));
        if n == 0 {
            return;
        }
        if writes == 0 {
            self.epoch.enter(first + n - 1);
            return;
        }
        self.epoch.enter_claimed_run(first, n);
        bump(&self.state_changes, n);
        bump(&self.generation, n);
    }

    /// Constant time always (no wear table to attribute): each scatter epoch claims
    /// one state change and one generation tick, and the clock ends claimed on the
    /// last epoch — exactly where the per-item loop leaves it.
    #[inline]
    fn record_scatter_epochs(&self, first: u64, writes: usize, addrs: &[usize]) {
        if writes == 0 || addrs.is_empty() {
            return;
        }
        debug_assert_eq!(addrs.len() % writes, 0);
        let n = (addrs.len() / writes) as u64;
        self.epoch.enter_claimed_run(first, n);
        bump(&self.state_changes, n);
        bump(&self.generation, n);
    }

    #[inline]
    fn record_reads(&self, _n: u64) {}

    fn state_changes(&self) -> u64 {
        self.state_changes.load(Ordering::Relaxed)
    }

    /// Coarse once-per-epoch clock: ticks with the state-change counter (at most
    /// one tick per epoch, however many words that epoch changed) plus one taint
    /// tick per import — exactly the minimum granularity the conservative
    /// contract allows.
    fn state_change_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    fn epochs(&self) -> u64 {
        self.epoch.epochs()
    }

    fn words_current(&self) -> usize {
        self.words_current.load(Ordering::Relaxed)
    }

    fn words_peak(&self) -> usize {
        self.words_peak.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> StateReport {
        StateReport {
            state_changes: self.state_changes(),
            epochs: self.epochs(),
            words_current: self.words_current(),
            words_peak: self.words_peak(),
            ..StateReport::default()
        }
    }

    fn address_writes(&self) -> Option<Vec<u64>> {
        None
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Lean
    }

    fn export_state(&self) -> TrackerState {
        TrackerState {
            kind: TrackerKind::Lean,
            epochs: self.epoch.epochs(),
            last_change_epoch: self.epoch.last_change(),
            state_changes: self.state_changes(),
            word_writes: 0,
            redundant_writes: 0,
            reads: 0,
            words_current: self.words_current(),
            words_peak: self.words_peak(),
            next_addr: self.next_addr.load(Ordering::Relaxed),
            wear: None,
        }
    }

    fn import_state(&self, state: &TrackerState) {
        debug_assert_eq!(state.kind, TrackerKind::Lean, "import into a lean tracker");
        self.epoch.restore(state.epochs, state.last_change_epoch);
        self.state_changes
            .store(state.state_changes, Ordering::Relaxed);
        self.words_current
            .store(state.words_current, Ordering::Relaxed);
        self.words_peak.store(state.words_peak, Ordering::Relaxed);
        self.next_addr.store(state.next_addr, Ordering::Relaxed);
        // Restore taints the staleness clock: the counters above may rewind, but
        // the generation only ever moves forward — an import is a state mutation,
        // so any generation captured before it must now compare stale.
        bump(&self.generation, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn TrackerBackend) -> StateReport {
        let r = backend.alloc(4);
        assert_eq!(r.len, 4);
        backend.record_write(Some(r.word(0)), true); // init: before any epoch
        for _ in 0..3 {
            backend.begin_epoch();
            backend.record_write(Some(r.word(0)), true);
            backend.record_write(Some(r.word(1)), true);
        }
        backend.begin_epoch();
        backend.record_write(Some(r.word(2)), false);
        backend.record_reads(7);
        backend.dealloc(2);
        backend.snapshot()
    }

    /// Same stimulus as `exercise`, but through the batched epoch-span API.
    fn exercise_batched(backend: &dyn TrackerBackend) -> StateReport {
        let r = backend.alloc(4);
        backend.record_write(Some(r.word(0)), true);
        let first = backend.begin_epochs(4);
        for (i, changed) in [true, true, true, false].iter().enumerate() {
            backend.enter_epoch(first + i as u64);
            backend.record_write(Some(r.word(0)), *changed);
            if *changed {
                backend.record_write(Some(r.word(1)), true);
            }
        }
        backend.record_reads(7);
        backend.dealloc(2);
        backend.snapshot()
    }

    #[test]
    fn full_and_lean_agree_on_epochs_state_changes_and_space() {
        let full = exercise(&FullTracker::new());
        let lean = exercise(&LeanTracker::new());
        assert_eq!(full.epochs, 4);
        assert_eq!(full.state_changes, 3, "redundant-only epoch does not count");
        assert_eq!(lean.epochs, full.epochs);
        assert_eq!(lean.state_changes, full.state_changes);
        assert_eq!(lean.words_current, full.words_current);
        assert_eq!(lean.words_peak, full.words_peak);
    }

    #[test]
    fn batched_epoch_spans_match_per_item_epochs() {
        let per_item = exercise(&FullTracker::new());
        let batched = exercise_batched(&FullTracker::new());
        assert_eq!(batched, per_item);
        let lean_batched = exercise_batched(&LeanTracker::new());
        assert_eq!(lean_batched.epochs, per_item.epochs);
        assert_eq!(lean_batched.state_changes, per_item.state_changes);
    }

    #[test]
    fn epochs_are_visible_per_activation_not_per_reservation() {
        // Mid-batch observers (e.g. SampleAndHold's age-bucketed maintenance polls
        // `epochs()` as its clock) must see the per-item epoch, not the end of the
        // reserved span.
        let t = FullTracker::new();
        let first = t.begin_epochs(100);
        assert_eq!(first, 1);
        assert_eq!(t.epochs(), 0, "reservation alone opens nothing");
        t.enter_epoch(first);
        assert_eq!(t.epochs(), 1);
        t.enter_epoch(first + 1);
        assert_eq!(t.epochs(), 2);
        // A later span continues where the activations left off.
        assert_eq!(t.begin_epochs(5), 3);
    }

    #[test]
    fn default_span_impl_falls_back_to_begin_epoch() {
        /// A minimal backend that only implements the mandatory methods.
        #[derive(Debug, Default)]
        struct Minimal {
            epochs: AtomicU64,
        }
        impl TrackerBackend for Minimal {
            fn begin_epoch(&self) {
                self.epochs.fetch_add(1, Ordering::Relaxed);
            }
            fn alloc(&self, words: usize) -> AddrRange {
                AddrRange {
                    start: 0,
                    len: words,
                }
            }
            fn dealloc(&self, _words: usize) {}
            fn record_write(&self, _addr: Option<usize>, _changed: bool) {}
            fn record_reads(&self, _n: u64) {}
            fn state_changes(&self) -> u64 {
                0
            }
            fn epochs(&self) -> u64 {
                self.epochs.load(Ordering::Relaxed)
            }
            fn words_current(&self) -> usize {
                0
            }
            fn words_peak(&self) -> usize {
                0
            }
            fn snapshot(&self) -> StateReport {
                StateReport::default()
            }
            fn address_writes(&self) -> Option<Vec<u64>> {
                None
            }
            fn kind(&self) -> TrackerKind {
                TrackerKind::Full
            }
            fn export_state(&self) -> TrackerState {
                TrackerState {
                    kind: self.kind(),
                    epochs: self.epochs(),
                    last_change_epoch: 0,
                    state_changes: 0,
                    word_writes: 0,
                    redundant_writes: 0,
                    reads: 0,
                    words_current: 0,
                    words_peak: 0,
                    next_addr: 0,
                    wear: None,
                }
            }
            fn import_state(&self, state: &TrackerState) {
                self.epochs.store(state.epochs, Ordering::Relaxed);
            }
        }
        let m = Minimal::default();
        let first = m.begin_epochs(3);
        assert_eq!(first, 1);
        for id in first..first + 3 {
            m.enter_epoch(id);
        }
        assert_eq!(m.epochs(), 3, "fallback advances per enter_epoch");
    }

    /// Per-item stimulus whose bulk equivalents the batch kernels use: a contiguous
    /// write run, a scattered write set, and a run of identical epochs.
    fn exercise_bulk_per_item(backend: &dyn TrackerBackend) -> StateReport {
        let r = backend.alloc(8);
        // Epoch 1: a contiguous run of 4 changed writes (the AMS kernel shape).
        backend.begin_epoch();
        for i in 0..4 {
            backend.record_write(Some(r.word(i)), true);
        }
        // Epoch 2: scattered changed writes (the CountMin kernel shape).
        backend.begin_epoch();
        for a in [6usize, 1, 3] {
            backend.record_write(Some(r.word(a)), true);
        }
        // Epochs 3..8: a run of 5 identical epochs with 2 writes each (the
        // run-length kernel shape), followed by one write-free epoch.
        let first = backend.begin_epochs(6);
        for id in first..first + 5 {
            backend.enter_epoch(id);
            backend.record_write(Some(r.word(2)), true);
            backend.record_write(Some(r.word(5)), true);
        }
        backend.enter_epoch(first + 5);
        backend.record_reads(3);
        backend.snapshot()
    }

    /// The same stimulus through the bulk accounting API.
    fn exercise_bulk(backend: &dyn TrackerBackend) -> StateReport {
        let r = backend.alloc(8);
        backend.begin_epoch();
        backend.record_changed_run(Some(r.word(0)), 4);
        backend.begin_epoch();
        backend.record_changed_at(&[r.word(6), r.word(1), r.word(3)]);
        let first = backend.begin_epochs(6);
        backend.record_run_epochs(first, 5, 2, Some(&[r.word(2), r.word(5)]));
        backend.record_run_epochs(first + 5, 1, 0, None);
        backend.record_reads(3);
        backend.snapshot()
    }

    #[test]
    fn bulk_accounting_is_equivalent_to_the_per_item_loop() {
        for (bulk, item) in [
            (
                exercise_bulk(&FullTracker::new()),
                exercise_bulk_per_item(&FullTracker::new()),
            ),
            (
                exercise_bulk(&FullTracker::with_address_tracking()),
                exercise_bulk_per_item(&FullTracker::with_address_tracking()),
            ),
            (
                exercise_bulk(&LeanTracker::new()),
                exercise_bulk_per_item(&LeanTracker::new()),
            ),
        ] {
            assert_eq!(bulk, item);
        }
        // Wear tables, not just their aggregates.
        let bulk = FullTracker::with_address_tracking();
        let item = FullTracker::with_address_tracking();
        let _ = exercise_bulk(&bulk);
        let _ = exercise_bulk_per_item(&item);
        assert_eq!(bulk.address_writes(), item.address_writes());
        // Word 2: one write from the epoch-1 contiguous run plus 5 from the epoch run.
        assert_eq!(bulk.address_writes().unwrap()[2], 6, "run wear accumulates");
    }

    #[test]
    fn bulk_default_impls_match_the_overrides() {
        // The default (per-word loop) implementations must leave identical counters,
        // so third-party backends inherit correct semantics.  Exercise them through a
        // backend that only gets the defaults by calling them explicitly on a shim
        // that forwards the mandatory methods to a FullTracker.
        #[derive(Debug)]
        struct Forwarder(FullTracker);
        impl TrackerBackend for Forwarder {
            fn begin_epoch(&self) {
                self.0.begin_epoch()
            }
            fn begin_epochs(&self, n: u64) -> u64 {
                self.0.begin_epochs(n)
            }
            fn enter_epoch(&self, id: u64) {
                self.0.enter_epoch(id)
            }
            fn alloc(&self, words: usize) -> AddrRange {
                self.0.alloc(words)
            }
            fn dealloc(&self, words: usize) {
                self.0.dealloc(words)
            }
            fn record_write(&self, addr: Option<usize>, changed: bool) {
                self.0.record_write(addr, changed)
            }
            // record_changed_run / record_changed_at / record_run_epochs: defaults.
            fn record_reads(&self, n: u64) {
                self.0.record_reads(n)
            }
            fn state_changes(&self) -> u64 {
                self.0.state_changes()
            }
            fn epochs(&self) -> u64 {
                self.0.epochs()
            }
            fn words_current(&self) -> usize {
                self.0.words_current()
            }
            fn words_peak(&self) -> usize {
                self.0.words_peak()
            }
            fn snapshot(&self) -> StateReport {
                self.0.snapshot()
            }
            fn address_writes(&self) -> Option<Vec<u64>> {
                self.0.address_writes()
            }
            fn kind(&self) -> TrackerKind {
                self.0.kind()
            }
            fn export_state(&self) -> TrackerState {
                self.0.export_state()
            }
            fn import_state(&self, state: &TrackerState) {
                self.0.import_state(state)
            }
        }
        let defaults = Forwarder(FullTracker::with_address_tracking());
        let overrides = FullTracker::with_address_tracking();
        assert_eq!(exercise_bulk(&defaults), exercise_bulk(&overrides));
        assert_eq!(defaults.address_writes(), overrides.address_writes());
    }

    #[test]
    fn empty_bulk_calls_are_no_ops() {
        let t = FullTracker::new();
        t.begin_epoch();
        t.record_changed_run(Some(0), 0);
        t.record_changed_at(&[]);
        let first = t.begin_epochs(0);
        t.record_run_epochs(first, 0, 3, None);
        let snap = t.snapshot();
        assert_eq!(snap.state_changes, 0);
        assert_eq!(snap.word_writes, 0);
        assert_eq!(snap.epochs, 1);
    }

    #[test]
    fn lean_does_not_count_fine_grained_activity() {
        let lean = exercise(&LeanTracker::new());
        assert_eq!(lean.word_writes, 0);
        assert_eq!(lean.redundant_writes, 0);
        assert_eq!(lean.reads, 0);
        assert_eq!(lean.max_cell_writes, None);
        assert_eq!(LeanTracker::new().address_writes(), None);
    }

    #[test]
    fn full_counts_fine_grained_activity() {
        let full = exercise(&FullTracker::new());
        assert_eq!(full.word_writes, 7); // 1 init + 3 epochs × 2
        assert_eq!(full.redundant_writes, 1);
        assert_eq!(full.reads, 7);
    }

    #[test]
    fn full_address_tracking_records_wear_through_the_backend() {
        let full = FullTracker::with_address_tracking();
        let snap = exercise(&full);
        assert_eq!(snap.max_cell_writes, Some(4), "word 0: init + 3 epochs");
        assert_eq!(snap.tracked_cells, Some(4));
        assert_eq!(snap.total_addr_writes, Some(7));
        assert_eq!(full.address_writes().unwrap()[1], 3);
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(FullTracker::new().kind(), TrackerKind::Full);
        assert_eq!(
            FullTracker::with_address_tracking().kind(),
            TrackerKind::FullAddressTracked
        );
        assert_eq!(LeanTracker::new().kind(), TrackerKind::Lean);
    }

    #[test]
    fn lean_allocations_hand_out_disjoint_ranges() {
        let lean = LeanTracker::new();
        let a = lean.alloc(3);
        let b = lean.alloc(2);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 3);
        assert_eq!(lean.words_peak(), 5);
        lean.dealloc(3);
        assert_eq!(lean.words_current(), 2);
        lean.dealloc(100);
        assert_eq!(lean.words_current(), 0, "dealloc saturates at zero");
    }

    #[test]
    fn dirty_journal_tracks_addressed_writes_per_epoch() {
        let t = FullTracker::with_address_tracking();
        let r = t.alloc(6);
        t.record_write(Some(r.word(0)), true); // pre-epoch init: never dirty
        t.begin_epoch(); // epoch 1
        t.record_write(Some(r.word(1)), true);
        t.begin_epoch(); // epoch 2
        t.record_write(Some(r.word(2)), true);
        t.record_write(Some(r.word(3)), false); // redundant: not dirty
        t.begin_epoch(); // epoch 3
        t.record_changed_at(&[r.word(1), r.word(4)]);

        assert_eq!(t.dirty_since(3), Some(vec![]));
        assert_eq!(t.dirty_since(2), Some(vec![1, 4]));
        assert_eq!(t.dirty_since(1), Some(vec![1, 2, 4]));
        assert_eq!(t.dirty_since(0), Some(vec![1, 2, 4]));

        // Drain semantics: first drain reports everything since construction, the
        // next only what happened after it.
        assert_eq!(t.drain_dirty(), Some(vec![1, 2, 4]));
        assert_eq!(t.drain_dirty(), Some(vec![]));
        t.begin_epoch();
        t.record_changed_run(Some(r.word(4)), 2);
        assert_eq!(t.drain_dirty(), Some(vec![4, 5]));
    }

    #[test]
    fn anonymous_writes_force_the_conservative_answer() {
        let t = FullTracker::with_address_tracking();
        let r = t.alloc(2);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        assert_eq!(t.dirty_since(0), Some(vec![0]));
        t.begin_epoch(); // epoch 2
        t.record_write(None, true); // a TrackedMap-style anonymous mutation
        assert_eq!(t.dirty_since(1), None, "anon write after the base taints");
        assert_eq!(
            t.dirty_since(2),
            Some(vec![]),
            "a base at-or-after the taint is clean again"
        );
        // A None drain still advances the mark: the caller persisted everything.
        assert_eq!(t.drain_dirty(), None);
        assert_eq!(t.drain_dirty(), Some(vec![]));
    }

    #[test]
    fn journal_answers_none_without_address_tracking() {
        for backend in [
            Box::new(FullTracker::new()) as Box<dyn TrackerBackend>,
            Box::new(LeanTracker::new()),
        ] {
            backend.begin_epoch();
            backend.record_write(Some(0), true);
            assert_eq!(backend.dirty_since(0), None);
            assert_eq!(backend.drain_dirty(), None);
        }
    }

    #[test]
    fn journal_is_conservative_after_import() {
        let t = FullTracker::with_address_tracking();
        let r = t.alloc(2);
        for _ in 0..4 {
            t.begin_epoch();
            t.record_write(Some(r.word(0)), true);
        }
        let state = t.export_state();
        let restored = FullTracker::with_address_tracking();
        restored.import_state(&state);
        assert_eq!(
            restored.dirty_since(2),
            None,
            "pre-import history is unknown: answer conservatively"
        );
        assert_eq!(restored.dirty_since(4), Some(vec![]));
        restored.begin_epoch(); // epoch 5
        restored.record_write(Some(r.word(1)), true);
        assert_eq!(restored.dirty_since(4), Some(vec![1]));
    }

    #[test]
    fn full_generation_ticks_per_changed_write_and_never_on_noise() {
        let t = FullTracker::new();
        let r = t.alloc(4);
        assert_eq!(t.state_change_generation(), 0);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        t.record_write(Some(r.word(1)), true);
        assert_eq!(t.state_change_generation(), 2, "exact per-changed-write");
        t.begin_epoch();
        t.record_write(Some(r.word(0)), false); // redundant write
        t.record_reads(10);
        assert_eq!(
            t.state_change_generation(),
            2,
            "noise never ticks the clock"
        );
        t.record_changed_run(Some(r.word(0)), 3);
        assert_eq!(t.state_change_generation(), 5);
        t.record_changed_at(&[r.word(0), r.word(2)]);
        assert_eq!(t.state_change_generation(), 7);
    }

    #[test]
    fn lean_generation_coalesces_to_one_tick_per_epoch() {
        let t = LeanTracker::new();
        let r = t.alloc(4);
        t.begin_epoch();
        t.record_write(Some(r.word(0)), true);
        t.record_write(Some(r.word(1)), true);
        t.record_changed_run(Some(r.word(0)), 3);
        assert_eq!(
            t.state_change_generation(),
            1,
            "all changed writes of one epoch are one tick"
        );
        t.begin_epoch();
        t.record_write(Some(r.word(0)), false);
        assert_eq!(t.state_change_generation(), 1);
        t.begin_epoch();
        t.record_changed_at(&[r.word(2)]);
        assert_eq!(t.state_change_generation(), 2);
    }

    #[test]
    fn generation_is_tainted_forward_by_import_never_rewound() {
        for (t, restored) in [
            (
                Box::new(FullTracker::new()) as Box<dyn TrackerBackend>,
                Box::new(FullTracker::new()) as Box<dyn TrackerBackend>,
            ),
            (Box::new(LeanTracker::new()), Box::new(LeanTracker::new())),
        ] {
            let r = t.alloc(2);
            for _ in 0..3 {
                t.begin_epoch();
                t.record_write(Some(r.word(0)), true);
            }
            let before = t.state_change_generation();
            let state = t.export_state();
            // Import into the *same* backend: counters rewind to the checkpoint,
            // but the staleness clock must move strictly forward.
            t.import_state(&state);
            assert!(
                t.state_change_generation() > before,
                "import taints the clock forward on {:?}",
                t.kind()
            );
            // Import into a fresh backend: even with zero local history the
            // imported state is a mutation, so the clock leaves zero.
            restored.import_state(&state);
            assert!(
                restored.state_change_generation() > 0,
                "cold import still ticks on {:?}",
                restored.kind()
            );
        }
    }

    #[test]
    fn generation_satisfies_the_epoch_boundary_contract() {
        // At every epoch boundary: generation advanced since the last boundary
        // iff some observable mutation happened in between.
        for backend in [
            Box::new(FullTracker::new()) as Box<dyn TrackerBackend>,
            Box::new(LeanTracker::new()),
        ] {
            let r = backend.alloc(8);
            let mut last = backend.state_change_generation();
            for i in 0..32u64 {
                backend.begin_epoch();
                let mutated = i % 3 == 0;
                backend.record_write(Some(r.word((i % 8) as usize)), mutated);
                let now = backend.state_change_generation();
                assert!(now >= last, "monotone on {:?}", backend.kind());
                assert_eq!(
                    now > last,
                    mutated,
                    "advances iff the epoch mutated on {:?}",
                    backend.kind()
                );
                last = now;
            }
        }
    }

    #[test]
    fn backends_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FullTracker>();
        assert_send_sync::<LeanTracker>();
        let lean = std::sync::Arc::new(LeanTracker::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lean = std::sync::Arc::clone(&lean);
                s.spawn(move || {
                    for _ in 0..100 {
                        lean.record_reads(1);
                    }
                });
            }
        });
    }
}
