//! Pluggable tracker backends: exact accounting vs. near-zero-overhead counting.
//!
//! A [`crate::StateTracker`] handle dispatches every accounting event to a
//! [`TrackerBackend`].  Two implementations exist:
//!
//! * [`FullTracker`] — the exact accounting the repository has always used: per-epoch
//!   state changes, word writes, redundant writes, reads, current/peak space, and
//!   optional per-address wear counts.  Counter semantics are identical to the original
//!   single-threaded tracker, so all recorded experiment tables reproduce bit-for-bit.
//! * [`LeanTracker`] — atomic epoch/state-change counters plus space accounting only.
//!   Its update path is a handful of relaxed atomic operations; it does **not** count
//!   word writes, redundant writes, reads, or per-cell wear (those fields of its
//!   [`StateReport`] are zero/`None`).  Use it when only answers and the state-change
//!   count are needed — e.g. sharded or throughput-critical runs.
//!
//! Both backends are lock-free on their hot paths (relaxed atomics; [`FullTracker`]
//! takes a mutex only for the optional per-address wear table) and `Send + Sync`, so
//! every algorithm built on the tracked substrate can be moved to a worker thread
//! regardless of which backend it was constructed with.  Epoch bookkeeping remains a
//! sequential per-tracker notion — a state change is defined per stream update — and
//! sharded runs give each shard its own tracker, so the atomics are never contended in
//! practice; they exist to make the handles shareable, not to merge concurrent streams
//! into one tracker.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::report::StateReport;
use crate::tracker::AddrRange;

/// Which backend a [`crate::StateTracker`] was constructed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackerKind {
    /// Exact accounting (the default; reproduces all recorded experiments).
    #[default]
    Full,
    /// Exact accounting plus per-address wear counts (analysis runs only).
    FullAddressTracked,
    /// Atomic epoch/state-change/space counters only; near-zero update cost.
    Lean,
}

/// The accounting interface a tracker handle dispatches to.
///
/// All methods take `&self`: backends are internally synchronised, which is what lets
/// tracked algorithms be `Send + Sync` without any change to algorithm code.
pub trait TrackerBackend: fmt::Debug + Send + Sync {
    /// Starts a new epoch (stream update).  At most one state change is counted per
    /// epoch regardless of how many words are modified within it.
    fn begin_epoch(&self);
    /// Allocates `words` words of tracked memory and charges the space accounts.
    fn alloc(&self, words: usize) -> AddrRange;
    /// Releases `words` words of tracked memory (peak usage is unaffected).
    fn dealloc(&self, words: usize);
    /// Records a write to one word; `changed` must be `true` iff the stored value
    /// actually differs from the previous one.
    fn record_write(&self, addr: Option<usize>, changed: bool);
    /// Records `n` word reads (a no-op on backends that do not count reads).
    fn record_reads(&self, n: u64);
    /// Number of state changes so far (paper definition).
    fn state_changes(&self) -> u64;
    /// Number of epochs (stream updates) started so far.
    fn epochs(&self) -> u64;
    /// Current number of allocated words.
    fn words_current(&self) -> usize;
    /// Peak number of allocated words.
    fn words_peak(&self) -> usize;
    /// Immutable snapshot of every counter the backend maintains.
    fn snapshot(&self) -> StateReport;
    /// Per-address write counts, if the backend records them.
    fn address_writes(&self) -> Option<Vec<u64>>;
    /// The backend's kind tag.
    fn kind(&self) -> TrackerKind;
}

// ---------------------------------------------------------------------------
// FullTracker — exact accounting (the original tracker semantics).
// ---------------------------------------------------------------------------

/// Exact accounting backend: every counter of the original tracker, held in relaxed
/// atomics so the handle is `Send + Sync` without paying for a lock on the update path.
///
/// State-change semantics, initial-write conventions, address assignment, and every
/// counter are unchanged from the pre-backend tracker, so experiment tables recorded
/// against it reproduce exactly.  Only the optional per-address wear table sits behind
/// a mutex, and it is touched only when address tracking was requested at construction.
#[derive(Debug, Default)]
pub struct FullTracker {
    /// Paper-definition state changes: number of epochs in which ≥ 1 word changed.
    state_changes: AtomicU64,
    /// Number of individual word writes that changed the stored value.
    word_writes: AtomicU64,
    /// Number of word writes whose new value equalled the old value.
    redundant_writes: AtomicU64,
    /// Number of word reads.
    reads: AtomicU64,
    /// Number of epochs started so far (one per stream update by convention).
    epochs: AtomicU64,
    /// Whether the current epoch has already been counted as a state change.
    dirty: AtomicBool,
    /// Whether any epoch has been opened yet.  Writes performed before the first epoch
    /// (data-structure initialisation) are counted as word writes but not as state
    /// changes, matching the paper's convention that state changes are counted per
    /// stream update.
    in_epoch: AtomicBool,
    /// Currently allocated words.
    words_current: AtomicUsize,
    /// Peak allocated words over the lifetime of the tracker.
    words_peak: AtomicUsize,
    /// Next free address for `alloc`.
    next_addr: AtomicUsize,
    /// Per-address write counts; populated only when `address_tracked` is set.
    addr_writes: Mutex<Vec<u64>>,
    /// Whether per-address wear accounting is enabled (fixed at construction).
    address_tracked: bool,
}

impl FullTracker {
    /// Creates a backend with aggregate counters only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a backend that additionally records per-address write counts, enabling
    /// wear analysis through [`crate::nvm::NvmReport`].  Address tracking costs one
    /// `u64` per tracked word plus a lock per write, so it is intended for
    /// moderate-size analysis runs.
    pub fn with_address_tracking() -> Self {
        Self {
            address_tracked: true,
            ..Self::default()
        }
    }

    fn wear_table(&self) -> std::sync::MutexGuard<'_, Vec<u64>> {
        match self.addr_writes.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl TrackerBackend for FullTracker {
    fn begin_epoch(&self) {
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
        self.in_epoch.store(true, Ordering::Relaxed);
    }

    fn alloc(&self, words: usize) -> AddrRange {
        let start = self.next_addr.fetch_add(words, Ordering::Relaxed);
        let current = self.words_current.fetch_add(words, Ordering::Relaxed) + words;
        self.words_peak.fetch_max(current, Ordering::Relaxed);
        if self.address_tracked {
            // Grow-only: a concurrent alloc may already have extended the table past
            // this range's end, and resize() would otherwise truncate its wear counts.
            let mut wear = self.wear_table();
            let target = (start + words).max(wear.len());
            wear.resize(target, 0);
        }
        AddrRange { start, len: words }
    }

    fn dealloc(&self, words: usize) {
        let _ = self
            .words_current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(words))
            });
    }

    fn record_write(&self, addr: Option<usize>, changed: bool) {
        if changed {
            self.word_writes.fetch_add(1, Ordering::Relaxed);
            // The plain load screens out the common already-dirty case cheaply; the
            // swap is what actually claims the epoch's single state change.
            if self.in_epoch.load(Ordering::Relaxed)
                && !self.dirty.load(Ordering::Relaxed)
                && !self.dirty.swap(true, Ordering::Relaxed)
            {
                self.state_changes.fetch_add(1, Ordering::Relaxed);
            }
            if self.address_tracked {
                if let Some(a) = addr {
                    let mut wear = self.wear_table();
                    if a >= wear.len() {
                        wear.resize(a + 1, 0);
                    }
                    wear[a] += 1;
                }
            }
        } else {
            self.redundant_writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    fn state_changes(&self) -> u64 {
        self.state_changes.load(Ordering::Relaxed)
    }

    fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    fn words_current(&self) -> usize {
        self.words_current.load(Ordering::Relaxed)
    }

    fn words_peak(&self) -> usize {
        self.words_peak.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> StateReport {
        let (max_cell_writes, tracked_cells, total_addr_writes) = if self.address_tracked {
            let wear = self.wear_table();
            (
                wear.iter().copied().max(),
                Some(wear.len()),
                Some(wear.iter().sum()),
            )
        } else {
            (None, None, None)
        };
        StateReport {
            state_changes: self.state_changes(),
            word_writes: self.word_writes.load(Ordering::Relaxed),
            redundant_writes: self.redundant_writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            epochs: self.epochs(),
            words_current: self.words_current(),
            words_peak: self.words_peak(),
            max_cell_writes,
            tracked_cells,
            total_addr_writes,
        }
    }

    fn address_writes(&self) -> Option<Vec<u64>> {
        if self.address_tracked {
            Some(self.wear_table().clone())
        } else {
            None
        }
    }

    fn kind(&self) -> TrackerKind {
        if self.address_tracked {
            TrackerKind::FullAddressTracked
        } else {
            TrackerKind::Full
        }
    }
}

// ---------------------------------------------------------------------------
// LeanTracker — atomic epoch/state-change/space counters only.
// ---------------------------------------------------------------------------

/// Near-zero-overhead backend: relaxed atomic counters for epochs, state changes, and
/// space; everything else is uncounted.
///
/// What it counts identically to [`FullTracker`]: `epochs`, `state_changes` (the paper's
/// headline measure — at most one per epoch, only for writes that actually change a
/// value, never for pre-epoch initialisation writes), `words_current`, and `words_peak`.
/// What it does not count: `word_writes`, `redundant_writes`, `reads`, and per-address
/// wear — those report as zero/`None`.
#[derive(Debug, Default)]
pub struct LeanTracker {
    epochs: AtomicU64,
    state_changes: AtomicU64,
    dirty: AtomicBool,
    in_epoch: AtomicBool,
    next_addr: AtomicUsize,
    words_current: AtomicUsize,
    words_peak: AtomicUsize,
}

impl LeanTracker {
    /// Creates a lean backend with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TrackerBackend for LeanTracker {
    fn begin_epoch(&self) {
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
        self.in_epoch.store(true, Ordering::Relaxed);
    }

    fn alloc(&self, words: usize) -> AddrRange {
        let start = self.next_addr.fetch_add(words, Ordering::Relaxed);
        let current = self.words_current.fetch_add(words, Ordering::Relaxed) + words;
        self.words_peak.fetch_max(current, Ordering::Relaxed);
        AddrRange { start, len: words }
    }

    fn dealloc(&self, words: usize) {
        let _ = self
            .words_current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(words))
            });
    }

    fn record_write(&self, _addr: Option<usize>, changed: bool) {
        if changed
            && self.in_epoch.load(Ordering::Relaxed)
            && !self.dirty.load(Ordering::Relaxed)
            && !self.dirty.swap(true, Ordering::Relaxed)
        {
            self.state_changes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_reads(&self, _n: u64) {}

    fn state_changes(&self) -> u64 {
        self.state_changes.load(Ordering::Relaxed)
    }

    fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    fn words_current(&self) -> usize {
        self.words_current.load(Ordering::Relaxed)
    }

    fn words_peak(&self) -> usize {
        self.words_peak.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> StateReport {
        StateReport {
            state_changes: self.state_changes(),
            epochs: self.epochs(),
            words_current: self.words_current(),
            words_peak: self.words_peak(),
            ..StateReport::default()
        }
    }

    fn address_writes(&self) -> Option<Vec<u64>> {
        None
    }

    fn kind(&self) -> TrackerKind {
        TrackerKind::Lean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn TrackerBackend) -> StateReport {
        let r = backend.alloc(4);
        assert_eq!(r.len, 4);
        backend.record_write(Some(r.word(0)), true); // init: before any epoch
        for _ in 0..3 {
            backend.begin_epoch();
            backend.record_write(Some(r.word(0)), true);
            backend.record_write(Some(r.word(1)), true);
        }
        backend.begin_epoch();
        backend.record_write(Some(r.word(2)), false);
        backend.record_reads(7);
        backend.dealloc(2);
        backend.snapshot()
    }

    #[test]
    fn full_and_lean_agree_on_epochs_state_changes_and_space() {
        let full = exercise(&FullTracker::new());
        let lean = exercise(&LeanTracker::new());
        assert_eq!(full.epochs, 4);
        assert_eq!(full.state_changes, 3, "redundant-only epoch does not count");
        assert_eq!(lean.epochs, full.epochs);
        assert_eq!(lean.state_changes, full.state_changes);
        assert_eq!(lean.words_current, full.words_current);
        assert_eq!(lean.words_peak, full.words_peak);
    }

    #[test]
    fn lean_does_not_count_fine_grained_activity() {
        let lean = exercise(&LeanTracker::new());
        assert_eq!(lean.word_writes, 0);
        assert_eq!(lean.redundant_writes, 0);
        assert_eq!(lean.reads, 0);
        assert_eq!(lean.max_cell_writes, None);
        assert_eq!(LeanTracker::new().address_writes(), None);
    }

    #[test]
    fn full_counts_fine_grained_activity() {
        let full = exercise(&FullTracker::new());
        assert_eq!(full.word_writes, 7); // 1 init + 3 epochs × 2
        assert_eq!(full.redundant_writes, 1);
        assert_eq!(full.reads, 7);
    }

    #[test]
    fn full_address_tracking_records_wear_through_the_backend() {
        let full = FullTracker::with_address_tracking();
        let snap = exercise(&full);
        assert_eq!(snap.max_cell_writes, Some(4), "word 0: init + 3 epochs");
        assert_eq!(snap.tracked_cells, Some(4));
        assert_eq!(snap.total_addr_writes, Some(7));
        assert_eq!(full.address_writes().unwrap()[1], 3);
    }

    #[test]
    fn kinds_are_reported() {
        assert_eq!(FullTracker::new().kind(), TrackerKind::Full);
        assert_eq!(
            FullTracker::with_address_tracking().kind(),
            TrackerKind::FullAddressTracked
        );
        assert_eq!(LeanTracker::new().kind(), TrackerKind::Lean);
    }

    #[test]
    fn lean_allocations_hand_out_disjoint_ranges() {
        let lean = LeanTracker::new();
        let a = lean.alloc(3);
        let b = lean.alloc(2);
        assert_eq!(a.start, 0);
        assert_eq!(b.start, 3);
        assert_eq!(lean.words_peak(), 5);
        lean.dealloc(3);
        assert_eq!(lean.words_current(), 2);
        lean.dealloc(100);
        assert_eq!(lean.words_current(), 0, "dealloc saturates at zero");
    }

    #[test]
    fn backends_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FullTracker>();
        assert_send_sync::<LeanTracker>();
        let lean = std::sync::Arc::new(LeanTracker::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lean = std::sync::Arc::clone(&lean);
                s.spawn(move || {
                    for _ in 0..100 {
                        lean.record_reads(1);
                    }
                });
            }
        });
    }
}
