//! Common traits implemented by every streaming algorithm in the repository —
//! the paper's algorithms and all baselines — so the benchmark harness can treat them
//! uniformly and state changes are always measured the same way.

use crate::report::StateReport;
use crate::tracker::StateTracker;

/// A one-pass insertion-only streaming algorithm over a universe `[n]` of `u64` items.
pub trait StreamAlgorithm {
    /// Human-readable algorithm name (used in benchmark tables).
    ///
    /// Returned as a borrowed string: implementations cache the rendered name at
    /// construction time (or return a static string) instead of `format!`-ing a fresh
    /// `String` on every call, since reporting loops call this once per table row.
    fn name(&self) -> &str;

    /// Processes one stream update.  Implementations must perform all of their memory
    /// activity through tracked containers attached to [`StreamAlgorithm::tracker`].
    ///
    /// Call [`StreamAlgorithm::update`] instead of this method: `update` opens the epoch
    /// that makes the per-update state-change accounting correct.
    fn process_item(&mut self, item: u64);

    /// The tracker recording this algorithm's memory activity.
    fn tracker(&self) -> &StateTracker;

    /// Processes one stream update inside its own accounting epoch.
    fn update(&mut self, item: u64) {
        self.tracker().begin_epoch();
        self.process_item(item);
    }

    /// Processes a batch of stream updates, one accounting epoch per item.
    ///
    /// Semantically identical to calling [`StreamAlgorithm::update`] per item, but the
    /// tracker handle is resolved once for the whole batch (the `tracker()` accessor is
    /// a virtual call on trait objects) and the accounting epochs are opened as one
    /// reserved span ([`StateTracker::begin_epochs`]): the whole batch costs O(1)
    /// atomic read-modify-writes, with each per-item boundary a single relaxed store
    /// ([`StateTracker::enter_epoch`]).  `StateTracker::epochs` still advances per
    /// item, so mid-batch readers observe exactly what the per-item path produces.
    ///
    /// # Specialized batch kernels
    ///
    /// This method is a *dispatch point*, not just sugar: algorithms override it with
    /// specialized kernels that hoist per-item work out of the loop (hash folding,
    /// sign evaluation, level cutoffs, read-charge accumulation) and replace per-cell
    /// tracker calls with the bulk accounting API
    /// ([`StateTracker::record_changed_run`]/[`StateTracker::record_changed_at`]).
    /// Every override is required to be **observably identical** to this default —
    /// same answers, same [`StateReport`], same per-address wear — which the
    /// `batch_laws` property tests assert for every implementation in the repository
    /// (see `DESIGN.md` §1.4 for the equivalence argument).
    fn process_batch(&mut self, items: &[u64]) {
        let tracker = self.tracker().clone();
        let first = tracker.begin_epochs(items.len() as u64);
        for (i, &item) in items.iter().enumerate() {
            tracker.enter_epoch(first + i as u64);
            self.process_item(item);
        }
    }

    /// Processes a run of `count` consecutive occurrences of `item`, one accounting
    /// epoch per occurrence.
    ///
    /// Semantically identical to `count` calls of [`StreamAlgorithm::update`] with the
    /// same item.  Algorithms whose update is a plain count increment (exact counting,
    /// Misra-Gries, SpaceSaving, CountMin) override this with run-length kernels that
    /// perform the stored mutation once (`+count`) and charge the accounting in bulk
    /// via [`StateTracker::record_run_epochs`]; the observable state sequence is
    /// unchanged because every occurrence still gets its own epoch, state-change
    /// claim, and word writes.  Pair with `fsc_streamgen::run_length_encode` (or any
    /// `(item, run)` source) through [`StreamAlgorithm::process_runs`].
    fn process_run(&mut self, item: u64, count: u64) {
        let tracker = self.tracker().clone();
        let first = tracker.begin_epochs(count);
        for i in 0..count {
            tracker.enter_epoch(first + i);
            self.process_item(item);
        }
    }

    /// Processes a run-length encoded stream: each `(item, count)` pair stands for
    /// `count` consecutive occurrences of `item` (opt-in fast path for skewed or
    /// sorted streams; equivalent to processing the decoded stream item by item).
    fn process_runs(&mut self, runs: &[(u64, u64)]) {
        for &(item, count) in runs {
            self.process_run(item, count);
        }
    }

    /// Processes an entire stream (via [`StreamAlgorithm::process_batch`]).
    fn process_stream(&mut self, stream: &[u64]) {
        self.process_batch(stream);
    }

    /// Snapshot of the algorithm's state-change / space counters.
    fn report(&self) -> StateReport {
        self.tracker().snapshot()
    }

    /// Peak space usage in 64-bit words.
    fn space_words(&self) -> usize {
        self.report().words_peak
    }
}

/// A summary that can absorb another summary of the same shape, enabling sharded
/// (split → process per shard → merge) execution.
///
/// `merge_from` folds `other` into `self` so that the merged summary answers queries
/// about the *concatenation* of the two processed streams:
///
/// * linear sketches (CountMin, CountSketch, AMS) built with identical dimensions and
///   hash seeds merge *exactly* — the merged estimates equal those of an unsharded run;
/// * counter summaries (Misra-Gries, SpaceSaving) merge with their usual additive error
///   bounds (`±(m_a + m_b)/(k+1)` resp. `+(m_a + m_b)/k`);
/// * exact structures (frequency vectors, exact counters) merge exactly.
///
/// # Accounting
///
/// A merge is post-stream work, not a stream update.  Implementations open **one**
/// accounting epoch on the receiving tracker for the whole merge, so a merge costs at
/// most one state change; reads of `other` are charged to the receiver.  The canonical
/// way to combine the *reports* of sharded runs is
/// [`StateReport::sharded`](crate::StateReport::sharded), which sums the per-shard
/// epoch/state-change/space counters.
pub trait Mergeable {
    /// Merges `other` into `self`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the two summaries are not merge-compatible (different
    /// dimensions, capacities, or hash seeds).
    fn merge_from(&mut self, other: &Self);
}

/// An algorithm that produces per-item frequency estimates, used for heavy hitters.
pub trait FrequencyEstimator: StreamAlgorithm {
    /// Estimated frequency of `item` (0.0 if the item is unknown to the summary).
    fn estimate(&self, item: u64) -> f64;

    /// The items for which the summary holds explicit information (candidate heavy
    /// hitters).  For sketches without explicit keys this may be empty, in which case
    /// callers must query `estimate` over a candidate set themselves.
    fn tracked_items(&self) -> Vec<u64>;

    /// All tracked items whose estimated frequency is at least `threshold`.
    fn heavy_hitters(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .tracked_items()
            .into_iter()
            .map(|i| (i, self.estimate(i)))
            .filter(|&(_, f)| f >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// An algorithm that estimates the frequency moment `F_p = Σ_i f_i^p`.
pub trait MomentEstimator: StreamAlgorithm {
    /// The moment order `p` this instance estimates.
    fn p(&self) -> f64;

    /// The estimate of `F_p` given everything seen so far.
    fn estimate_moment(&self) -> f64;
}

/// An algorithm that estimates the Shannon entropy `H(f) = −Σ (f_i/m) log2(f_i/m)` of
/// the empirical distribution of the stream.
pub trait EntropyEstimator: StreamAlgorithm {
    /// The entropy estimate, in bits.
    fn estimate_entropy(&self) -> f64;
}

/// An algorithm that recovers the support of a sparse frequency vector.
pub trait SupportRecovery: StreamAlgorithm {
    /// The recovered support (distinct items believed to occur in the stream).
    fn recovered_support(&self) -> Vec<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackedCell;

    /// Minimal test double: counts stream length in a tracked cell.
    struct LengthCounter {
        len: TrackedCell<u64>,
        tracker: StateTracker,
    }

    impl LengthCounter {
        fn new() -> Self {
            let tracker = StateTracker::new();
            let len = TrackedCell::new(&tracker, 0);
            Self { len, tracker }
        }
    }

    impl StreamAlgorithm for LengthCounter {
        fn name(&self) -> &str {
            "length-counter"
        }
        fn process_item(&mut self, _item: u64) {
            self.len.modify(|v| v + 1);
        }
        fn tracker(&self) -> &StateTracker {
            &self.tracker
        }
    }

    impl FrequencyEstimator for LengthCounter {
        fn estimate(&self, _item: u64) -> f64 {
            *self.len.peek() as f64
        }
        fn tracked_items(&self) -> Vec<u64> {
            vec![0]
        }
    }

    #[test]
    fn update_opens_one_epoch_per_item() {
        let mut a = LengthCounter::new();
        a.process_stream(&[5, 5, 7, 9]);
        let r = a.report();
        assert_eq!(r.epochs, 4);
        // The deterministic counter writes on every update: the exact behaviour the
        // paper identifies as undesirable.
        assert_eq!(r.state_changes, 4);
        assert_eq!(*a.len.peek(), 4);
        assert_eq!(a.space_words(), 1);
    }

    #[test]
    fn process_batch_matches_per_item_updates() {
        let mut batched = LengthCounter::new();
        batched.process_batch(&[1, 2, 3, 4, 5]);
        let mut one_by_one = LengthCounter::new();
        for item in [1, 2, 3, 4, 5] {
            one_by_one.update(item);
        }
        assert_eq!(batched.report(), one_by_one.report());
        assert_eq!(*batched.len.peek(), *one_by_one.len.peek());
    }

    #[test]
    fn process_runs_matches_per_item_updates() {
        let mut run_based = LengthCounter::new();
        run_based.process_runs(&[(5, 3), (7, 0), (9, 2)]);
        let mut one_by_one = LengthCounter::new();
        for item in [5, 5, 5, 9, 9] {
            one_by_one.update(item);
        }
        assert_eq!(run_based.report(), one_by_one.report());
        assert_eq!(*run_based.len.peek(), *one_by_one.len.peek());
    }

    #[test]
    fn heavy_hitters_default_sorts_by_estimate() {
        let mut a = LengthCounter::new();
        a.process_stream(&[1, 2, 3]);
        let hh = a.heavy_hitters(1.0);
        assert_eq!(hh, vec![(0, 3.0)]);
        assert!(a.heavy_hitters(10.0).is_empty());
    }
}
