//! Common traits implemented by every streaming algorithm in the repository —
//! the paper's algorithms and all baselines — so the benchmark harness can treat them
//! uniformly and state changes are always measured the same way.

use crate::report::StateReport;
use crate::tracker::StateTracker;

/// A one-pass insertion-only streaming algorithm over a universe `[n]` of `u64` items.
pub trait StreamAlgorithm {
    /// Human-readable algorithm name (used in benchmark tables).
    fn name(&self) -> String;

    /// Processes one stream update.  Implementations must perform all of their memory
    /// activity through tracked containers attached to [`StreamAlgorithm::tracker`].
    ///
    /// Call [`StreamAlgorithm::update`] instead of this method: `update` opens the epoch
    /// that makes the per-update state-change accounting correct.
    fn process_item(&mut self, item: u64);

    /// The tracker recording this algorithm's memory activity.
    fn tracker(&self) -> &StateTracker;

    /// Processes one stream update inside its own accounting epoch.
    fn update(&mut self, item: u64) {
        self.tracker().begin_epoch();
        self.process_item(item);
    }

    /// Processes an entire stream.
    fn process_stream(&mut self, stream: &[u64]) {
        for &item in stream {
            self.update(item);
        }
    }

    /// Snapshot of the algorithm's state-change / space counters.
    fn report(&self) -> StateReport {
        self.tracker().snapshot()
    }

    /// Peak space usage in 64-bit words.
    fn space_words(&self) -> usize {
        self.report().words_peak
    }
}

/// An algorithm that produces per-item frequency estimates, used for heavy hitters.
pub trait FrequencyEstimator: StreamAlgorithm {
    /// Estimated frequency of `item` (0.0 if the item is unknown to the summary).
    fn estimate(&self, item: u64) -> f64;

    /// The items for which the summary holds explicit information (candidate heavy
    /// hitters).  For sketches without explicit keys this may be empty, in which case
    /// callers must query `estimate` over a candidate set themselves.
    fn tracked_items(&self) -> Vec<u64>;

    /// All tracked items whose estimated frequency is at least `threshold`.
    fn heavy_hitters(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .tracked_items()
            .into_iter()
            .map(|i| (i, self.estimate(i)))
            .filter(|&(_, f)| f >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// An algorithm that estimates the frequency moment `F_p = Σ_i f_i^p`.
pub trait MomentEstimator: StreamAlgorithm {
    /// The moment order `p` this instance estimates.
    fn p(&self) -> f64;

    /// The estimate of `F_p` given everything seen so far.
    fn estimate_moment(&self) -> f64;
}

/// An algorithm that estimates the Shannon entropy `H(f) = −Σ (f_i/m) log2(f_i/m)` of
/// the empirical distribution of the stream.
pub trait EntropyEstimator: StreamAlgorithm {
    /// The entropy estimate, in bits.
    fn estimate_entropy(&self) -> f64;
}

/// An algorithm that recovers the support of a sparse frequency vector.
pub trait SupportRecovery: StreamAlgorithm {
    /// The recovered support (distinct items believed to occur in the stream).
    fn recovered_support(&self) -> Vec<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackedCell;

    /// Minimal test double: counts stream length in a tracked cell.
    struct LengthCounter {
        len: TrackedCell<u64>,
        tracker: StateTracker,
    }

    impl LengthCounter {
        fn new() -> Self {
            let tracker = StateTracker::new();
            let len = TrackedCell::new(&tracker, 0);
            Self { len, tracker }
        }
    }

    impl StreamAlgorithm for LengthCounter {
        fn name(&self) -> String {
            "length-counter".into()
        }
        fn process_item(&mut self, _item: u64) {
            self.len.modify(|v| v + 1);
        }
        fn tracker(&self) -> &StateTracker {
            &self.tracker
        }
    }

    impl FrequencyEstimator for LengthCounter {
        fn estimate(&self, _item: u64) -> f64 {
            *self.len.peek() as f64
        }
        fn tracked_items(&self) -> Vec<u64> {
            vec![0]
        }
    }

    #[test]
    fn update_opens_one_epoch_per_item() {
        let mut a = LengthCounter::new();
        a.process_stream(&[5, 5, 7, 9]);
        let r = a.report();
        assert_eq!(r.epochs, 4);
        // The deterministic counter writes on every update: the exact behaviour the
        // paper identifies as undesirable.
        assert_eq!(r.state_changes, 4);
        assert_eq!(*a.len.peek(), 4);
        assert_eq!(a.space_words(), 1);
    }

    #[test]
    fn heavy_hitters_default_sorts_by_estimate() {
        let mut a = LengthCounter::new();
        a.process_stream(&[1, 2, 3]);
        let hh = a.heavy_hitters(1.0);
        assert_eq!(hh, vec![(0, 3.0)]);
        assert!(a.heavy_hitters(10.0).is_empty());
    }
}
