//! Common traits implemented by every streaming algorithm in the repository —
//! the paper's algorithms and all baselines — so the benchmark harness can treat them
//! uniformly and state changes are always measured the same way.

use crate::report::StateReport;
use crate::tracker::StateTracker;

/// A one-pass insertion-only streaming algorithm over a universe `[n]` of `u64` items.
pub trait StreamAlgorithm {
    /// Human-readable algorithm name (used in benchmark tables).
    ///
    /// Returned as a borrowed string: implementations cache the rendered name at
    /// construction time (or return a static string) instead of `format!`-ing a fresh
    /// `String` on every call, since reporting loops call this once per table row.
    fn name(&self) -> &str;

    /// Processes one stream update.  Implementations must perform all of their memory
    /// activity through tracked containers attached to [`StreamAlgorithm::tracker`].
    ///
    /// Call [`StreamAlgorithm::update`] instead of this method: `update` opens the epoch
    /// that makes the per-update state-change accounting correct.
    fn process_item(&mut self, item: u64);

    /// The tracker recording this algorithm's memory activity.
    fn tracker(&self) -> &StateTracker;

    /// Processes one stream update inside its own accounting epoch.
    fn update(&mut self, item: u64) {
        self.tracker().begin_epoch();
        self.process_item(item);
    }

    /// Processes a batch of stream updates, one accounting epoch per item.
    ///
    /// Semantically identical to calling [`StreamAlgorithm::update`] per item, but the
    /// tracker handle is resolved once for the whole batch (the `tracker()` accessor is
    /// a virtual call on trait objects) and the accounting epochs are opened as one
    /// reserved span ([`StateTracker::begin_epochs`]): the whole batch costs O(1)
    /// atomic read-modify-writes, with each per-item boundary a single relaxed store
    /// ([`StateTracker::enter_epoch`]).  `StateTracker::epochs` still advances per
    /// item, so mid-batch readers observe exactly what the per-item path produces.
    ///
    /// # Specialized batch kernels
    ///
    /// This method is a *dispatch point*, not just sugar: algorithms override it with
    /// specialized kernels that hoist per-item work out of the loop (hash folding,
    /// sign evaluation, level cutoffs, read-charge accumulation) and replace per-cell
    /// tracker calls with the bulk accounting API
    /// ([`StateTracker::record_changed_run`]/[`StateTracker::record_changed_at`]).
    /// Every override is required to be **observably identical** to this default —
    /// same answers, same [`StateReport`], same per-address wear — which the
    /// `batch_laws` property tests assert for every implementation in the repository
    /// (see `DESIGN.md` §1.4 for the equivalence argument).
    fn process_batch(&mut self, items: &[u64]) {
        let tracker = self.tracker().clone();
        let first = tracker.begin_epochs(items.len() as u64);
        for (i, &item) in items.iter().enumerate() {
            tracker.enter_epoch(first + i as u64);
            self.process_item(item);
        }
    }

    /// Processes a run of `count` consecutive occurrences of `item`, one accounting
    /// epoch per occurrence.
    ///
    /// Semantically identical to `count` calls of [`StreamAlgorithm::update`] with the
    /// same item.  Algorithms whose update is a plain count increment (exact counting,
    /// Misra-Gries, SpaceSaving, CountMin) override this with run-length kernels that
    /// perform the stored mutation once (`+count`) and charge the accounting in bulk
    /// via [`StateTracker::record_run_epochs`]; the observable state sequence is
    /// unchanged because every occurrence still gets its own epoch, state-change
    /// claim, and word writes.  Pair with `fsc_streamgen::run_length_encode` (or any
    /// `(item, run)` source) through [`StreamAlgorithm::process_runs`].
    fn process_run(&mut self, item: u64, count: u64) {
        let tracker = self.tracker().clone();
        let first = tracker.begin_epochs(count);
        for i in 0..count {
            tracker.enter_epoch(first + i);
            self.process_item(item);
        }
    }

    /// Processes a run-length encoded stream: each `(item, count)` pair stands for
    /// `count` consecutive occurrences of `item` (opt-in fast path for skewed or
    /// sorted streams; equivalent to processing the decoded stream item by item).
    fn process_runs(&mut self, runs: &[(u64, u64)]) {
        for &(item, count) in runs {
            self.process_run(item, count);
        }
    }

    /// Processes an entire stream (via [`StreamAlgorithm::process_batch`]).
    fn process_stream(&mut self, stream: &[u64]) {
        self.process_batch(stream);
    }

    /// Snapshot of the algorithm's state-change / space counters.
    fn report(&self) -> StateReport {
        self.tracker().snapshot()
    }

    /// Peak space usage in 64-bit words.
    fn space_words(&self) -> usize {
        self.report().words_peak
    }
}

/// A summary that can absorb another summary of the same shape, enabling sharded
/// (split → process per shard → merge) execution.
///
/// `merge_from` folds `other` into `self` so that the merged summary answers queries
/// about the *concatenation* of the two processed streams:
///
/// * linear sketches (CountMin, CountSketch, AMS) built with identical dimensions and
///   hash seeds merge *exactly* — the merged estimates equal those of an unsharded run;
/// * counter summaries (Misra-Gries, SpaceSaving) merge with their usual additive error
///   bounds (`±(m_a + m_b)/(k+1)` resp. `+(m_a + m_b)/k`);
/// * exact structures (frequency vectors, exact counters) merge exactly.
///
/// # Accounting
///
/// A merge is post-stream work, not a stream update.  Implementations open **one**
/// accounting epoch on the receiving tracker for the whole merge, so a merge costs at
/// most one state change; reads of `other` are charged to the receiver.  The canonical
/// way to combine the *reports* of sharded runs is
/// [`StateReport::sharded`](crate::StateReport::sharded), which sums the per-shard
/// epoch/state-change/space counters.
pub trait Mergeable {
    /// Merges `other` into `self`.
    ///
    /// # Panics
    ///
    /// Implementations panic when the two summaries are not merge-compatible (different
    /// dimensions, capacities, or hash seeds).
    fn merge_from(&mut self, other: &Self);
}

/// A typed question asked of a summary through the capability-agnostic
/// [`Queryable`] layer.
///
/// The enum replaces per-type downcasts in harness and engine code: a caller holding
/// a `dyn Queryable` (e.g. an engine shard from the `fsc-bench` registry) asks any of
/// these and matches on the [`Answer`], instead of knowing the concrete summary type
/// and its capability traits.  Algorithms answer the queries their capability traits
/// support and return [`Answer::Unsupported`] for the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Estimated frequency of one item ([`FrequencyEstimator::estimate`]).
    Point(u64),
    /// All tracked items with estimate ≥ `threshold`, sorted by decreasing estimate
    /// ([`FrequencyEstimator::heavy_hitters`]).
    HeavyHitters {
        /// Absolute frequency threshold.
        threshold: f64,
    },
    /// The items the summary holds explicit information for
    /// ([`FrequencyEstimator::tracked_items`]).
    TrackedItems,
    /// The frequency-moment estimate `F̂_p` ([`MomentEstimator::estimate_moment`]).
    Moment,
    /// The Shannon-entropy estimate in bits ([`EntropyEstimator::estimate_entropy`]).
    Entropy,
    /// The recovered support ([`SupportRecovery::recovered_support`]).
    Support,
}

/// A typed answer to a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A scalar estimate (point frequency, moment, entropy).
    Scalar(f64),
    /// `(item, estimated frequency)` pairs (heavy hitters).
    ItemWeights(Vec<(u64, f64)>),
    /// A plain item list (tracked items, recovered support).
    Items(Vec<u64>),
    /// The summary does not support the asked query.
    Unsupported,
}

impl Answer {
    /// The scalar payload, if this is a scalar answer.
    pub fn scalar(&self) -> Option<f64> {
        match self {
            Answer::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// The item list, if this is an item-list answer.
    pub fn items(&self) -> Option<&[u64]> {
        match self {
            Answer::Items(v) => Some(v),
            _ => None,
        }
    }

    /// The weighted-item list, if this is a heavy-hitter answer.
    pub fn item_weights(&self) -> Option<&[(u64, f64)]> {
        match self {
            Answer::ItemWeights(v) => Some(v),
            _ => None,
        }
    }
}

/// The uniform query layer over [`StreamAlgorithm`]: one enum-based entry point for
/// every answer type the capability traits ([`FrequencyEstimator`],
/// [`MomentEstimator`], [`EntropyEstimator`], [`SupportRecovery`]) expose.
///
/// Implementations delegate to whichever capability traits the type implements and
/// return [`Answer::Unsupported`] otherwise — the [`crate::impl_queryable!`] macro
/// generates exactly that from a capability list.  `Queryable` is object-safe, so a
/// `Box<dyn Queryable>` is what constructor registries hand out: callers get ingest
/// (via the [`StreamAlgorithm`] supertrait) and typed queries without a single
/// downcast.
pub trait Queryable: StreamAlgorithm {
    /// Answers `query`, or [`Answer::Unsupported`] if the summary lacks the capability.
    fn query(&self, query: &Query) -> Answer;

    /// Whether the summary can answer `query` (default: probes [`Queryable::query`]).
    fn supports(&self, query: &Query) -> bool {
        !matches!(self.query(query), Answer::Unsupported)
    }
}

/// A summary that can be checkpointed to a compact, versioned byte string and
/// restored to an observably identical instance.
///
/// # The snapshot law
///
/// For every implementation, `restore(checkpoint(a))` must be **observably
/// identical** to `a`: the same answers to every query, the same
/// [`StateReport`], the same per-address wear table — and, because internal
/// randomness and caches are part of the serialized state, identical behaviour on
/// any stream processed *after* the restore.  `tests/snapshot_laws.rs` pins this for
/// every production algorithm in the repository at random checkpoint positions.
///
/// # Format
///
/// Checkpoints use the versioned header and length-checked encoding of
/// [`crate::snapshot`]: corrupt, truncated, foreign, or stale-version bytes are
/// rejected with a typed [`SnapshotError`] — never a panic.  The tracker's complete
/// counter state ([`crate::snapshot::TrackerState`]) is embedded, so restoring does
/// not lose accounting history.
///
/// Checkpointing is defined for summaries that **own** their tracker (standalone
/// construction).  A sub-summary sharing an enclosing algorithm's tracker is
/// checkpointed through its enclosing algorithm.
pub trait Snapshot: StreamAlgorithm {
    /// Stable algorithm id written into the checkpoint header (e.g. `"count_min"`).
    fn snapshot_id(&self) -> &'static str;

    /// Serializes the complete summary — configuration, data, internal randomness,
    /// and tracker accounting — into a versioned byte string.
    fn checkpoint(&self) -> Vec<u8>;

    /// Rebuilds a summary from [`Snapshot::checkpoint`] bytes.
    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError>
    where
        Self: Sized;

    /// Serializes a **delta** checkpoint against a previously captured base: the
    /// `FSCD` bytes transforming `since` into the current full checkpoint (see
    /// [`crate::delta`]).  Applying the result to `since`'s bytes with
    /// [`crate::delta::apply_delta`] reproduces [`Snapshot::checkpoint`] exactly, and
    /// the delta never exceeds the full checkpoint by more than
    /// [`crate::delta::DELTA_OVERHEAD`] plus the id length.  For a summary with few
    /// state changes the delta is small — persistence cost proportional to *changes*,
    /// the durability face of the paper's thesis.
    ///
    /// The default implementation diffs the serialized state, which is correct for
    /// every algorithm unconditionally; the tracker's dirty journal
    /// ([`crate::StateTracker::dirty_since`]) is the observability layer that bounds
    /// how much could have changed.
    fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError> {
        crate::delta::encode_delta(
            since.bytes(),
            &self.checkpoint(),
            since.epoch(),
            self.report().epochs,
        )
    }
}

use crate::delta::BaseRef;
use crate::snapshot::SnapshotError;

/// Generates a [`Queryable`] implementation from a capability list.
///
/// ```ignore
/// impl_queryable!(CountMin: [frequency]);
/// impl_queryable!(ExactCounting: [frequency, moment, entropy, support]);
/// ```
///
/// Capabilities: `frequency` (answers [`Query::Point`], [`Query::HeavyHitters`], and
/// [`Query::TrackedItems`] via [`FrequencyEstimator`]), `moment`
/// ([`MomentEstimator`]), `entropy` ([`EntropyEstimator`]), `support`
/// ([`SupportRecovery`]).  Queries outside the listed capabilities answer
/// [`Answer::Unsupported`].
#[macro_export]
macro_rules! impl_queryable {
    ($ty:ty : [$($cap:ident),* $(,)?]) => {
        impl $crate::Queryable for $ty {
            fn query(&self, query: &$crate::Query) -> $crate::Answer {
                $(
                    if let Some(answer) = $crate::impl_queryable!(@try $cap, self, query) {
                        return answer;
                    }
                )*
                let _ = query;
                $crate::Answer::Unsupported
            }
        }
    };
    // Fully-qualified trait calls: several algorithms carry inherent methods with the
    // same names (e.g. a no-argument `heavy_hitters`), which would otherwise shadow
    // the capability-trait methods inside the expansion.
    (@try frequency, $self:expr, $query:expr) => {
        match *$query {
            $crate::Query::Point(item) => Some($crate::Answer::Scalar(
                $crate::FrequencyEstimator::estimate($self, item),
            )),
            $crate::Query::HeavyHitters { threshold } => Some($crate::Answer::ItemWeights(
                $crate::FrequencyEstimator::heavy_hitters($self, threshold),
            )),
            $crate::Query::TrackedItems => Some($crate::Answer::Items(
                $crate::FrequencyEstimator::tracked_items($self),
            )),
            _ => None,
        }
    };
    (@try moment, $self:expr, $query:expr) => {
        match *$query {
            $crate::Query::Moment => Some($crate::Answer::Scalar(
                $crate::MomentEstimator::estimate_moment($self),
            )),
            _ => None,
        }
    };
    (@try entropy, $self:expr, $query:expr) => {
        match *$query {
            $crate::Query::Entropy => Some($crate::Answer::Scalar(
                $crate::EntropyEstimator::estimate_entropy($self),
            )),
            _ => None,
        }
    };
    (@try support, $self:expr, $query:expr) => {
        match *$query {
            $crate::Query::Support => Some($crate::Answer::Items(
                $crate::SupportRecovery::recovered_support($self),
            )),
            _ => None,
        }
    };
}

/// An algorithm that produces per-item frequency estimates, used for heavy hitters.
pub trait FrequencyEstimator: StreamAlgorithm {
    /// Estimated frequency of `item` (0.0 if the item is unknown to the summary).
    fn estimate(&self, item: u64) -> f64;

    /// The items for which the summary holds explicit information (candidate heavy
    /// hitters).  For sketches without explicit keys this may be empty, in which case
    /// callers must query `estimate` over a candidate set themselves.
    fn tracked_items(&self) -> Vec<u64>;

    /// All tracked items whose estimated frequency is at least `threshold`.
    fn heavy_hitters(&self, threshold: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .tracked_items()
            .into_iter()
            .map(|i| (i, self.estimate(i)))
            .filter(|&(_, f)| f >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// An algorithm that estimates the frequency moment `F_p = Σ_i f_i^p`.
pub trait MomentEstimator: StreamAlgorithm {
    /// The moment order `p` this instance estimates.
    fn p(&self) -> f64;

    /// The estimate of `F_p` given everything seen so far.
    fn estimate_moment(&self) -> f64;
}

/// An algorithm that estimates the Shannon entropy `H(f) = −Σ (f_i/m) log2(f_i/m)` of
/// the empirical distribution of the stream.
pub trait EntropyEstimator: StreamAlgorithm {
    /// The entropy estimate, in bits.
    fn estimate_entropy(&self) -> f64;
}

/// An algorithm that recovers the support of a sparse frequency vector.
pub trait SupportRecovery: StreamAlgorithm {
    /// The recovered support (distinct items believed to occur in the stream).
    fn recovered_support(&self) -> Vec<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrackedCell;

    /// Minimal test double: counts stream length in a tracked cell.
    struct LengthCounter {
        len: TrackedCell<u64>,
        tracker: StateTracker,
    }

    impl LengthCounter {
        fn new() -> Self {
            let tracker = StateTracker::new();
            let len = TrackedCell::new(&tracker, 0);
            Self { len, tracker }
        }
    }

    impl StreamAlgorithm for LengthCounter {
        fn name(&self) -> &str {
            "length-counter"
        }
        fn process_item(&mut self, _item: u64) {
            self.len.modify(|v| v + 1);
        }
        fn tracker(&self) -> &StateTracker {
            &self.tracker
        }
    }

    impl FrequencyEstimator for LengthCounter {
        fn estimate(&self, _item: u64) -> f64 {
            *self.len.peek() as f64
        }
        fn tracked_items(&self) -> Vec<u64> {
            vec![0]
        }
    }

    crate::impl_queryable!(LengthCounter: [frequency]);

    #[test]
    fn update_opens_one_epoch_per_item() {
        let mut a = LengthCounter::new();
        a.process_stream(&[5, 5, 7, 9]);
        let r = a.report();
        assert_eq!(r.epochs, 4);
        // The deterministic counter writes on every update: the exact behaviour the
        // paper identifies as undesirable.
        assert_eq!(r.state_changes, 4);
        assert_eq!(*a.len.peek(), 4);
        assert_eq!(a.space_words(), 1);
    }

    #[test]
    fn process_batch_matches_per_item_updates() {
        let mut batched = LengthCounter::new();
        batched.process_batch(&[1, 2, 3, 4, 5]);
        let mut one_by_one = LengthCounter::new();
        for item in [1, 2, 3, 4, 5] {
            one_by_one.update(item);
        }
        assert_eq!(batched.report(), one_by_one.report());
        assert_eq!(*batched.len.peek(), *one_by_one.len.peek());
    }

    #[test]
    fn process_runs_matches_per_item_updates() {
        let mut run_based = LengthCounter::new();
        run_based.process_runs(&[(5, 3), (7, 0), (9, 2)]);
        let mut one_by_one = LengthCounter::new();
        for item in [5, 5, 5, 9, 9] {
            one_by_one.update(item);
        }
        assert_eq!(run_based.report(), one_by_one.report());
        assert_eq!(*run_based.len.peek(), *one_by_one.len.peek());
    }

    #[test]
    fn queryable_macro_answers_listed_capabilities_and_rejects_the_rest() {
        let mut a = LengthCounter::new();
        a.process_stream(&[1, 2, 3]);
        // Trait-object use: ingest + typed queries without a downcast.
        let dynamic: &dyn Queryable = &a;
        assert_eq!(dynamic.query(&Query::Point(7)), Answer::Scalar(3.0));
        assert_eq!(dynamic.query(&Query::TrackedItems), Answer::Items(vec![0]));
        assert_eq!(
            dynamic.query(&Query::HeavyHitters { threshold: 1.0 }),
            Answer::ItemWeights(vec![(0, 3.0)])
        );
        assert_eq!(dynamic.query(&Query::Moment), Answer::Unsupported);
        assert_eq!(dynamic.query(&Query::Entropy), Answer::Unsupported);
        assert_eq!(dynamic.query(&Query::Support), Answer::Unsupported);
        assert!(dynamic.supports(&Query::Point(0)));
        assert!(!dynamic.supports(&Query::Moment));
        // Answer accessors.
        assert_eq!(Answer::Scalar(2.0).scalar(), Some(2.0));
        assert_eq!(Answer::Items(vec![1]).items(), Some(&[1u64][..]));
        assert!(Answer::Unsupported.scalar().is_none());
        assert!(Answer::Scalar(0.0).items().is_none());
        assert!(Answer::ItemWeights(vec![]).item_weights().is_some());
    }

    #[test]
    fn tracker_state_export_import_reproduces_report_wear_and_clock() {
        for kind in [
            crate::TrackerKind::Full,
            crate::TrackerKind::FullAddressTracked,
            crate::TrackerKind::Lean,
        ] {
            let original = StateTracker::of_kind(kind);
            let range = original.alloc(4);
            original.record_write(Some(range.word(0)), true);
            for i in 0..5u64 {
                original.begin_epoch();
                original.record_write(Some(range.word((i % 4) as usize)), i % 2 == 0);
            }
            original.record_reads(9);
            original.dealloc(1);

            let state = original.export_state();
            let restored = StateTracker::of_kind(kind);
            // The restore path allocates during container rebuilds; import clobbers it.
            restored.alloc(2);
            restored.record_write(None, true);
            restored.import_state(&state);

            assert_eq!(restored.snapshot(), original.snapshot());
            assert_eq!(restored.address_writes(), original.address_writes());
            assert_eq!(restored.export_state(), state);
            // The clock continues identically: the next epoch claims a state change
            // on both (or neither).
            original.begin_epoch();
            original.record_write(Some(range.word(1)), true);
            restored.begin_epoch();
            restored.record_write(Some(range.word(1)), true);
            assert_eq!(restored.snapshot(), original.snapshot());
            // And post-import allocations continue from the same cursor.
            assert_eq!(restored.alloc(3), original.alloc(3));
        }
    }

    #[test]
    fn heavy_hitters_default_sorts_by_estimate() {
        let mut a = LengthCounter::new();
        a.process_stream(&[1, 2, 3]);
        let hh = a.heavy_hitters(1.0);
        assert_eq!(hh, vec![(0, 3.0)]);
        assert!(a.heavy_hitters(10.0).is_empty());
    }
}
