//! # fsc-streamgen — synthetic stream workloads and exact ground truth
//!
//! Every experiment in the repository draws its input from this crate:
//!
//! * [`ground_truth::FrequencyVector`] — the exact frequency vector of a stream, with
//!   exact `F_p` moments, `L_p` norms, Shannon entropy, and heavy-hitter sets, used to
//!   score every approximate algorithm.
//! * [`zipf`] — Zipfian streams, the standard model for skewed real-world data
//!   (network flows, query logs).
//! * [`uniform`] — uniform, permutation, and all-distinct streams (the hard inputs for
//!   state-change lower bounds).
//! * [`planted`] — streams with explicitly planted heavy hitters of known frequency.
//! * [`blocks`] — the Section 1.4 counterexample stream on which pick-and-drop style
//!   sampling algorithms miss the true `L_2` heavy hitter.
//! * [`lower_bound`] — the adversarial stream pairs `(S_1, S_2)` from Theorems 1.2/1.4.
//! * [`netflow`] — synthetic elephant/mice network-flow traces (the documented
//!   substitution for proprietary traffic traces).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocks;
pub mod ground_truth;
pub mod lower_bound;
pub mod netflow;
pub mod planted;
pub mod uniform;
pub mod zipf;

pub use ground_truth::FrequencyVector;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffles a stream in place, deterministically for a given seed.
pub fn shuffle(stream: &mut [u64], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    stream.shuffle(&mut rng);
}

/// Interleaves two streams by alternating elements (the shorter stream is exhausted
/// first, then the remainder of the longer one is appended).
///
/// The output is built in one exact-capacity allocation: the alternating prefix is
/// written pairwise and the longer stream's tail is appended with one `extend_from_slice`,
/// so no push ever grows the buffer.
pub fn interleave(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let common = a.len().min(b.len());
    for (&x, &y) in a[..common].iter().zip(&b[..common]) {
        out.push(x);
        out.push(y);
    }
    out.extend_from_slice(&a[common..]);
    out.extend_from_slice(&b[common..]);
    out
}

/// Run-length encodes a stream: maximal runs of consecutive equal items become one
/// `(item, count)` pair, in order.  Decoding reproduces the stream exactly, so
/// feeding the pairs to [`StreamAlgorithm::process_runs`] is equivalent to processing
/// the stream item by item — the opt-in fast path for sorted or heavily bursty
/// streams (e.g. [`uniform::grouped_stream`], packet traces with flow locality).
///
/// [`StreamAlgorithm::process_runs`]: fsc_state::StreamAlgorithm::process_runs
pub fn run_length_encode(stream: &[u64]) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &item in stream {
        match runs.last_mut() {
            Some((last, count)) if *last == item => *count += 1,
            _ => runs.push((item, 1)),
        }
    }
    runs
}

/// Iterator form of [`run_length_encode`]: yields `(item, run)` pairs lazily without
/// materialising the encoded vector (for pre-pass pipelines over large streams).
pub fn runs(stream: &[u64]) -> Runs<'_> {
    Runs { rest: stream }
}

/// Lazy maximal-run iterator over a stream (see [`runs`]).
#[derive(Debug, Clone)]
pub struct Runs<'a> {
    rest: &'a [u64],
}

impl Iterator for Runs<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let (&item, _) = self.rest.split_first()?;
        let len = self.rest.iter().take_while(|&&x| x == item).count();
        self.rest = &self.rest[len..];
        Some((item, len as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_and_preserves_multiset() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b: Vec<u64> = (0..100).collect();
        shuffle(&mut a, 9);
        shuffle(&mut b, 9);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        let mut c: Vec<u64> = (0..100).collect();
        shuffle(&mut c, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn interleave_preserves_all_elements() {
        let a = vec![1, 1, 1];
        let b = vec![2, 2, 2, 2, 2];
        let out = interleave(&a, &b);
        assert_eq!(out.len(), 8);
        assert_eq!(out.capacity(), 8, "exact-capacity reservation");
        assert_eq!(out.iter().filter(|&&x| x == 1).count(), 3);
        assert_eq!(out, vec![1, 2, 1, 2, 1, 2, 2, 2]);
        assert_eq!(interleave(&[], &[7]), vec![7]);
        assert_eq!(interleave(&[7], &[]), vec![7]);
        // The longer-a case appends a's tail after the alternating prefix.
        assert_eq!(interleave(&[1, 1, 1], &[2]), vec![1, 2, 1, 1]);
    }

    #[test]
    fn run_length_encoding_round_trips() {
        let stream = [5u64, 5, 5, 2, 9, 9, 5, 5];
        let encoded = run_length_encode(&stream);
        assert_eq!(encoded, vec![(5, 3), (2, 1), (9, 2), (5, 2)]);
        let decoded: Vec<u64> = encoded
            .iter()
            .flat_map(|&(item, count)| std::iter::repeat_n(item, count as usize))
            .collect();
        assert_eq!(decoded, stream);
        assert_eq!(runs(&stream).collect::<Vec<_>>(), encoded);
        assert!(run_length_encode(&[]).is_empty());
        assert_eq!(runs(&[]).next(), None);
        assert_eq!(run_length_encode(&[3]), vec![(3, 1)]);
    }

    #[test]
    fn runs_iterator_matches_encoding_on_generated_streams() {
        let stream = crate::uniform::grouped_stream(37, 11);
        assert_eq!(
            runs(&stream).collect::<Vec<_>>(),
            run_length_encode(&stream)
        );
        assert_eq!(runs(&stream).count(), 37);
        assert!(runs(&stream).all(|(_, c)| c == 11));
    }
}
