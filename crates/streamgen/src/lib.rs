//! # fsc-streamgen — synthetic stream workloads and exact ground truth
//!
//! Every experiment in the repository draws its input from this crate:
//!
//! * [`ground_truth::FrequencyVector`] — the exact frequency vector of a stream, with
//!   exact `F_p` moments, `L_p` norms, Shannon entropy, and heavy-hitter sets, used to
//!   score every approximate algorithm.
//! * [`zipf`] — Zipfian streams, the standard model for skewed real-world data
//!   (network flows, query logs).
//! * [`uniform`] — uniform, permutation, and all-distinct streams (the hard inputs for
//!   state-change lower bounds).
//! * [`planted`] — streams with explicitly planted heavy hitters of known frequency.
//! * [`blocks`] — the Section 1.4 counterexample stream on which pick-and-drop style
//!   sampling algorithms miss the true `L_2` heavy hitter.
//! * [`lower_bound`] — the adversarial stream pairs `(S_1, S_2)` from Theorems 1.2/1.4.
//! * [`netflow`] — synthetic elephant/mice network-flow traces (the documented
//!   substitution for proprietary traffic traces).
//!
//! All generators are deterministic given a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod blocks;
pub mod ground_truth;
pub mod lower_bound;
pub mod netflow;
pub mod planted;
pub mod uniform;
pub mod zipf;

pub use ground_truth::FrequencyVector;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffles a stream in place, deterministically for a given seed.
pub fn shuffle(stream: &mut [u64], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    stream.shuffle(&mut rng);
}

/// Interleaves two streams by alternating elements (the shorter stream is exhausted
/// first, then the remainder of the longer one is appended).
pub fn interleave(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.iter();
    let mut ib = b.iter();
    loop {
        match (ia.next(), ib.next()) {
            (Some(&x), Some(&y)) => {
                out.push(x);
                out.push(y);
            }
            (Some(&x), None) => {
                out.push(x);
                out.extend(ia.copied());
                break;
            }
            (None, Some(&y)) => {
                out.push(y);
                out.extend(ib.copied());
                break;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_deterministic_and_preserves_multiset() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b: Vec<u64> = (0..100).collect();
        shuffle(&mut a, 9);
        shuffle(&mut b, 9);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        let mut c: Vec<u64> = (0..100).collect();
        shuffle(&mut c, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn interleave_preserves_all_elements() {
        let a = vec![1, 1, 1];
        let b = vec![2, 2, 2, 2, 2];
        let out = interleave(&a, &b);
        assert_eq!(out.len(), 8);
        assert_eq!(out.iter().filter(|&&x| x == 1).count(), 3);
        assert_eq!(out[..2], [1, 2]);
        assert_eq!(interleave(&[], &[7]), vec![7]);
        assert_eq!(interleave(&[7], &[]), vec![7]);
    }
}
