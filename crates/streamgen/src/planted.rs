//! Streams with explicitly planted heavy hitters of known frequency.
//!
//! A planted stream consists of a background of light items (each appearing a handful
//! of times) plus a small set of planted items whose frequencies are chosen by the
//! caller.  Because the planted frequencies are exact, these streams give sharp
//! accuracy measurements for heavy-hitter frequency estimation (experiment F4) and for
//! the `F_p` level-set machinery (experiment F3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shuffle;

/// Description of a planted-heavy-hitter workload.
#[derive(Debug, Clone)]
pub struct PlantedSpec {
    /// Universe size `n`; background items are drawn from `[planted.len(), n)`.
    pub universe: usize,
    /// Number of background (light) updates.
    pub background_updates: usize,
    /// Frequencies of the planted items; planted item `i` is the universe element `i`.
    pub planted: Vec<u64>,
    /// Seed controlling background draws and the final shuffle.
    pub seed: u64,
}

impl PlantedSpec {
    /// Total stream length `m`.
    pub fn stream_len(&self) -> usize {
        self.background_updates + self.planted.iter().sum::<u64>() as usize
    }
}

/// Generates the stream described by `spec`, shuffled so planted occurrences are spread
/// over the whole stream.
pub fn planted_stream(spec: &PlantedSpec) -> Vec<u64> {
    assert!(
        spec.planted.len() < spec.universe,
        "planted items must fit in the universe"
    );
    let mut out = Vec::with_capacity(spec.stream_len());
    for (item, &freq) in spec.planted.iter().enumerate() {
        for _ in 0..freq {
            out.push(item as u64);
        }
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let lo = spec.planted.len() as u64;
    let hi = spec.universe as u64;
    for _ in 0..spec.background_updates {
        out.push(rng.gen_range(lo..hi));
    }
    shuffle(&mut out, spec.seed.wrapping_add(1));
    out
}

/// Convenience constructor: one planted heavy hitter of frequency `hh_freq` on top of
/// `background_updates` light updates over universe `[0, n)`.
pub fn single_heavy_hitter(
    universe: usize,
    background_updates: usize,
    hh_freq: u64,
    seed: u64,
) -> Vec<u64> {
    planted_stream(&PlantedSpec {
        universe,
        background_updates,
        planted: vec![hh_freq],
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyVector;

    #[test]
    fn planted_frequencies_are_exact() {
        let spec = PlantedSpec {
            universe: 1 << 14,
            background_updates: 20_000,
            planted: vec![500, 300, 100],
            seed: 11,
        };
        let stream = planted_stream(&spec);
        assert_eq!(stream.len(), spec.stream_len());
        let f = FrequencyVector::from_stream(&stream);
        assert_eq!(f.frequency(0), 500);
        assert_eq!(f.frequency(1), 300);
        assert_eq!(f.frequency(2), 100);
    }

    #[test]
    fn background_is_light() {
        let spec = PlantedSpec {
            universe: 1 << 16,
            background_updates: 30_000,
            planted: vec![1000],
            seed: 2,
        };
        let f = FrequencyVector::from_stream(&planted_stream(&spec));
        let heaviest_background = f
            .iter()
            .filter(|&(item, _)| item != 0)
            .map(|(_, c)| c)
            .max()
            .unwrap();
        assert!(
            heaviest_background < 10,
            "background item too heavy: {heaviest_background}"
        );
        assert_eq!(f.mode().unwrap().0, 0);
    }

    #[test]
    fn planted_occurrences_are_spread_out() {
        let stream = single_heavy_hitter(1 << 12, 10_000, 1_000, 9);
        // The heavy hitter should appear in both halves of the stream after shuffling.
        let mid = stream.len() / 2;
        let first = stream[..mid].iter().filter(|&&x| x == 0).count();
        let second = stream[mid..].iter().filter(|&&x| x == 0).count();
        assert!(first > 300 && second > 300, "first={first} second={second}");
    }

    #[test]
    #[should_panic]
    fn planted_items_must_fit_in_universe() {
        let _ = planted_stream(&PlantedSpec {
            universe: 2,
            background_updates: 0,
            planted: vec![1, 1, 1],
            seed: 0,
        });
    }
}
