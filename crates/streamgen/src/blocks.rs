//! The Section 1.4 counterexample stream.
//!
//! The paper contrasts its time-bucketed counter maintenance with earlier
//! sampling-based moment estimators ([BO13, BKSV14]) using a block-structured stream:
//! locally, *pseudo-heavy* items look much larger than the true `L_2` heavy hitter, so
//! an algorithm that evicts the smallest counters globally will keep the pseudo-heavy
//! items and drop the heavy hitter.  This module generates that stream.
//!
//! Construction (parameterised by a scale `q`, with `m = q^4` total updates split into
//! `q^2` blocks of `q^2` updates each):
//!
//! * one **heavy hitter** (item 0) with total frequency `q·r^2 ≈ √m`, where
//!   `r = ⌊√q⌋`;
//! * `q^2` **pseudo-heavy** items, each of frequency `q = m^{1/4}`, packed `q` per
//!   *special block*;
//! * all other updates are **light** items that appear exactly once.
//!
//! Each special block is followed by `r` blocks containing `r` occurrences of the heavy
//! hitter (the paper places the special blocks consecutively, which makes the follower
//! blocks overlap; we space them `r+1` blocks apart so the construction is executable
//! while preserving the property that the heavy hitter never looks locally large).

/// A generated counterexample stream plus the identities needed to score algorithms.
#[derive(Debug, Clone)]
pub struct CounterexampleStream {
    /// The stream updates.
    pub stream: Vec<u64>,
    /// The unique true `L_2` heavy hitter (item id 0).
    pub heavy_hitter: u64,
    /// Exact frequency of the heavy hitter.
    pub heavy_freq: u64,
    /// Exact frequency of each pseudo-heavy item.
    pub pseudo_freq: u64,
    /// Number of pseudo-heavy items.
    pub pseudo_count: usize,
    /// Scale parameter `q`.
    pub scale: usize,
}

/// Generates the counterexample stream at scale `q ≥ 4` (stream length `q^4`).
pub fn counterexample_stream(q: usize) -> CounterexampleStream {
    assert!(q >= 4, "scale must be at least 4");
    let r = (q as f64).sqrt().floor() as usize; // n^{1/8} in the paper's notation
    let block_size = q * q;
    let num_blocks = q * q;
    let heavy_hitter = 0u64;
    let pseudo_base = 1u64;
    let pseudo_count = q * q;
    let mut next_light = pseudo_base + pseudo_count as u64;

    // Special blocks are spaced r+1 apart so each has r dedicated follower blocks.
    let special_positions: Vec<usize> = (0..q).map(|w| w * (r + 1)).collect();
    assert!(
        special_positions.last().copied().unwrap_or(0) + r < num_blocks,
        "scale too small to lay out special blocks"
    );

    let mut stream = Vec::with_capacity(block_size * num_blocks);
    let mut heavy_freq = 0u64;
    let mut block_kind = vec![0u8; num_blocks]; // 0 = light, 1 = special, 2 = follower
    for (w, &pos) in special_positions.iter().enumerate() {
        block_kind[pos] = 1;
        for follow in 1..=r {
            block_kind[pos + follow] = 2;
        }
        let _ = w;
    }

    let mut special_index = 0usize;
    for kind in block_kind.iter().copied() {
        match kind {
            1 => {
                // q distinct pseudo-heavy items, each repeated q times.
                let first = pseudo_base + (special_index * q) as u64;
                special_index += 1;
                for j in 0..q as u64 {
                    for _ in 0..q {
                        stream.push(first + j);
                    }
                }
            }
            2 => {
                // r occurrences of the heavy hitter, then light filler.
                stream.extend(std::iter::repeat_n(heavy_hitter, r));
                heavy_freq += r as u64;
                for _ in 0..(block_size - r) {
                    stream.push(next_light);
                    next_light += 1;
                }
            }
            _ => {
                for _ in 0..block_size {
                    stream.push(next_light);
                    next_light += 1;
                }
            }
        }
    }

    CounterexampleStream {
        stream,
        heavy_hitter,
        heavy_freq,
        pseudo_freq: q as u64,
        pseudo_count: q * q,
        scale: q,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyVector;

    #[test]
    fn frequencies_match_the_construction() {
        let cx = counterexample_stream(8);
        assert_eq!(cx.stream.len(), 8usize.pow(4));
        let f = FrequencyVector::from_stream(&cx.stream);
        assert_eq!(f.frequency(cx.heavy_hitter), cx.heavy_freq);
        // r = floor(sqrt(8)) = 2, so heavy frequency = q * r * r = 32.
        assert_eq!(cx.heavy_freq, 32);
        // The pseudo-heavy items actually used all have frequency q = 8.
        let used_pseudo: Vec<u64> = f
            .iter()
            .filter(|&(item, _)| item >= 1 && item <= cx.pseudo_count as u64)
            .map(|(_, c)| c)
            .collect();
        assert!(!used_pseudo.is_empty());
        assert!(used_pseudo.iter().all(|&c| c == cx.pseudo_freq));
    }

    #[test]
    fn heavy_hitter_dominates_the_l2_norm() {
        let cx = counterexample_stream(16);
        let f = FrequencyVector::from_stream(&cx.stream);
        // The heavy hitter is an L2 heavy hitter at ε = 0.25 …
        let hh = f.heavy_hitters(2.0, 0.25);
        assert!(hh.iter().any(|&(item, _)| item == cx.heavy_hitter));
        // … and no pseudo-heavy item is (they only reach frequency q).
        assert!(hh
            .iter()
            .all(|&(item, _)| item == cx.heavy_hitter || f.frequency(item) > cx.pseudo_freq));
    }

    #[test]
    fn heavy_hitter_never_looks_locally_large() {
        // Within any single block the heavy hitter appears at most r = floor(sqrt(q))
        // times, while pseudo-heavy items reach q occurrences in their block.
        let cx = counterexample_stream(9);
        let q = cx.scale;
        let block = q * q;
        let r = (q as f64).sqrt().floor() as u64;
        for chunk in cx.stream.chunks(block) {
            let hh_in_block = chunk.iter().filter(|&&x| x == cx.heavy_hitter).count() as u64;
            assert!(hh_in_block <= r);
        }
    }

    #[test]
    #[should_panic]
    fn tiny_scales_are_rejected() {
        let _ = counterexample_stream(3);
    }
}
