//! Adversarial stream pairs from the lower bounds (Theorems 1.2 and 1.4).
//!
//! Both lower bounds use the same two-stream construction over a universe of size `n`:
//!
//! * `S_1` — a stream of length `n` in which one random item `i` is repeated inside a
//!   random contiguous block `B` (of length `n^{1/p}` for the `F_p` bound, or
//!   `ε·n^{1/p}` for the heavy-hitter bound); every other update is a fresh distinct
//!   item.  Then `F_p(S_1) ≈ 2n` and `i` is an `ε/2` heavy hitter.
//! * `S_2` — a random permutation of `[n]`, so `F_p(S_2) = n` and there is no heavy
//!   hitter.
//!
//! An algorithm whose state changes fewer than `~n^{1−1/p}/2` times is, with constant
//! probability, in the same state before and after `B`, hence cannot distinguish the
//! two streams.  Experiment F5 replays this argument empirically against both a
//! state-change-capped estimator and the paper's algorithm.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::uniform::permutation_stream;

/// The pair `(S_1, S_2)` plus the identity of the planted block.
#[derive(Debug, Clone)]
pub struct LowerBoundPair {
    /// The stream with a planted repeated block.
    pub s1: Vec<u64>,
    /// The permutation stream with no repetitions.
    pub s2: Vec<u64>,
    /// The repeated item.
    pub planted_item: u64,
    /// Index of the first update of the planted block in `s1`.
    pub block_start: usize,
    /// Length of the planted block (the planted item's frequency).
    pub block_len: usize,
    /// Universe size / stream length `n`.
    pub n: usize,
}

impl LowerBoundPair {
    /// Exact `F_p` of `S_1`: `(n − block_len) + block_len^p`.
    pub fn fp_s1(&self, p: f64) -> f64 {
        (self.n - self.block_len) as f64 + (self.block_len as f64).powf(p)
    }

    /// Exact `F_p` of `S_2`: `n`.
    pub fn fp_s2(&self, _p: f64) -> f64 {
        self.n as f64
    }

    /// Ratio `F_p(S_1)/F_p(S_2)`; the lower bound applies to algorithms that can detect
    /// this gap (close to 2 for the Theorem 1.4 block length).
    pub fn moment_gap(&self, p: f64) -> f64 {
        self.fp_s1(p) / self.fp_s2(p)
    }
}

/// Builds the lower-bound pair for the `F_p` estimation bound (Theorem 1.4):
/// the planted block has length `⌈n^{1/p}⌉`.
pub fn moment_lower_bound_pair(n: usize, p: f64, seed: u64) -> LowerBoundPair {
    build_pair(n, ((n as f64).powf(1.0 / p).ceil() as usize).max(2), seed)
}

/// Builds the lower-bound pair for the heavy-hitter bound (Theorem 1.2):
/// the planted block has length `⌈ε·n^{1/p}⌉`.
pub fn heavy_hitter_lower_bound_pair(n: usize, p: f64, eps: f64, seed: u64) -> LowerBoundPair {
    assert!(eps > 0.0 && eps <= 1.0);
    let len = ((eps * (n as f64).powf(1.0 / p)).ceil() as usize).max(2);
    build_pair(n, len, seed)
}

fn build_pair(n: usize, block_len: usize, seed: u64) -> LowerBoundPair {
    assert!(n >= 4, "universe too small");
    let block_len = block_len.min(n / 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let planted_item = rng.gen_range(0..n as u64);
    let block_start = rng.gen_range(0..=(n - block_len));

    // Distinct fillers: every universe item except the planted one, in random order.
    let mut fillers: Vec<u64> = permutation_stream(n, seed.wrapping_add(1))
        .into_iter()
        .filter(|&x| x != planted_item)
        .collect();
    fillers.truncate(n - block_len);

    let mut s1 = Vec::with_capacity(n);
    let mut filler_iter = fillers.into_iter();
    for t in 0..n {
        if t >= block_start && t < block_start + block_len {
            s1.push(planted_item);
        } else {
            s1.push(filler_iter.next().expect("enough distinct fillers"));
        }
    }

    let s2 = permutation_stream(n, seed.wrapping_add(2));

    LowerBoundPair {
        s1,
        s2,
        planted_item,
        block_start,
        block_len,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyVector;

    #[test]
    fn s1_has_exactly_one_repeated_item() {
        let pair = moment_lower_bound_pair(1 << 12, 2.0, 7);
        assert_eq!(pair.s1.len(), 1 << 12);
        let f = FrequencyVector::from_stream(&pair.s1);
        assert_eq!(f.frequency(pair.planted_item), pair.block_len as u64);
        assert_eq!(f.max_frequency(), pair.block_len as u64);
        // Everything else appears exactly once.
        let repeated = f.iter().filter(|&(_, c)| c > 1).count();
        assert_eq!(repeated, 1);
        // Block length for p = 2 is ceil(sqrt(4096)) = 64.
        assert_eq!(pair.block_len, 64);
    }

    #[test]
    fn planted_block_is_contiguous() {
        let pair = moment_lower_bound_pair(2048, 3.0, 9);
        for (t, &x) in pair.s1.iter().enumerate() {
            let inside = t >= pair.block_start && t < pair.block_start + pair.block_len;
            assert_eq!(x == pair.planted_item, inside, "position {t}");
        }
    }

    #[test]
    fn s2_is_a_permutation_and_the_gap_is_near_two() {
        let pair = moment_lower_bound_pair(1 << 12, 2.0, 3);
        let f2 = FrequencyVector::from_stream(&pair.s2);
        assert_eq!(f2.distinct(), 1 << 12);
        assert_eq!(f2.max_frequency(), 1);
        let gap = pair.moment_gap(2.0);
        assert!(gap > 1.9 && gap < 2.1, "gap {gap}");
        assert_eq!(pair.fp_s2(2.0), 4096.0);
    }

    #[test]
    fn heavy_hitter_variant_scales_block_with_eps() {
        let small = heavy_hitter_lower_bound_pair(1 << 12, 2.0, 0.1, 5);
        let large = heavy_hitter_lower_bound_pair(1 << 12, 2.0, 0.5, 5);
        assert!(small.block_len < large.block_len);
        let f = FrequencyVector::from_stream(&large.s1);
        // The planted item is an ε/2-heavy hitter for L_2.
        let threshold = 0.25 * f.lp(2.0);
        assert!(f.frequency(large.planted_item) as f64 >= threshold);
    }

    #[test]
    fn pairs_are_seeded_deterministically() {
        let a = moment_lower_bound_pair(1024, 1.5, 42);
        let b = moment_lower_bound_pair(1024, 1.5, 42);
        let c = moment_lower_bound_pair(1024, 1.5, 43);
        assert_eq!(a.s1, b.s1);
        assert_eq!(a.s2, b.s2);
        assert_ne!(a.s1, c.s1);
    }
}
