//! Zipfian stream generation.
//!
//! Zipfian item popularity (frequency of the `r`-th most popular item ∝ `r^{−s}`) is the
//! standard model for the skewed workloads that motivate heavy-hitter detection:
//! network flow sizes, query logs, and caching traces.  The generator uses an explicit
//! inverse-CDF table, so streams are reproducible across platforms for a fixed seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipfian distribution over the universe `{0, 1, …, n−1}` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table for universe size `n > 0` and exponent `s ≥ 0`
    /// (`s = 0` is the uniform distribution; larger `s` is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "universe must be non-empty");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Samples one item (item `0` is the most popular rank).
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        // Binary search for the first CDF entry ≥ u.
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u64,
        }
    }

    /// Probability mass of rank `i` (0-based).
    pub fn pmf(&self, i: usize) -> f64 {
        assert!(i < self.cdf.len());
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Generates a Zipfian stream of length `m` over universe `[0, n)` with exponent `s`.
pub fn zipf_stream(n: usize, m: usize, s: f64, seed: u64) -> Vec<u64> {
    let dist = Zipf::new(n, s);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| dist.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyVector;

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-15);
        }
        assert_eq!(z.universe(), 100);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a = zipf_stream(1 << 10, 5_000, 1.1, 3);
        let b = zipf_stream(1 << 10, 5_000, 1.1, 3);
        let c = zipf_stream(1 << 10, 5_000, 1.1, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5_000);
        assert!(a.iter().all(|&x| x < 1 << 10));
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let stream = zipf_stream(1 << 12, 50_000, 1.3, 7);
        let f = FrequencyVector::from_stream(&stream);
        let top = f.top_k(10);
        let top_mass: u64 = top.iter().map(|&(_, c)| c).sum();
        assert!(
            top_mass as f64 > 0.4 * stream.len() as f64,
            "top-10 mass {top_mass} too small for a skewed stream"
        );
        // Rank 0 should dominate.
        assert_eq!(top[0].0, 0);
    }

    #[test]
    fn low_skew_spreads_mass() {
        let stream = zipf_stream(1 << 12, 50_000, 0.2, 7);
        let f = FrequencyVector::from_stream(&stream);
        let top_mass: u64 = f.top_k(10).iter().map(|&(_, c)| c).sum();
        assert!((top_mass as f64) < 0.1 * stream.len() as f64);
    }
}
