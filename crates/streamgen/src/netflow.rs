//! Synthetic network-flow traces (elephants and mice).
//!
//! The paper motivates heavy hitters with elephant-flow detection in network traffic
//! monitoring \[BEFK17\].  Real traces (CAIDA, enterprise datacenter logs) are not
//! redistributable, so this module generates the documented substitution: a packet
//! stream in which a small number of *elephant* flows carry heavy-tailed (Pareto)
//! packet counts and a large number of *mice* flows carry only a few packets each.
//! The heavy-hitter structure — which is what the algorithms react to — matches the
//! published characterisations of such traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shuffle;

/// Parameters of a synthetic flow trace.
#[derive(Debug, Clone)]
pub struct FlowTraceSpec {
    /// Number of elephant flows (flow ids `0..elephants`).
    pub elephants: usize,
    /// Number of mice flows (flow ids `elephants..elephants+mice`).
    pub mice: usize,
    /// Minimum packet count of an elephant flow (Pareto scale parameter).
    pub elephant_min_packets: u64,
    /// Pareto tail exponent for elephant sizes (smaller = heavier tail).
    pub pareto_alpha: f64,
    /// Maximum packet count of a mouse flow (sizes are uniform in `1..=max`).
    pub mouse_max_packets: u64,
    /// Seed for sizes and packet interleaving.
    pub seed: u64,
}

impl Default for FlowTraceSpec {
    fn default() -> Self {
        Self {
            elephants: 16,
            mice: 20_000,
            elephant_min_packets: 500,
            pareto_alpha: 1.2,
            mouse_max_packets: 4,
            seed: 0,
        }
    }
}

/// A generated packet trace plus its per-flow ground truth.
#[derive(Debug, Clone)]
pub struct FlowTrace {
    /// Packet stream: each update is a flow id.
    pub packets: Vec<u64>,
    /// Exact packet count per elephant flow (index = flow id).
    pub elephant_sizes: Vec<u64>,
    /// Total number of flows.
    pub flows: usize,
}

/// Generates the packet trace described by `spec`.
pub fn flow_trace(spec: &FlowTraceSpec) -> FlowTrace {
    assert!(spec.elephants > 0 && spec.mice > 0);
    assert!(spec.pareto_alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    let elephant_sizes: Vec<u64> = (0..spec.elephants)
        .map(|_| {
            // Inverse-CDF Pareto sample: scale / U^{1/alpha}.
            let u: f64 = rng.gen_range(1e-9..1.0);
            (spec.elephant_min_packets as f64 / u.powf(1.0 / spec.pareto_alpha)).round() as u64
        })
        .collect();

    // Draw every flow size first (same rng call sequence as the former interleaved
    // fill), so the packet buffer can be reserved at its exact final length instead
    // of growing through the doubling reallocations a multi-hundred-thousand-packet
    // trace used to trigger.
    let mouse_sizes: Vec<u64> = (0..spec.mice)
        .map(|_| rng.gen_range(1..=spec.mouse_max_packets))
        .collect();
    let total: u64 = elephant_sizes.iter().sum::<u64>() + mouse_sizes.iter().sum::<u64>();
    let mut packets = Vec::with_capacity(total as usize);
    for (flow, &size) in elephant_sizes.iter().enumerate() {
        for _ in 0..size {
            packets.push(flow as u64);
        }
    }
    for (mouse, &size) in mouse_sizes.iter().enumerate() {
        let flow = (spec.elephants + mouse) as u64;
        for _ in 0..size {
            packets.push(flow);
        }
    }
    shuffle(&mut packets, spec.seed.wrapping_add(17));

    FlowTrace {
        packets,
        elephant_sizes,
        flows: spec.elephants + spec.mice,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyVector;

    #[test]
    fn elephants_have_their_planned_sizes() {
        let spec = FlowTraceSpec {
            elephants: 8,
            mice: 2_000,
            seed: 4,
            ..FlowTraceSpec::default()
        };
        let trace = flow_trace(&spec);
        let f = FrequencyVector::from_stream(&trace.packets);
        for (flow, &size) in trace.elephant_sizes.iter().enumerate() {
            assert_eq!(f.frequency(flow as u64), size);
            assert!(size >= spec.elephant_min_packets);
        }
        assert_eq!(trace.flows, 2_008);
    }

    #[test]
    fn mice_are_light_and_numerous() {
        let spec = FlowTraceSpec {
            elephants: 4,
            mice: 5_000,
            seed: 1,
            ..FlowTraceSpec::default()
        };
        let trace = flow_trace(&spec);
        let f = FrequencyVector::from_stream(&trace.packets);
        let heaviest_mouse = f
            .iter()
            .filter(|&(flow, _)| flow >= spec.elephants as u64)
            .map(|(_, c)| c)
            .max()
            .unwrap();
        assert!(heaviest_mouse <= spec.mouse_max_packets);
        assert!(
            f.distinct() > 4_900,
            "almost every mouse flow should appear"
        );
    }

    #[test]
    fn elephants_are_the_l1_heavy_hitters() {
        let trace = flow_trace(&FlowTraceSpec {
            elephants: 6,
            mice: 3_000,
            elephant_min_packets: 1_000,
            seed: 9,
            ..FlowTraceSpec::default()
        });
        let f = FrequencyVector::from_stream(&trace.packets);
        let hh: Vec<u64> = f
            .heavy_hitters(1.0, 0.02)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        for flow in 0..6u64 {
            assert!(hh.contains(&flow), "elephant {flow} not reported as heavy");
        }
        assert!(
            hh.iter().all(|&flow| flow < 6),
            "a mouse flow was reported heavy"
        );
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let spec = FlowTraceSpec::default();
        assert_eq!(flow_trace(&spec).packets, flow_trace(&spec).packets);
        let other = FlowTraceSpec {
            seed: 99,
            ..FlowTraceSpec::default()
        };
        assert_ne!(flow_trace(&spec).packets, flow_trace(&other).packets);
    }
}
