//! Uniform, permutation, and all-distinct streams.
//!
//! These are the "flat" inputs: no heavy hitters exist, `F_p ≈ m` for every `p`, and
//! they are exactly the regime in which the paper's lower bounds show that *any*
//! constant-factor `F_p` approximation must perform `Ω(n^{1−1/p})` state changes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A stream of `m` items drawn independently and uniformly from `[0, n)`.
pub fn uniform_stream(n: usize, m: usize, seed: u64) -> Vec<u64> {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| rng.gen_range(0..n as u64)).collect()
}

/// A uniformly random permutation of the universe `[0, n)`: every item appears exactly
/// once (this is the stream `S_2` of the lower-bound constructions).
pub fn permutation_stream(n: usize, seed: u64) -> Vec<u64> {
    let mut items: Vec<u64> = (0..n as u64).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    items.shuffle(&mut rng);
    items
}

/// A stream of `m` distinct items (`m ≤ n`), in random order.
pub fn distinct_stream(n: usize, m: usize, seed: u64) -> Vec<u64> {
    assert!(
        m <= n,
        "cannot draw {m} distinct items from a universe of {n}"
    );
    let mut perm = permutation_stream(n, seed);
    perm.truncate(m);
    perm
}

/// A sorted stream in which each item `i ∈ [0, n)` appears exactly `reps` times,
/// consecutively (`0,0,…,0,1,1,…`).  This is the "all items arrive together" case
/// discussed in the counter-maintenance paragraph of Section 1.3.
pub fn grouped_stream(n: usize, reps: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n * reps);
    for i in 0..n as u64 {
        for _ in 0..reps {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrequencyVector;

    #[test]
    fn uniform_stream_stays_in_range_and_is_seeded() {
        let a = uniform_stream(100, 10_000, 1);
        assert_eq!(a, uniform_stream(100, 10_000, 1));
        assert_ne!(a, uniform_stream(100, 10_000, 2));
        assert!(a.iter().all(|&x| x < 100));
        let f = FrequencyVector::from_stream(&a);
        assert!(
            f.distinct() > 90,
            "expected near-full coverage of the universe"
        );
    }

    #[test]
    fn permutation_contains_every_item_once() {
        let p = permutation_stream(512, 3);
        let f = FrequencyVector::from_stream(&p);
        assert_eq!(f.distinct(), 512);
        assert_eq!(f.max_frequency(), 1);
        assert_eq!(f.stream_len(), 512);
        assert_ne!(p, (0..512).collect::<Vec<u64>>(), "should be shuffled");
    }

    #[test]
    fn distinct_stream_has_no_repeats() {
        let s = distinct_stream(1000, 100, 5);
        let f = FrequencyVector::from_stream(&s);
        assert_eq!(f.distinct(), 100);
        assert_eq!(f.max_frequency(), 1);
    }

    #[test]
    #[should_panic]
    fn distinct_stream_rejects_oversized_requests() {
        let _ = distinct_stream(10, 11, 0);
    }

    #[test]
    fn grouped_stream_is_contiguous() {
        let s = grouped_stream(4, 3);
        assert_eq!(s, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        let f = FrequencyVector::from_stream(&s);
        assert_eq!(f.max_frequency(), 3);
        assert_eq!(f.distinct(), 4);
    }
}
