//! Exact statistics of a stream, used as ground truth for every experiment.

use std::collections::HashMap;

use fsc_state::Mergeable;

/// The exact frequency vector `f ∈ R^n` defined by an insertion-only stream
/// (`f_i` = number of occurrences of item `i`), together with exact functionals of it.
#[derive(Debug, Clone, Default)]
pub struct FrequencyVector {
    counts: HashMap<u64, u64>,
    stream_len: u64,
}

impl FrequencyVector {
    /// Builds the exact frequency vector of `stream`.
    pub fn from_stream(stream: &[u64]) -> Self {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &item in stream {
            *counts.entry(item).or_insert(0) += 1;
        }
        Self {
            counts,
            stream_len: stream.len() as u64,
        }
    }

    /// Stream length `m = Σ_i f_i`.
    pub fn stream_len(&self) -> u64 {
        self.stream_len
    }

    /// Number of distinct items (`F_0`).
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Exact frequency of `item`.
    pub fn frequency(&self, item: u64) -> u64 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Largest single frequency (`L_∞`).
    pub fn max_frequency(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// The item achieving the largest frequency, if the stream is non-empty.
    pub fn mode(&self) -> Option<(u64, u64)> {
        self.counts
            .iter()
            .map(|(&k, &v)| (k, v))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// The support (distinct items), sorted.
    pub fn support(&self) -> Vec<u64> {
        let mut s: Vec<u64> = self.counts.keys().copied().collect();
        s.sort_unstable();
        s
    }

    /// Exact frequency moment `F_p = Σ_i f_i^p`.
    pub fn fp(&self, p: f64) -> f64 {
        assert!(p >= 0.0);
        self.counts.values().map(|&c| (c as f64).powf(p)).sum()
    }

    /// Exact `L_p` norm `(F_p)^{1/p}` (for `p > 0`).
    pub fn lp(&self, p: f64) -> f64 {
        assert!(p > 0.0);
        self.fp(p).powf(1.0 / p)
    }

    /// Exact Shannon entropy of the empirical distribution, in bits:
    /// `H = −Σ_i (f_i/m)·log2(f_i/m)`.
    pub fn entropy_bits(&self) -> f64 {
        if self.stream_len == 0 {
            return 0.0;
        }
        let m = self.stream_len as f64;
        self.counts
            .values()
            .map(|&c| {
                let p = c as f64 / m;
                -p * p.log2()
            })
            .sum()
    }

    /// Exact `L_p` heavy hitters: all items with `f_i ≥ ε·‖f‖_p`, sorted by decreasing
    /// frequency.
    pub fn heavy_hitters(&self, p: f64, eps: f64) -> Vec<(u64, u64)> {
        let threshold = eps * self.lp(p);
        let mut out: Vec<(u64, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c as f64 >= threshold)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The `k` most frequent items, sorted by decreasing frequency (ties by item id).
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Iterates over `(item, frequency)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }
}

impl Mergeable for FrequencyVector {
    /// Exact merge: the frequency vector of a concatenated stream is the componentwise
    /// sum of the shards' vectors.  Ground truth for sharded runs is therefore computed
    /// per shard and merged, never recomputed from the full stream.
    fn merge_from(&mut self, other: &Self) {
        for (&item, &count) in &other.counts {
            *self.counts.entry(item).or_insert(0) += count;
        }
        self.stream_len += other.stream_len;
    }
}

/// Precision/recall of a reported heavy-hitter set against the exact one.
///
/// `reported` and `exact` are item-id sets; order and estimated frequencies are ignored.
pub fn precision_recall(reported: &[u64], exact: &[u64]) -> (f64, f64) {
    if reported.is_empty() && exact.is_empty() {
        return (1.0, 1.0);
    }
    let exact_set: std::collections::HashSet<u64> = exact.iter().copied().collect();
    let reported_set: std::collections::HashSet<u64> = reported.iter().copied().collect();
    let true_positives = reported_set.intersection(&exact_set).count() as f64;
    let precision = if reported_set.is_empty() {
        1.0
    } else {
        true_positives / reported_set.len() as f64
    };
    let recall = if exact_set.is_empty() {
        1.0
    } else {
        true_positives / exact_set.len() as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FrequencyVector {
        // f = {1: 4, 2: 2, 3: 1, 4: 1}
        FrequencyVector::from_stream(&[1, 2, 1, 3, 1, 2, 4, 1])
    }

    #[test]
    fn basic_counts() {
        let f = sample();
        assert_eq!(f.stream_len(), 8);
        assert_eq!(f.distinct(), 4);
        assert_eq!(f.frequency(1), 4);
        assert_eq!(f.frequency(99), 0);
        assert_eq!(f.max_frequency(), 4);
        assert_eq!(f.mode(), Some((1, 4)));
        assert_eq!(f.support(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn moments_match_hand_computation() {
        let f = sample();
        assert_eq!(f.fp(0.0), 4.0);
        assert_eq!(f.fp(1.0), 8.0);
        assert_eq!(f.fp(2.0), 16.0 + 4.0 + 1.0 + 1.0);
        assert!((f.lp(2.0) - 22.0f64.sqrt()).abs() < 1e-12);
        assert!((f.fp(3.0) - (64.0 + 8.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn entropy_matches_hand_computation() {
        let f = sample();
        // p = [1/2, 1/4, 1/8, 1/8] → H = 0.5 + 0.5 + 0.375 + 0.375 = 1.75 bits.
        assert!((f.entropy_bits() - 1.75).abs() < 1e-12);
        assert_eq!(FrequencyVector::from_stream(&[]).entropy_bits(), 0.0);
        let uniform = FrequencyVector::from_stream(&[1, 2, 3, 4]);
        assert!((uniform.entropy_bits() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_hitters_respect_the_threshold() {
        let f = sample();
        // L2 = sqrt(22) ≈ 4.69; with ε = 0.5 the threshold is ≈ 2.35: only item 1.
        assert_eq!(f.heavy_hitters(2.0, 0.5), vec![(1, 4)]);
        // With ε = 0.4 the threshold is ≈ 1.88: items 1 and 2.
        assert_eq!(f.heavy_hitters(2.0, 0.4), vec![(1, 4), (2, 2)]);
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let f = sample();
        assert_eq!(f.top_k(2), vec![(1, 4), (2, 2)]);
        assert_eq!(f.top_k(10).len(), 4);
        assert_eq!(f.top_k(0), vec![]);
    }

    #[test]
    fn merged_shards_equal_the_unsharded_vector() {
        let stream: Vec<u64> = vec![1, 2, 1, 3, 1, 2, 4, 1, 5, 5];
        let (left, right) = stream.split_at(4);
        let mut merged = FrequencyVector::from_stream(left);
        merged.merge_from(&FrequencyVector::from_stream(right));
        let whole = FrequencyVector::from_stream(&stream);
        assert_eq!(merged.stream_len(), whole.stream_len());
        assert_eq!(merged.support(), whole.support());
        for item in merged.support() {
            assert_eq!(merged.frequency(item), whole.frequency(item));
        }
        assert_eq!(merged.fp(2.0), whole.fp(2.0));
    }

    #[test]
    fn precision_recall_basics() {
        let (p, r) = precision_recall(&[1, 2, 5], &[1, 2, 3, 4]);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert!((r - 0.5).abs() < 1e-12);
        assert_eq!(precision_recall(&[], &[]), (1.0, 1.0));
        assert_eq!(precision_recall(&[], &[1]), (1.0, 0.0));
        assert_eq!(precision_recall(&[1], &[]), (0.0, 1.0));
    }

    #[test]
    fn iter_covers_all_items() {
        let f = sample();
        let total: u64 = f.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 8);
    }
}
