//! # fsc-counters — approximate counters, hash families, and p-stable variates
//!
//! Building blocks shared by the paper's algorithms and the baselines:
//!
//! * [`MorrisCounter`] / [`MorrisPlusCounter`] — the approximate counters of
//!   Theorem 1.5 (\[Mor78\], analysed tightly by \[NY22\]): a `(1+ε)`-approximate counter
//!   that changes its state only `poly(log n, 1/ε, log 1/δ)` times over a stream of
//!   length `n`, instead of once per increment.
//! * [`ExactCounter`] — the write-per-increment counter used by the deterministic
//!   baselines, for comparison.
//! * [`hashing`] — limited-independence hash families (polynomial hashing over a
//!   Mersenne prime, and tabulation hashing) used for subsampling stream positions,
//!   subsampling the universe, and the CountSketch / AMS baselines.
//! * [`lanes`] — lane-packed (portable-SIMD-style) evaluators for the branch-free
//!   hash kernels above, bit-identical per lane to the scalar entry points; the
//!   bulk `process_batch` kernels of the baselines are built on these.
//! * [`fastmap`] — a seeded, deterministic FxHash-style hasher plus map/set aliases,
//!   replacing SipHash on the key-holding hot paths.
//! * [`stable`] — p-stable variate generation (Definition 3.1 / \[Nol03\]) with
//!   limited-independence seeds, used by the `p < 1` moment estimator of Theorem 3.2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod accumulator;
mod exact;
pub mod fastmap;
pub mod hashing;
pub mod lanes;
mod morris;
pub mod stable;

pub use accumulator::GeometricAccumulator;
pub use exact::ExactCounter;
pub use morris::{MorrisCounter, MorrisPlusCounter};

use rand::RngCore;

/// A counter that supports increment-by-one and estimation of the current count.
///
/// Both the exact counter and Morris counters implement this trait so the paper's
/// algorithms can be instantiated with either (the benchmark harness uses this to
/// ablate the effect of approximate counters on the total state-change count).
pub trait Counter {
    /// Registers one occurrence.
    fn increment(&mut self, rng: &mut dyn RngCore);

    /// Registers `k` occurrences.
    fn add(&mut self, k: u64, rng: &mut dyn RngCore) {
        for _ in 0..k {
            self.increment(rng);
        }
    }

    /// Current estimate of the number of occurrences registered.
    fn estimate(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_state::StateTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn add_default_impl_repeats_increment() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = ExactCounter::new(&tracker);
        c.add(25, &mut rng);
        assert_eq!(c.estimate(), 25.0);
    }
}
