//! Deterministic FxHash-style hashing for key-holding tables.
//!
//! The standard library's `HashMap` defaults to randomly seeded SipHash-1-3 — the
//! right call for adversarial inputs, but several times more expensive per lookup than
//! needed on the `u64`-keyed counter tables that sit on the per-update hot path
//! (`SampleAndHold`'s reservoir mirror and Morris table, sparse recovery, the
//! key-holding baselines).  This module provides the deterministic replacement:
//!
//! * [`FxHasher`] — the multiply-xor hash popularised by rustc's `FxHashMap`: one
//!   rotate, one xor, and one multiply by a 64-bit constant per word of key.
//! * [`FastState`] — a seedable `BuildHasher` producing [`FxHasher`]s.  Determinism
//!   makes runs reproducible byte-for-byte across processes (SipHash's per-process
//!   random keys never changed recorded *results* — nothing observable depends on
//!   iteration order — but a deterministic hasher makes that property structural).
//! * [`FastMap`] / [`FastSet`] — plain `std` collections over [`FastState`].
//! * [`FastTrackedMap`] — [`fsc_state::TrackedMap`] over [`FastState`], the table type
//!   the tracked algorithms use.
//!
//! FxHash is not DoS-resistant; these tables hold stream items in a benchmarking
//! substrate, not attacker-controlled keys in a service.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The FxHash multiplier (a 64-bit truncation of π's hex expansion).
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

/// Default seed of [`FastState`] (an arbitrary odd constant, fixed for determinism).
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A streaming FxHash state: `state = (rotl(state, 5) ^ word) · K` per ingested word.
#[derive(Debug, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn ingest(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.ingest(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length-prefix the tail so "ab" and "ab\0" ingest different words.
            self.ingest(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.ingest(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.ingest(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.ingest(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.ingest(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.ingest(v as u64);
        self.ingest((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.ingest(v as u64);
    }
}

/// A seedable, deterministic `BuildHasher` over [`FxHasher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastState {
    seed: u64,
}

impl FastState {
    /// A build-hasher whose tables hash identically across processes for this seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for FastState {
    fn default() -> Self {
        Self::with_seed(DEFAULT_SEED)
    }
}

impl BuildHasher for FastState {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: self.seed }
    }
}

/// A `std::collections::HashMap` keyed by the deterministic fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FastState>;

/// A `std::collections::HashSet` keyed by the deterministic fast hasher.
pub type FastSet<K> = HashSet<K, FastState>;

/// A [`fsc_state::TrackedMap`] keyed by the deterministic fast hasher — the counter
/// table the key-holding algorithms use on their hot paths.
pub type FastTrackedMap<K, V> = fsc_state::TrackedMap<K, V, FastState>;

/// Creates an empty [`FastMap`] with the default seed.
pub fn fast_map<K, V>() -> FastMap<K, V> {
    FastMap::with_hasher(FastState::default())
}

/// Creates an empty [`FastSet`] with the default seed.
pub fn fast_set<K>() -> FastSet<K> {
    FastSet::with_hasher(FastState::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(state: &FastState, value: &T) -> u64 {
        state.hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_and_seed_sensitive() {
        let a = FastState::default();
        let b = FastState::default();
        let c = FastState::with_seed(42);
        for x in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(hash_of(&a, &x), hash_of(&b, &x));
            assert_ne!(hash_of(&a, &x), hash_of(&c, &x), "seed must matter for {x}");
        }
        assert_eq!(c.seed(), 42);
    }

    #[test]
    fn nearby_keys_spread_over_the_bucket_bits() {
        // FxHash is not cryptographic, but sequential u64 keys (the common stream-item
        // pattern) must not collide in the low bits hashbrown buckets on.  The final
        // odd multiply makes the low 12 bits a bijection of the low 12 key bits, so
        // 4096 sequential keys must produce (nearly) 4096 distinct bucket values.
        let state = FastState::default();
        let mut buckets = FastSet::with_hasher(FastState::default());
        for x in 0..4096u64 {
            buckets.insert(hash_of(&state, &x) & 0xFFF);
        }
        assert!(
            buckets.len() >= 4000,
            "bucket bits too clustered: {}",
            buckets.len()
        );
    }

    #[test]
    fn byte_stream_tail_is_length_distinguished() {
        let state = FastState::default();
        let mut h1 = state.build_hasher();
        h1.write(b"ab");
        let mut h2 = state.build_hasher();
        h2.write(b"ab\0");
        assert_ne!(h1.finish(), h2.finish());
        let mut h3 = state.build_hasher();
        h3.write(b"12345678"); // exact chunk, no tail
        let mut h4 = state.build_hasher();
        h4.write(b"12345678\0");
        assert_ne!(h3.finish(), h4.finish());
    }

    #[test]
    fn fast_collections_behave_like_std_ones() {
        let mut m: FastMap<u64, u64> = fast_map();
        for x in 0..1000 {
            m.insert(x, x * x);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&31], 961);
        let mut s: FastSet<u64> = fast_set();
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn tracked_map_over_the_fast_hasher_accounts_identically() {
        use fsc_state::StateTracker;
        let t_fast = StateTracker::new();
        let mut fast: FastTrackedMap<u64, u64> = FastTrackedMap::new(&t_fast);
        let t_std = StateTracker::new();
        let mut std_map: fsc_state::TrackedMap<u64, u64> = fsc_state::TrackedMap::new(&t_std);
        for x in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            t_fast.begin_epoch();
            t_std.begin_epoch();
            if fast.peek(&x).is_some() {
                fast.modify(&x, |v| v + 1);
                std_map.modify(&x, |v| v + 1);
            } else {
                fast.insert(x, 1);
                std_map.insert(x, 1);
            }
        }
        assert_eq!(t_fast.snapshot(), t_std.snapshot());
        assert_eq!(fast.len(), std_map.len());
        assert_eq!(fast.peek(&1), std_map.peek(&1));
    }
}
