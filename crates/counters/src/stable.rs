//! p-stable variate generation (Definition 3.1 of the paper; [Zol89, Nol03]).
//!
//! A distribution `D_p` is p-stable if for independent `Z, Z_1, …, Z_n ~ D_p` and any
//! vector `x`, `Σ_i Z_i x_i` is distributed as `‖x‖_p · Z`.  The `p < 1` moment
//! estimator (Theorem 3.2, following [Ind06, JW19]) sketches the frequency vector with
//! a matrix of p-stable variates; the variates are *not stored* but re-derived on demand
//! from a limited-independence seed, as in [KNW10, JW19].
//!
//! Variates are produced with the Chambers–Mallows–Stuck transform quoted in the paper
//! (Section 3.1): for `θ ~ Uni[−π/2, π/2]` and `r ~ Uni(0, 1)`,
//!
//! ```text
//! X = sin(pθ)/cos(θ)^{1/p} · ( cos(θ(1−p)) / ln(1/r) )^{(1−p)/p}.
//! ```

use crate::hashing::PolyHash;
use rand::RngCore;
use std::f64::consts::FRAC_PI_2;

/// Transforms two uniforms into a standard p-stable variate (CMS transform).
///
/// `theta_unit` and `r_unit` must lie in `(0, 1)`; they are mapped to
/// `θ ∈ (−π/2, π/2)` and `r ∈ (0, 1)` respectively.  Valid for `p ∈ (0, 2]`:
/// `p = 1` yields the Cauchy distribution and `p = 2` the Gaussian (scaled by √2).
pub fn p_stable_from_uniforms(p: f64, theta_unit: f64, r_unit: f64) -> f64 {
    assert!(p > 0.0 && p <= 2.0, "p must be in (0, 2]");
    // Clamp away from the endpoints to avoid infinities from cos(±π/2) = 0 or ln(0).
    let theta_unit = theta_unit.clamp(1e-12, 1.0 - 1e-12);
    let r_unit = r_unit.clamp(1e-12, 1.0 - 1e-12);
    let theta = (theta_unit - 0.5) * 2.0 * FRAC_PI_2;
    let ln_inv_r = (1.0 / r_unit).ln();

    let first = (p * theta).sin() / theta.cos().powf(1.0 / p);
    let exponent = (1.0 - p) / p;
    let second = ((theta * (1.0 - p)).cos() / ln_inv_r).powf(exponent);
    first * second
}

/// Draws a standard p-stable variate using a random-number generator.
pub fn sample_p_stable(p: f64, rng: &mut dyn RngCore) -> f64 {
    let theta_unit = uniform_from(rng);
    let r_unit = uniform_from(rng);
    p_stable_from_uniforms(p, theta_unit, r_unit)
}

fn uniform_from(rng: &mut dyn RngCore) -> f64 {
    // 53 uniform mantissa bits in (0, 1).
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// An implicit `rows × universe` matrix of p-stable variates derived from
/// limited-independence hash seeds.
///
/// Entry `(i, j)` is a deterministic function of the row seed and the column index, so
/// the matrix costs `O(rows · k)` words of seed storage instead of `rows · n` variates,
/// mirroring the derandomisation discussed in Section 3.1 of the paper.
#[derive(Debug, Clone)]
pub struct StableMatrix {
    p: f64,
    rows: Vec<(PolyHash, PolyHash)>,
}

impl StableMatrix {
    /// Creates a matrix with `rows` rows for stability parameter `p`, using hash
    /// functions of `independence`-wise independence (the paper uses
    /// `O(log(1/ε)/log log(1/ε))`).
    pub fn new(p: f64, rows: usize, independence: usize, rng: &mut impl RngCore) -> Self {
        assert!(rows > 0);
        let rows = (0..rows)
            .map(|_| {
                (
                    PolyHash::new(independence.max(2), rng),
                    PolyHash::new(independence.max(2), rng),
                )
            })
            .collect();
        Self { p, rows }
    }

    /// Stability parameter.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The p-stable variate at row `i`, column `j`.
    pub fn entry(&self, i: usize, j: u64) -> f64 {
        let (h_theta, h_r) = &self.rows[i];
        p_stable_from_uniforms(self.p, h_theta.hash_unit(j), h_r.hash_unit(j))
    }

    /// Words of seed storage used by the implicit matrix.
    pub fn seed_words(&self) -> usize {
        self.rows
            .iter()
            .map(|(a, b)| a.independence() + b.independence())
            .sum()
    }
}

/// Median of the absolute value of the standard p-stable distribution, used to
/// normalise median-based `F_p` estimators (\[Ind06\]).  Computed empirically from the
/// generator itself so that estimator and normaliser share any small bias of the
/// limited-precision transform.
pub fn median_of_abs(p: f64, samples: usize, rng: &mut dyn RngCore) -> f64 {
    let mut v: Vec<f64> = (0..samples.max(1))
        .map(|_| sample_p_stable(p, rng).abs())
        .collect();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cauchy_median_of_abs_is_near_one() {
        // For p = 1 (Cauchy), median(|X|) = tan(π/4) = 1 exactly.
        let mut rng = StdRng::seed_from_u64(10);
        let med = median_of_abs(1.0, 40_000, &mut rng);
        assert!((med - 1.0).abs() < 0.05, "median {med}");
    }

    #[test]
    fn gaussian_case_has_light_tails() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let extreme = (0..n)
            .map(|_| sample_p_stable(2.0, &mut rng))
            .filter(|x| x.abs() > 6.0)
            .count();
        // p = 2 is Gaussian (scale √2): |X| > 6 has probability ~2e-5.
        assert!(extreme <= 5, "too many extreme values: {extreme}");
    }

    #[test]
    fn half_stable_has_heavy_tails() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let extreme = (0..n)
            .map(|_| sample_p_stable(0.5, &mut rng))
            .filter(|x| x.abs() > 100.0)
            .count();
        // p = 0.5 has tail P(|X| > t) ≈ c/√t, so values above 100 must appear.
        assert!(extreme > 100, "expected heavy tails, got {extreme}");
    }

    #[test]
    fn stability_property_holds_approximately_for_cauchy() {
        // For Cauchy variates, (Z1 + Z2 + Z3 + Z4) should be distributed as 4·Z
        // (‖(1,1,1,1)‖_1 = 4).  Compare medians of absolute values.
        let mut rng = StdRng::seed_from_u64(13);
        let n = 30_000;
        let mut sums: Vec<f64> = (0..n)
            .map(|_| (0..4).map(|_| sample_p_stable(1.0, &mut rng)).sum::<f64>())
            .map(f64::abs)
            .collect();
        sums.sort_by(f64::total_cmp);
        let med = sums[n / 2];
        assert!(
            (med - 4.0).abs() < 0.3,
            "median of |sum| = {med}, expected ≈ 4"
        );
    }

    #[test]
    fn extreme_uniform_inputs_do_not_produce_nan() {
        for &p in &[0.25, 0.5, 1.0, 1.5, 2.0] {
            for &(a, b) in &[(0.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.5, 0.5)] {
                let x = p_stable_from_uniforms(p, a, b);
                assert!(x.is_finite(), "p={p} a={a} b={b} gave {x}");
            }
        }
    }

    #[test]
    fn stable_matrix_is_deterministic_and_small() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = StableMatrix::new(1.0, 4, 6, &mut rng);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.p(), 1.0);
        assert_eq!(m.entry(2, 77), m.entry(2, 77));
        assert_ne!(m.entry(0, 77), m.entry(1, 77));
        assert_eq!(m.seed_words(), 4 * 12);
    }

    #[test]
    #[should_panic]
    fn p_above_two_is_rejected() {
        let _ = p_stable_from_uniforms(2.5, 0.3, 0.3);
    }
}
