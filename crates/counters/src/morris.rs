//! Morris approximate counters (Theorem 1.5 of the paper; [Mor78, NY22]).
//!
//! A Morris counter stores only the register `X` and increments it probabilistically:
//! an increment is *accepted* with probability `(1+a)^{-X}`, and the count is estimated
//! as `((1+a)^X − 1)/a`.  After `n` increments the register is about
//! `log_{1+a}(1 + a·n)`, so the counter changes state only
//! `O((1/a)·log(a·n))  =  poly(log n, 1/ε, log 1/δ)` times — the property the paper
//! relies on to keep the per-item counters of `SampleAndHold` write-frugal.

use fsc_state::{StateTracker, TrackedCell};
use rand::{Rng, RngCore};

use crate::Counter;

/// A single Morris counter with growth parameter `a`.
///
/// The classic analysis gives `E[estimate] = n` (unbiased) and
/// `Var[estimate] = a·n(n−1)/2`, so choosing `a = 2ε²δ` yields a `(1±ε)`-approximation
/// with probability `1−δ` by Chebyshev's inequality.  For high-probability guarantees
/// use [`MorrisPlusCounter`], which takes a median of independent copies.
#[derive(Debug, Clone)]
pub struct MorrisCounter {
    register: TrackedCell<u64>,
    a: f64,
    /// Cached `(1+a)^{-X}` for the current register `X`.  The acceptance probability
    /// only changes when the register advances — `O((1/a)·log(a·n))` times over the
    /// counter's whole life — so caching it keeps the f64 `powi` off the hot
    /// increment path of held counters (the dominant path for heavy items in
    /// `SampleAndHold`) without changing a single sampled decision.
    accept_p: f64,
}

impl MorrisCounter {
    /// Creates a Morris counter with an explicit growth parameter `a ∈ (0, 1]`.
    pub fn new(tracker: &StateTracker, a: f64) -> Self {
        assert!(a > 0.0 && a <= 1.0, "growth parameter must be in (0, 1]");
        Self {
            register: TrackedCell::new(tracker, 0),
            a,
            accept_p: 1.0, // (1+a)^0
        }
    }

    /// Creates a Morris counter that is a `(1±ε)`-approximation with probability `1−δ`
    /// (single-counter Chebyshev guarantee: `a = 2ε²δ`, clamped to `(0, 1]`).
    pub fn for_accuracy(tracker: &StateTracker, eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
        let a = (2.0 * eps * eps * delta).clamp(1e-9, 1.0);
        Self::new(tracker, a)
    }

    /// The growth parameter.
    pub fn growth(&self) -> f64 {
        self.a
    }

    /// Current value of the probabilistic register `X` (equals the number of state
    /// changes this counter has made).
    pub fn register(&self) -> u64 {
        *self.register.peek()
    }

    /// Probability that the next increment is accepted.
    pub fn acceptance_probability(&self) -> f64 {
        (1.0 + self.a).powi(-(self.register() as i32))
    }

    /// First tracked address of the register word (recorded by checkpoints; held
    /// counters are allocated mid-stream, so their addresses are part of the
    /// serialized state).
    pub fn addr_start(&self) -> usize {
        self.register.addr_start()
    }

    /// Rebuilds a counter at an explicit register value and tracked address without
    /// any accounting — the restore path of checkpointing (see
    /// [`fsc_state::TrackedCell::restore_at`]).  The cached acceptance probability is
    /// recomputed with the exact expression `increment` maintains, so every future
    /// decision is bit-identical to the checkpointed counter's.
    pub fn restore_at(tracker: &StateTracker, a: f64, register: u64, addr_start: usize) -> Self {
        assert!(a > 0.0 && a <= 1.0, "growth parameter must be in (0, 1]");
        let mut counter = Self {
            register: TrackedCell::restore_at(tracker, register, addr_start),
            a,
            accept_p: 1.0,
        };
        counter.accept_p = counter.acceptance_probability();
        counter
    }

    /// Sets the register directly, keeping the cached acceptance probability in sync
    /// (test helper; production code only advances the register via `increment`).
    #[cfg(test)]
    fn force_register(&mut self, x: u64) {
        self.register.modify(|_| x);
        self.accept_p = self.acceptance_probability();
    }
}

impl Counter for MorrisCounter {
    fn increment(&mut self, rng: &mut dyn RngCore) {
        if rng.gen::<f64>() < self.accept_p {
            self.register.modify(|x| x + 1);
            // Recompute the cache with the exact expression the uncached counter
            // evaluated per increment, so every future decision is bit-identical.
            self.accept_p = (1.0 + self.a).powi(-(self.register() as i32));
        } else {
            // The rejected increment still reads the register but never writes.
            let _ = self.register.read();
        }
    }

    fn estimate(&self) -> f64 {
        let x = self.register() as f64;
        ((1.0 + self.a).powf(x) - 1.0) / self.a
    }
}

/// A median of independent Morris counters, boosting the success probability from a
/// constant to `1−δ` (standard median trick; this is the form used by the paper's
/// `SampleAndHold`, which requires accuracy `1 + O(ε/log(nm))` per counter).
#[derive(Debug, Clone)]
pub struct MorrisPlusCounter {
    copies: Vec<MorrisCounter>,
}

impl MorrisPlusCounter {
    /// Creates a counter that is a `(1±ε)`-approximation with probability at least
    /// `1−δ`.  Uses `t = Θ(log 1/δ)` independent copies, each with constant failure
    /// probability, combined by a median.
    pub fn new(tracker: &StateTracker, eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
        let t = ((8.0 * (1.0 / delta).ln()).ceil() as usize).max(1) | 1; // odd
        let per_copy_a = (eps * eps / 3.0).clamp(1e-9, 1.0);
        let copies = (0..t)
            .map(|_| MorrisCounter::new(tracker, per_copy_a))
            .collect();
        Self { copies }
    }

    /// Number of independent copies.
    pub fn copies(&self) -> usize {
        self.copies.len()
    }

    /// Total number of register increments (state changes) across all copies.
    pub fn total_register(&self) -> u64 {
        self.copies.iter().map(|c| c.register()).sum()
    }
}

impl Counter for MorrisPlusCounter {
    fn increment(&mut self, rng: &mut dyn RngCore) {
        for c in &mut self.copies {
            c.increment(rng);
        }
    }

    fn estimate(&self) -> f64 {
        let mut estimates: Vec<f64> = self.copies.iter().map(|c| c.estimate()).collect();
        estimates.sort_by(f64::total_cmp);
        estimates[estimates.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_is_close_for_large_counts() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(42);
        let mut c = MorrisCounter::new(&tracker, 0.01);
        let n = 50_000u64;
        for _ in 0..n {
            tracker.begin_epoch();
            c.increment(&mut rng);
        }
        let est = c.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.15, "relative error {rel} too large (est {est})");
    }

    #[test]
    fn state_changes_are_logarithmic_not_linear() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = MorrisCounter::new(&tracker, 0.05);
        let n = 100_000u64;
        for _ in 0..n {
            tracker.begin_epoch();
            c.increment(&mut rng);
        }
        // The register value bounds the number of state changes; it should be around
        // ln(1 + a n)/ln(1 + a) ≈ 175, far below n.
        assert!(c.register() < 1_000, "register {} too large", c.register());
        assert!(tracker.state_changes() < 1_000);
        assert!(tracker.state_changes() >= c.register());
    }

    #[test]
    fn estimate_is_monotone_in_the_register() {
        let tracker = StateTracker::new();
        let mut c = MorrisCounter::new(&tracker, 0.3);
        let mut last = c.estimate();
        assert_eq!(last, 0.0);
        for x in 1..=20 {
            c.force_register(x);
            let e = c.estimate();
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn acceptance_probability_decays() {
        let tracker = StateTracker::new();
        let mut c = MorrisCounter::new(&tracker, 1.0);
        assert_eq!(c.acceptance_probability(), 1.0);
        c.force_register(3);
        assert!((c.acceptance_probability() - 0.125).abs() < 1e-12);
        // The cached fast-path probability must track the accessor exactly.
        assert_eq!(c.accept_p.to_bits(), c.acceptance_probability().to_bits());
    }

    #[test]
    fn for_accuracy_clamps_parameters() {
        let tracker = StateTracker::new();
        let tight = MorrisCounter::for_accuracy(&tracker, 0.01, 0.01);
        let loose = MorrisCounter::for_accuracy(&tracker, 0.9, 0.9);
        assert!(tight.growth() < loose.growth());
        assert!(loose.growth() <= 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_growth_is_rejected() {
        let tracker = StateTracker::new();
        let _ = MorrisCounter::new(&tracker, 0.0);
    }

    #[test]
    fn morris_plus_uses_odd_number_of_copies_and_is_accurate() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = MorrisPlusCounter::new(&tracker, 0.2, 0.05);
        assert!(c.copies() % 2 == 1);
        let n = 20_000u64;
        for _ in 0..n {
            tracker.begin_epoch();
            c.increment(&mut rng);
        }
        let rel = (c.estimate() - n as f64).abs() / n as f64;
        assert!(rel < 0.25, "relative error {rel}");
        // Exact counters in every copy would perform n·copies writes; the Morris
        // registers do a small fraction of that.
        assert!(c.total_register() < n * c.copies() as u64 / 10);
    }
}
