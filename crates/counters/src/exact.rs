//! Exact counters: one state change per increment.

use fsc_state::{StateTracker, TrackedCell};
use rand::RngCore;

use crate::Counter;

/// An exact counter stored in a single tracked word.
///
/// This is the counter the paper's introduction uses as the canonical example of a
/// deterministic, write-per-update data structure: counting the stream length exactly
/// requires `m` state changes on a stream of length `m`.  It is provided both as a
/// baseline and as a building block for the classic heavy-hitter algorithms.
#[derive(Debug, Clone)]
pub struct ExactCounter {
    value: TrackedCell<u64>,
}

impl ExactCounter {
    /// Creates a counter at zero, charging one tracked word of space.
    pub fn new(tracker: &StateTracker) -> Self {
        Self {
            value: TrackedCell::new(tracker, 0),
        }
    }

    /// Creates a counter with an explicit initial value (used by SpaceSaving when a
    /// slot is recycled for a new item).
    pub fn with_value(tracker: &StateTracker, value: u64) -> Self {
        Self {
            value: TrackedCell::new(tracker, value),
        }
    }

    /// Exact current count.
    pub fn count(&self) -> u64 {
        *self.value.peek()
    }

    /// Sets the count to an explicit value (charged as a write).
    pub fn set(&mut self, value: u64) {
        self.value.write(value);
    }
}

impl Counter for ExactCounter {
    fn increment(&mut self, _rng: &mut dyn RngCore) {
        self.value.modify(|v| v + 1);
    }

    fn add(&mut self, k: u64, _rng: &mut dyn RngCore) {
        if k > 0 {
            self.value.modify(|v| v + k);
        }
    }

    fn estimate(&self) -> f64 {
        *self.value.peek() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_state::StateTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_increment_is_a_state_change() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = ExactCounter::new(&tracker);
        for _ in 0..100 {
            tracker.begin_epoch();
            c.increment(&mut rng);
        }
        assert_eq!(c.count(), 100);
        assert_eq!(c.estimate(), 100.0);
        assert_eq!(tracker.state_changes(), 100);
    }

    #[test]
    fn add_is_a_single_write() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = ExactCounter::with_value(&tracker, 5);
        tracker.begin_epoch();
        c.add(10, &mut rng);
        c.add(0, &mut rng);
        assert_eq!(c.count(), 15);
        // init write + one changing write; the zero add was free.
        assert_eq!(tracker.snapshot().word_writes, 2);
    }

    #[test]
    fn set_overwrites() {
        let tracker = StateTracker::new();
        let mut c = ExactCounter::new(&tracker);
        c.set(42);
        assert_eq!(c.count(), 42);
    }
}
