//! Geometric (Morris-style) accumulators for monotone sums of non-negative reals.
//!
//! The `p < 1` moment estimator of Theorem 3.2 ([JW19]) maintains the inner products
//! `⟨D^{(i,+)}, x⟩` and `⟨D^{(i,−)}, x⟩`, which on insertion-only streams are monotone
//! non-decreasing sums of positive reals.  Exactly as Morris counters replace exact
//! integer counters, a [`GeometricAccumulator`] stores only the index of the current
//! value on a geometric grid `((1+β)^X − 1)/β`, so the number of state changes over the
//! whole stream is `O(log_{1+β}(total)) = poly(1/β, log total)` instead of one per
//! addition, at the cost of a `(1+β)`-factor grid error.

use fsc_state::{StateTracker, TrackedCell};
use rand::{Rng, RngCore};

/// An approximate accumulator for a monotone non-decreasing sum of non-negative reals.
#[derive(Debug, Clone)]
pub struct GeometricAccumulator {
    register: TrackedCell<u64>,
    beta: f64,
}

impl GeometricAccumulator {
    /// Creates an accumulator with grid parameter `β ∈ (0, 1]` (relative grid error).
    pub fn new(tracker: &StateTracker, beta: f64) -> Self {
        assert!(
            beta > 0.0 && beta <= 1.0,
            "grid parameter must be in (0, 1]"
        );
        Self {
            register: TrackedCell::new(tracker, 0),
            beta,
        }
    }

    /// The grid parameter `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Current register value (equals the number of state changes this accumulator has
    /// made, since the register only ever increases and each write increases it).
    pub fn register(&self) -> u64 {
        *self.register.peek()
    }

    /// The value represented by register `x`.
    fn value_of(&self, x: f64) -> f64 {
        ((1.0 + self.beta).powf(x) - 1.0) / self.beta
    }

    /// Current estimate of the accumulated sum.
    pub fn estimate(&self) -> f64 {
        self.value_of(self.register() as f64)
    }

    /// Overwrites the register without any accounting — the restore path of
    /// checkpointing.  The accumulator registers of a restored sketch are rebuilt by
    /// construction (same tracked addresses) and then set here; the enclosing restore
    /// finishes with [`StateTracker::import_state`], which replaces every counter the
    /// rebuild charged.
    pub fn set_register_untracked(&mut self, register: u64) {
        self.register.set_untracked(register);
    }

    /// Adds `amount ≥ 0` to the accumulated sum.  The register is advanced to the grid
    /// index of the new total with probabilistic rounding, so the expected represented
    /// value tracks the true sum up to the `(1+β)` grid granularity; the register (and
    /// hence the state) changes only when the new total crosses a grid boundary.
    pub fn add(&mut self, amount: f64, rng: &mut dyn RngCore) {
        assert!(amount >= 0.0, "accumulator is monotone non-decreasing");
        if amount == 0.0 {
            return;
        }
        let current = self.estimate();
        let target = current + amount;
        let exact_register = (1.0 + self.beta * target).ln() / (1.0 + self.beta).ln();
        let floor = exact_register.floor();
        let frac = exact_register - floor;
        let mut new_register = floor as u64;
        if rng.gen::<f64>() < frac {
            new_register += 1;
        }
        if new_register > self.register() {
            self.register.write(new_register);
        } else {
            // Below-grid addition: read-only, no state change.
            let _ = self.register.read();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tracks_a_large_sum_of_unit_additions() {
        // A single run's error is dominated by the last register step (granularity
        // ~beta), so test the estimator where its guarantee lives: the mean estimate
        // over independent seeds is close to the true sum, and every run keeps the
        // register (= state changes) logarithmic.
        let n = 50_000u64;
        const SEEDS: u64 = 8;
        let mut mean_estimate = 0.0;
        for seed in 0..SEEDS {
            let tracker = StateTracker::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut acc = GeometricAccumulator::new(&tracker, 0.05);
            for _ in 0..n {
                tracker.begin_epoch();
                acc.add(1.0, &mut rng);
            }
            mean_estimate += acc.estimate() / SEEDS as f64;
            let rel = (acc.estimate() - n as f64).abs() / n as f64;
            assert!(rel < 0.5, "seed {seed}: relative error {rel}");
            // Register (= state changes of this accumulator) is logarithmic, not linear.
            assert!(acc.register() < 500, "register {}", acc.register());
            assert!(tracker.state_changes() < 500);
        }
        let rel = (mean_estimate - n as f64).abs() / n as f64;
        assert!(rel < 0.1, "mean relative error {rel}");
    }

    #[test]
    fn tracks_heavy_tailed_additions() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = GeometricAccumulator::new(&tracker, 0.1);
        let mut exact = 0.0;
        for i in 1..3_000u64 {
            let amount = if i % 100 == 0 { 500.0 } else { 0.3 };
            exact += amount;
            acc.add(amount, &mut rng);
        }
        let rel = (acc.estimate() - exact).abs() / exact;
        assert!(
            rel < 0.2,
            "relative error {rel} (est {}, exact {exact})",
            acc.estimate()
        );
    }

    #[test]
    fn zero_additions_never_write() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut acc = GeometricAccumulator::new(&tracker, 0.2);
        tracker.begin_epoch();
        acc.add(0.0, &mut rng);
        assert_eq!(acc.estimate(), 0.0);
        assert_eq!(tracker.state_changes(), 0);
        assert_eq!(acc.beta(), 0.2);
    }

    #[test]
    fn estimate_is_monotone() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut acc = GeometricAccumulator::new(&tracker, 0.3);
        let mut last = 0.0;
        for _ in 0..200 {
            acc.add(2.5, &mut rng);
            assert!(acc.estimate() >= last);
            last = acc.estimate();
        }
    }

    #[test]
    #[should_panic]
    fn negative_amounts_are_rejected() {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = GeometricAccumulator::new(&tracker, 0.1);
        acc.add(-1.0, &mut rng);
    }
}
