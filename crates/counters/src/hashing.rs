//! Limited-independence hash families.
//!
//! The paper's algorithms need pseudorandom decisions that can be re-derived from a
//! small stored seed rather than stored explicitly (storing a fresh random bit per item
//! would itself defeat the space bound).  This module provides:
//!
//! * [`PolyHash`] — k-wise independent polynomial hashing over the Mersenne prime
//!   `2^61 − 1`, used for universe subsampling (Algorithm 3), stream-position
//!   subsampling (Algorithm 2), and seed-derived p-stable variates ([`crate::stable`]).
//! * [`TabulationHash`] — simple tabulation hashing (3-wise independent, very fast),
//!   used by the CountMin / CountSketch baselines where 2-wise independence suffices.

use rand::{Rng, RngCore, SeedableRng};

/// The Mersenne prime 2^61 − 1, the modulus for polynomial hashing.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 − 1.
///
/// Branchless: the folded sum `lo + hi` is strictly below `2·(2^61 − 1)` for every
/// product of operands below the modulus, so a single masked subtraction fully
/// reduces it (the conditional is a flag-to-mask sequence, not a branch — one less
/// mispredict source inside the sign-evaluation kernels).  Public so the
/// lane-packed kernels in [`crate::lanes`] evaluate the *same* reduction per lane.
#[inline(always)]
pub fn mod_mersenne(x: u128) -> u64 {
    let lo = (x & MERSENNE_61 as u128) as u64;
    let hi = (x >> 61) as u64;
    let r = lo + hi;
    r - (MERSENNE_61 & ((r >= MERSENNE_61) as u64).wrapping_neg())
}

/// Folds a 128-bit value into `[0, 2^62)` without completing the reduction — the
/// cheap half of [`mod_mersenne`], used where several partial residues are summed
/// before one final reduction (see [`FourWise::hash_folded`]; public for the
/// lane-packed evaluators in [`crate::lanes`]).
#[inline(always)]
pub fn fold_mersenne(x: u128) -> u64 {
    (x & MERSENNE_61 as u128) as u64 + (x >> 61) as u64
}

/// Maps a hash value occupying `bits` uniform bits onto `[0, buckets)` by
/// multiply-shift: `⌊hash · buckets / 2^bits⌋`.
///
/// This is the bucket mapping shared by [`PolyHash::hash_bucket`] (61-bit hashes) and
/// [`TabulationHash::hash_bucket`] (64-bit hashes); unlike `hash % buckets` it carries
/// no modulo bias on a nearly-uniform input and compiles to one widening multiply.
#[inline(always)]
pub fn multiply_shift_bucket(hash: u64, buckets: usize, bits: u32) -> usize {
    debug_assert!(buckets > 0);
    debug_assert!(bits == 64 || hash < (1u64 << bits));
    ((hash as u128 * buckets as u128) >> bits) as usize
}

/// Smallest hash in `[0, MERSENNE_61]` satisfying a predicate that is monotone
/// non-decreasing in the hash — the shared boundary search behind
/// [`SubsampleThreshold`] and [`GeometricLevels`].  ~61 predicate evaluations, done
/// once per configuration, never per item.
fn lowest_hash_where(pred: impl Fn(u64) -> bool) -> u64 {
    let (mut lo, mut hi) = (0u64, MERSENNE_61);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// A precomputed integer cutoff making `hash_unit(x) < rate` a single `u64` compare.
///
/// [`PolyHash::hash_unit`] divides the 61-bit hash by `2^61 − 1`; comparing that
/// quotient against `rate` per item puts an f64 division on the subsampling hot path.
/// The cutoff is the exact integer boundary of the same predicate: `keeps(h)` returns
/// precisely `(h as f64 / MERSENNE_61 as f64) < rate` for **every** `h`, because it is
/// found by binary search over the monotone f64 predicate itself (rounding included)
/// rather than by multiplying `rate` back up.  See the equivalence tests.
///
/// This is the single-fixed-rate face of the mechanism; [`GeometricLevels`] is its
/// multi-level sibling and the one on the `F_p` estimator's production hot path.
/// Reach for `SubsampleThreshold` when a new algorithm tests one subsampling rate
/// against many items (i.e. wherever [`PolyHash::subsamples`] would otherwise sit in
/// a per-item loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubsampleThreshold {
    cutoff: u64,
}

impl SubsampleThreshold {
    /// Precomputes the cutoff for `rate`.
    pub fn for_rate(rate: f64) -> Self {
        // Smallest h in [0, MERSENNE_61] with (h as f64 / M as f64) >= rate; every
        // hash below it — and only those — satisfies hash_unit < rate.
        Self {
            cutoff: lowest_hash_where(|h| (h as f64 / MERSENNE_61 as f64) >= rate),
        }
    }

    /// Whether a [`PolyHash::hash_u64`] output survives subsampling at the
    /// precomputed rate.
    #[inline(always)]
    pub fn keeps(&self, hash: u64) -> bool {
        hash < self.cutoff
    }

    /// The integer cutoff (exposed for tests and diagnostics).
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }
}

/// Precomputed cutoffs for the geometric subsampling levels `2^{-1}, 2^{-2}, …`:
/// the deepest level an item reaches becomes one integer binary search instead of a
/// division plus `log2` plus `floor` per item.
///
/// [`GeometricLevels::deepest`] reproduces the f64 computation
/// `min(max_level, ⌊−log2(max(hash_unit(x), MIN_POSITIVE))⌋)` **exactly**, including
/// any rounding quirks of the platform's `log2`, because each level boundary is found
/// by binary search over that very f64 formula (which is monotone in the hash) rather
/// than over an idealised `u ≤ 2^{-k}` predicate.
#[derive(Debug, Clone)]
pub struct GeometricLevels {
    /// `bounds[k-1]` = smallest `h` whose f64-computed deepest level is `< k` —
    /// strictly decreasing in `k`.
    bounds: Vec<u64>,
}

impl GeometricLevels {
    /// The f64 reference computation this table replaces (kept as the oracle for both
    /// construction and the equivalence tests).
    pub fn reference_deepest(hash: u64) -> usize {
        let u = (hash as f64 / MERSENNE_61 as f64).max(f64::MIN_POSITIVE);
        (-u.log2()).floor().max(0.0) as usize
    }

    /// Precomputes boundaries for levels `1..=max_level` (level 0 is "kept always").
    pub fn new(max_level: usize) -> Self {
        let bounds = (1..=max_level)
            // Smallest h the f64 formula keeps out of level k.
            .map(|k| lowest_hash_where(|h| Self::reference_deepest(h) < k))
            .collect();
        Self { bounds }
    }

    /// The deepest level in `0..=max_level` reached by a [`PolyHash::hash_u64`] output.
    #[inline]
    pub fn deepest(&self, hash: u64) -> usize {
        // `bounds` is decreasing, so "hash below bound" holds on a prefix of levels.
        self.bounds.partition_point(|&b| hash < b)
    }

    /// The deepest representable level.
    pub fn max_level(&self) -> usize {
        self.bounds.len()
    }
}

/// An item folded for repeated polynomial hashing: `x mod (2^61 − 1)` together with
/// its square and cube residues.
///
/// Algorithms that evaluate *many* polynomial hashes of the *same* item per update
/// (an AMS sketch evaluates one 4-wise sign per counter; CountSketch one bucket and
/// one sign per row) fold the item **once** and reuse the powers, instead of paying
/// the `x mod M` fold and the serial Horner chain inside every evaluation.
#[derive(Debug, Clone, Copy)]
pub struct FoldedItem {
    /// `x mod (2^61 − 1)`.
    pub x: u64,
    /// `x² mod (2^61 − 1)`.
    pub x2: u64,
    /// `x³ mod (2^61 − 1)`.
    pub x3: u64,
}

impl FoldedItem {
    /// Folds `x` and precomputes its square and cube residues (three multiplies,
    /// once per item instead of per hash evaluation).
    #[inline(always)]
    pub fn new(x: u64) -> Self {
        let x = x % MERSENNE_61;
        let x2 = mod_mersenne(x as u128 * x as u128);
        let x3 = mod_mersenne(x2 as u128 * x as u128);
        Self { x, x2, x3 }
    }
}

/// A 4-wise independent hash in power form: `h(x) = a₀ + a₁x + a₂x² + a₃x³ mod
/// (2^61 − 1)`, evaluated from a [`FoldedItem`]'s precomputed powers.
///
/// Bit-identical to [`PolyHash::hash_u64`] on the same coefficients (the unit tests
/// pin this), but the three coefficient multiplies are **independent** rather than a
/// serial Horner chain — they pipeline within one evaluation and across the
/// coefficient array of a whole sketch row, which is what makes the AMS batch kernel
/// fast.  The three partial residues are folded to `< 2^62` and summed (the total
/// stays below `2^64`), then one final fold-and-subtract produces the canonical
/// representative in `[0, 2^61 − 1)` — the same value the fully-reducing Horner
/// evaluation computes, because both are the unique representative of the same
/// residue class.
#[derive(Debug, Clone, Copy)]
pub struct FourWise {
    /// Coefficients `[a₀, a₁, a₂, a₃]` (constant term first).
    c: [u64; 4],
}

impl FourWise {
    /// Converts a 4-wise [`PolyHash`] into power form (same hash values).
    pub fn from_poly(h: &PolyHash) -> Self {
        assert_eq!(h.independence(), 4, "FourWise requires a 4-wise PolyHash");
        let c = h.coefficients();
        Self {
            c: [c[0], c[1], c[2], c[3]],
        }
    }

    /// The power-form coefficients `[a₀, a₁, a₂, a₃]` (constant term first) — exposed
    /// so the lane-packed evaluators in [`crate::lanes`] can re-shape the evaluation
    /// without re-drawing randomness, exactly like [`PolyHash::coefficients`].
    #[inline(always)]
    pub fn coefficients(&self) -> [u64; 4] {
        self.c
    }

    /// Hash of a folded item as an element of `[0, 2^61 − 1)` — equal to
    /// [`PolyHash::hash_u64`] of the unfolded item.
    #[inline(always)]
    pub fn hash_folded(&self, f: &FoldedItem) -> u64 {
        let s = self.c[0]
            + fold_mersenne(self.c[1] as u128 * f.x as u128)
            + fold_mersenne(self.c[2] as u128 * f.x2 as u128)
            + fold_mersenne(self.c[3] as u128 * f.x3 as u128);
        let r = (s & MERSENNE_61) + (s >> 61);
        r - (MERSENNE_61 & ((r >= MERSENNE_61) as u64).wrapping_neg())
    }

    /// Rademacher sign `±1` of a folded item — equal to [`PolyHash::hash_sign`] of
    /// the unfolded item (branchless: `1 − 2·(h & 1)`).
    #[inline(always)]
    pub fn sign_folded(&self, f: &FoldedItem) -> i64 {
        1 - 2 * (self.hash_folded(f) & 1) as i64
    }

    /// Rademacher sign `±1` of an unfolded item (folds internally; use
    /// [`FourWise::sign_folded`] when hashing the same item repeatedly).
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        self.sign_folded(&FoldedItem::new(x))
    }
}

/// Precomputed cutoffs for the geometric levels of a **unit-interval draw**: the
/// deepest level `⌊−log2(u)⌋` reached by `u ∈ (0, 1)` becomes one small binary
/// search instead of an f64 `log2` + `floor` per draw.
///
/// This is the unit-interval sibling of [`GeometricLevels`] (which maps *hash*
/// outputs to levels): `FullSampleAndHold` draws one uniform per (item, repetition)
/// to pick the deepest stream-subsampling level, and that `log2` sat on its per-item
/// hot path.  [`UnitLevels::deepest`] reproduces the f64 reference computation
/// **exactly** — each boundary is found by binary search over the f64 bit patterns
/// (order-isomorphic to the values for non-negative floats) of the very formula it
/// replaces, rounding quirks included.
#[derive(Debug, Clone)]
pub struct UnitLevels {
    /// `bounds[k-1]` = bits of the smallest `u` whose f64-computed deepest level is
    /// `< k` — strictly decreasing in `k`.
    bounds: Vec<u64>,
}

impl UnitLevels {
    /// The f64 reference computation this table replaces (kept as the oracle for
    /// both construction and the equivalence tests).
    pub fn reference_deepest(u: f64) -> usize {
        let u = u.max(f64::MIN_POSITIVE);
        (-u.log2()).floor().max(0.0) as usize
    }

    /// Precomputes boundaries for levels `1..=max_level` (level 0 is "always").
    pub fn new(max_level: usize) -> Self {
        let one = 1.0f64.to_bits();
        let bounds = (1..=max_level)
            .map(|k| {
                // Smallest positive-f64 bit pattern the reference keeps out of level
                // k; bit patterns of non-negative floats sort like the floats.
                let (mut lo, mut hi) = (0u64, one);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if Self::reference_deepest(f64::from_bits(mid)) < k {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                lo
            })
            .collect();
        Self { bounds }
    }

    /// The deepest level in `0..=max_level` reached by `u ∈ [0, 1)` — equal to
    /// `reference_deepest(u).min(max_level)`.
    #[inline]
    pub fn deepest(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        let bits = u.to_bits();
        self.bounds.partition_point(|&b| bits < b)
    }

    /// The deepest representable level.
    pub fn max_level(&self) -> usize {
        self.bounds.len()
    }
}

/// k-wise independent hash function `h(x) = Σ a_i x^i mod (2^61 − 1)`.
///
/// Evaluations are deterministic given the seed, so the function occupies only `k`
/// words of space regardless of how many items are hashed.
#[derive(Debug, Clone)]
pub struct PolyHash {
    coefficients: Vec<u64>,
}

impl PolyHash {
    /// Draws a fresh k-wise independent hash function using `rng`.
    pub fn new(k: usize, rng: &mut impl RngCore) -> Self {
        assert!(k >= 1, "independence must be at least 1");
        let coefficients = (0..k).map(|_| rng.gen_range(0..MERSENNE_61)).collect();
        Self { coefficients }
    }

    /// Deterministically derives a k-wise independent hash function from a seed
    /// (convenient for reproducible experiments).
    pub fn from_seed(k: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new(k, &mut rng)
    }

    /// A pairwise-independent function (k = 2).
    pub fn two_wise(rng: &mut impl RngCore) -> Self {
        Self::new(2, rng)
    }

    /// A 4-wise independent function (used by AMS-style sign sketches).
    pub fn four_wise(rng: &mut impl RngCore) -> Self {
        Self::new(4, rng)
    }

    /// Degree of independence.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// The polynomial coefficients `[a₀, a₁, …]` (constant term first) — exposed so
    /// batch kernels can re-shape the evaluation (see [`FourWise`]) without
    /// re-drawing randomness.
    pub fn coefficients(&self) -> &[u64] {
        &self.coefficients
    }

    /// Hash of `x` as an element of `[0, 2^61 − 1)`.
    #[inline]
    pub fn hash_u64(&self, x: u64) -> u64 {
        self.hash_u64_folded(x % MERSENNE_61)
    }

    /// Hash of an item already folded to `[0, 2^61 − 1)` — equal to
    /// [`PolyHash::hash_u64`] of the unfolded item.  Hot loops that evaluate several
    /// hash functions of the same item fold it once (`x % MERSENNE_61`) and call this.
    #[inline]
    pub fn hash_u64_folded(&self, x: u64) -> u64 {
        debug_assert!(x < MERSENNE_61);
        let mut acc: u64 = 0;
        // Horner evaluation from the highest coefficient down.
        for &c in self.coefficients.iter().rev() {
            acc = mod_mersenne(acc as u128 * x as u128 + c as u128);
        }
        acc
    }

    /// Hash of `x` mapped to the unit interval `[0, 1)`.
    #[inline]
    pub fn hash_unit(&self, x: u64) -> f64 {
        self.hash_u64(x) as f64 / MERSENNE_61 as f64
    }

    /// Hash of `x` mapped to a bucket in `[0, buckets)` (multiply-shift on the 61-bit
    /// output; see [`multiply_shift_bucket`]).
    #[inline]
    pub fn hash_bucket(&self, x: u64, buckets: usize) -> usize {
        assert!(buckets > 0);
        multiply_shift_bucket(self.hash_u64(x), buckets, 61)
    }

    /// Hash of `x` mapped to a Rademacher sign `±1`.
    #[inline]
    pub fn hash_sign(&self, x: u64) -> i64 {
        if self.hash_u64(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Whether `x` survives subsampling at rate `rate ∈ [0, 1]`.
    ///
    /// Because the decision is a deterministic function of `x`, repeated occurrences of
    /// the same item are consistently kept or dropped — exactly what universe
    /// subsampling (Algorithm 3) requires — and nested rates produce nested subsets when
    /// the same hash function is reused with smaller rates.
    ///
    /// Hot loops that test one fixed rate against many items should precompute
    /// [`SubsampleThreshold::for_rate`] once and call
    /// `threshold.keeps(hash.hash_u64(x))` — one integer compare per item, equivalent
    /// bit-for-bit to this method.
    #[inline]
    pub fn subsamples(&self, x: u64, rate: f64) -> bool {
        self.hash_unit(x) < rate
    }
}

/// Simple tabulation hashing on the 8 bytes of a `u64` key (3-wise independent).
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Vec<[u64; 256]>,
}

impl TabulationHash {
    /// Draws fresh random tables using `rng`.
    pub fn new(rng: &mut impl RngCore) -> Self {
        let mut tables = Vec::with_capacity(8);
        for _ in 0..8 {
            let mut t = [0u64; 256];
            for entry in t.iter_mut() {
                *entry = rng.gen();
            }
            tables.push(t);
        }
        Self { tables }
    }

    /// Hash of `x` as a full 64-bit value.
    #[inline]
    pub fn hash_u64(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            let byte = ((x >> (8 * i)) & 0xff) as usize;
            acc ^= table[byte];
        }
        acc
    }

    /// The eight byte tables, for the lane-packed evaluator in [`crate::lanes`]
    /// (which interleaves the table lookups of several keys for memory-level
    /// parallelism while XOR-ing each lane in the same order as
    /// [`TabulationHash::hash_u64`]).
    #[inline(always)]
    pub(crate) fn tables(&self) -> &[[u64; 256]] {
        &self.tables
    }

    /// Hash of `x` mapped to a bucket in `[0, buckets)` (multiply-shift on the 64-bit
    /// output; see [`multiply_shift_bucket`]).
    #[inline]
    pub fn hash_bucket(&self, x: u64, buckets: usize) -> usize {
        assert!(buckets > 0);
        multiply_shift_bucket(self.hash_u64(x), buckets, 64)
    }

    /// Hash of `x` mapped to a Rademacher sign `±1`.
    #[inline]
    pub fn hash_sign(&self, x: u64) -> i64 {
        if self.hash_u64(x).count_ones().is_multiple_of(2) {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn poly_hash_is_deterministic_and_seeded() {
        let h1 = PolyHash::from_seed(4, 99);
        let h2 = PolyHash::from_seed(4, 99);
        let h3 = PolyHash::from_seed(4, 100);
        for x in [0u64, 1, 17, u64::MAX - 3] {
            assert_eq!(h1.hash_u64(x), h2.hash_u64(x));
        }
        assert_ne!(
            (0..64).map(|x| h1.hash_u64(x)).collect::<Vec<_>>(),
            (0..64).map(|x| h3.hash_u64(x)).collect::<Vec<_>>()
        );
        assert_eq!(h1.independence(), 4);
    }

    #[test]
    fn unit_hash_is_roughly_uniform() {
        let h = PolyHash::from_seed(2, 7);
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|x| h.hash_unit(x)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below_quarter = (0..n).filter(|&x| h.hash_unit(x) < 0.25).count();
        let frac = below_quarter as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn bucket_hash_spreads_over_all_buckets() {
        let h = PolyHash::from_seed(2, 3);
        let buckets = 16;
        let mut counts = vec![0usize; buckets];
        for x in 0..16_000u64 {
            counts[h.hash_bucket(x, buckets)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1_300, "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn sign_hash_is_balanced() {
        let h = PolyHash::from_seed(4, 11);
        let sum: i64 = (0..10_000u64).map(|x| h.hash_sign(x)).sum();
        assert!(sum.abs() < 500, "sign sum {sum} not balanced");
    }

    #[test]
    fn subsampling_rate_is_respected_and_consistent() {
        let h = PolyHash::from_seed(2, 5);
        let n = 50_000u64;
        let kept = (0..n).filter(|&x| h.subsamples(x, 0.1)).count();
        let frac = kept as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "kept fraction {frac}");
        // Nested: everything kept at rate 0.05 is also kept at rate 0.1.
        for x in 0..n {
            if h.subsamples(x, 0.05) {
                assert!(h.subsamples(x, 0.1));
            }
        }
    }

    #[test]
    fn mersenne_reduction_matches_naive_modulo() {
        for &(a, b) in &[(3u64, 5u64), (MERSENNE_61 - 1, 2), (1 << 60, 1 << 59)] {
            let expected = ((a as u128 * b as u128) % MERSENNE_61 as u128) as u64;
            assert_eq!(mod_mersenne(a as u128 * b as u128), expected);
        }
    }

    #[test]
    fn multiply_shift_bucket_matches_the_inline_expressions() {
        // The two call sites it replaced: 61-bit (PolyHash) and 64-bit (Tabulation).
        for hash in [0u64, 1, 12345, MERSENNE_61 - 1, u64::MAX] {
            for buckets in [1usize, 2, 7, 28, 1024] {
                if hash < MERSENNE_61 {
                    assert_eq!(
                        multiply_shift_bucket(hash, buckets, 61),
                        ((hash as u128 * buckets as u128) >> 61) as usize
                    );
                    assert!(multiply_shift_bucket(hash, buckets, 61) < buckets);
                }
                assert_eq!(
                    multiply_shift_bucket(hash, buckets, 64),
                    ((hash as u128 * buckets as u128) >> 64) as usize
                );
                assert!(multiply_shift_bucket(hash, buckets, 64) < buckets);
            }
        }
    }

    /// Rates the recorded experiments actually use: the per-update sampling
    /// probabilities of `Params::sample_prob` at the table sizes, the geometric
    /// universe-subsampling rates, plus awkward boundary values.
    fn recorded_rates() -> Vec<f64> {
        let mut rates = vec![0.0, 1.0, 1.5, 0.1, 0.05, 0.25, 0.5, 1e-9, 0.6339];
        for k in 1..=24 {
            rates.push(2f64.powi(-k));
        }
        rates
    }

    #[test]
    fn subsample_threshold_is_equivalent_to_the_f64_comparison() {
        // Proof of equivalence: the cutoff is the binary-searched boundary of the f64
        // predicate, so hashes at and adjacent to it must agree, as must a dense
        // sample of the whole range and real hash outputs.
        let h = PolyHash::from_seed(2, 5);
        for rate in recorded_rates() {
            let t = SubsampleThreshold::for_rate(rate);
            // Probes stay within the hash domain [0, MERSENNE_61): for rates ≥ 1 the
            // cutoff saturates at MERSENNE_61, one past the largest possible hash.
            for probe in [
                t.cutoff().saturating_sub(2),
                t.cutoff().saturating_sub(1),
                t.cutoff().min(MERSENNE_61 - 1),
                (t.cutoff() + 1).min(MERSENNE_61 - 1),
                0,
                MERSENNE_61 - 1,
            ] {
                assert_eq!(
                    t.keeps(probe),
                    ((probe as f64 / MERSENNE_61 as f64) < rate),
                    "rate {rate}, hash {probe}"
                );
            }
            for x in 0..2_000u64 {
                let hash = h.hash_u64(x * 0x9E37_79B9 + 1);
                assert_eq!(
                    t.keeps(hash),
                    h.subsamples(x * 0x9E37_79B9 + 1, rate),
                    "rate {rate}, item hash {hash}"
                );
            }
        }
    }

    #[test]
    fn geometric_levels_are_equivalent_to_the_f64_computation() {
        // The level counts the Fp estimator instantiates at the recorded experiment
        // sizes (universe_levels() for m = 2^12 .. 2^20).
        for max_level in [12usize, 14, 18, 20] {
            let levels = GeometricLevels::new(max_level);
            assert_eq!(levels.max_level(), max_level);
            // Boundary probes around every precomputed bound...
            for k in 1..=max_level {
                let b = levels.bounds[k - 1];
                for probe in [b.saturating_sub(1), b, (b + 1).min(MERSENNE_61 - 1)] {
                    assert_eq!(
                        levels.deepest(probe),
                        GeometricLevels::reference_deepest(probe).min(max_level),
                        "max_level {max_level}, boundary probe {probe}"
                    );
                }
            }
            // ... plus real hash outputs.
            let h = PolyHash::from_seed(2, 77);
            for x in 0..4_000u64 {
                let hash = h.hash_u64(x);
                assert_eq!(
                    levels.deepest(hash),
                    GeometricLevels::reference_deepest(hash).min(max_level),
                    "max_level {max_level}, x {x}"
                );
            }
        }
    }

    #[test]
    fn geometric_level_zero_hash_reaches_the_deepest_level() {
        let levels = GeometricLevels::new(19);
        assert_eq!(levels.deepest(0), 19, "h = 0 is kept everywhere");
        assert_eq!(levels.deepest(MERSENNE_61 - 1), 0);
    }

    #[test]
    fn four_wise_power_form_equals_horner_evaluation() {
        // The batch kernels' sign evaluator must agree with PolyHash bit-for-bit on
        // every input class: small, random, near the modulus, and above it (folded).
        for seed in [0u64, 1, 7, 99, 0xDEAD] {
            let poly = PolyHash::from_seed(4, seed);
            let fw = FourWise::from_poly(&poly);
            let probes = [
                0u64,
                1,
                2,
                MERSENNE_61 - 2,
                MERSENNE_61 - 1,
                MERSENNE_61,
                MERSENNE_61 + 1,
                u64::MAX,
                u64::MAX - 1,
            ];
            for &x in &probes {
                let f = FoldedItem::new(x);
                assert_eq!(fw.hash_folded(&f), poly.hash_u64(x), "seed {seed}, x {x}");
                assert_eq!(fw.sign_folded(&f), poly.hash_sign(x), "seed {seed}, x {x}");
                assert_eq!(fw.sign(x), poly.hash_sign(x));
            }
            for i in 0..20_000u64 {
                let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
                assert_eq!(
                    fw.hash_folded(&FoldedItem::new(x)),
                    poly.hash_u64(x),
                    "seed {seed}, x {x}"
                );
            }
        }
    }

    #[test]
    fn folded_item_powers_are_the_reduced_powers() {
        for x in [3u64, MERSENNE_61 - 1, MERSENNE_61 + 5, u64::MAX] {
            let f = FoldedItem::new(x);
            let xm = (x % MERSENNE_61) as u128;
            assert_eq!(f.x as u128, xm);
            assert_eq!(f.x2 as u128, xm * xm % MERSENNE_61 as u128);
            assert_eq!(
                f.x3 as u128,
                (xm * xm % MERSENNE_61 as u128) * xm % MERSENNE_61 as u128
            );
        }
    }

    #[test]
    fn folded_poly_hash_matches_the_unfolded_entry_point() {
        let h = PolyHash::from_seed(2, 41);
        for x in [0u64, 5, MERSENNE_61 - 1, MERSENNE_61 + 3, u64::MAX] {
            assert_eq!(h.hash_u64_folded(x % MERSENNE_61), h.hash_u64(x));
        }
    }

    #[test]
    fn unit_levels_are_equivalent_to_the_f64_computation() {
        // Level counts FullSampleAndHold instantiates at the recorded experiment
        // sizes (stream_levels() − 1 for m = 2^12 .. 2^20).
        for max_level in [11usize, 12, 18, 20] {
            let levels = UnitLevels::new(max_level);
            assert_eq!(levels.max_level(), max_level);
            // Boundary probes around every precomputed bound...
            for k in 1..=max_level {
                let b = levels.bounds[k - 1];
                for probe in [b.saturating_sub(1), b, b + 1] {
                    let u = f64::from_bits(probe);
                    if (0.0..1.0).contains(&u) {
                        assert_eq!(
                            levels.deepest(u),
                            UnitLevels::reference_deepest(u).min(max_level),
                            "max_level {max_level}, boundary bits {probe}"
                        );
                    }
                }
            }
            // ... plus dense deterministic draws across the unit interval, biased
            // toward small u (where the deep levels live).
            for i in 1..4_000u64 {
                for &u in &[
                    i as f64 / 4_000.0,
                    2f64.powi(-((i % 60) as i32)) * (1.0 + (i as f64 / 8_000.0)).min(1.999),
                ] {
                    let u = u.min(1.0 - f64::EPSILON);
                    assert_eq!(
                        levels.deepest(u),
                        UnitLevels::reference_deepest(u).min(max_level),
                        "max_level {max_level}, u {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn unit_levels_handle_the_interval_endpoints() {
        let levels = UnitLevels::new(16);
        assert_eq!(levels.deepest(0.0), 16, "u = 0 reaches every level");
        assert_eq!(levels.deepest(f64::MIN_POSITIVE), 16);
        assert_eq!(levels.deepest(0.5), 1);
        assert_eq!(levels.deepest(0.75), 0);
        assert_eq!(
            levels.deepest(1.0 - f64::EPSILON),
            0,
            "u just below 1 stays at level 0"
        );
    }

    #[test]
    fn tabulation_hash_buckets_and_signs_behave() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = TabulationHash::new(&mut rng);
        let buckets = 8;
        let mut counts = vec![0usize; buckets];
        let mut sign_sum = 0i64;
        for x in 0..8_000u64 {
            counts[h.hash_bucket(x, buckets)] += 1;
            sign_sum += h.hash_sign(x);
        }
        for &c in &counts {
            assert!(c > 700 && c < 1_300);
        }
        assert!(sign_sum.abs() < 500);
        assert_eq!(h.hash_u64(12345), h.hash_u64(12345));
    }
}
