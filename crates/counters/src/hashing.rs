//! Limited-independence hash families.
//!
//! The paper's algorithms need pseudorandom decisions that can be re-derived from a
//! small stored seed rather than stored explicitly (storing a fresh random bit per item
//! would itself defeat the space bound).  This module provides:
//!
//! * [`PolyHash`] — k-wise independent polynomial hashing over the Mersenne prime
//!   `2^61 − 1`, used for universe subsampling (Algorithm 3), stream-position
//!   subsampling (Algorithm 2), and seed-derived p-stable variates ([`crate::stable`]).
//! * [`TabulationHash`] — simple tabulation hashing (3-wise independent, very fast),
//!   used by the CountMin / CountSketch baselines where 2-wise independence suffices.

use rand::{Rng, RngCore, SeedableRng};

/// The Mersenne prime 2^61 − 1, the modulus for polynomial hashing.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Reduces a 128-bit product modulo 2^61 − 1.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    let lo = (x & MERSENNE_61 as u128) as u64;
    let hi = (x >> 61) as u64;
    let mut r = lo + hi;
    if r >= MERSENNE_61 {
        r -= MERSENNE_61;
    }
    r
}

/// k-wise independent hash function `h(x) = Σ a_i x^i mod (2^61 − 1)`.
///
/// Evaluations are deterministic given the seed, so the function occupies only `k`
/// words of space regardless of how many items are hashed.
#[derive(Debug, Clone)]
pub struct PolyHash {
    coefficients: Vec<u64>,
}

impl PolyHash {
    /// Draws a fresh k-wise independent hash function using `rng`.
    pub fn new(k: usize, rng: &mut impl RngCore) -> Self {
        assert!(k >= 1, "independence must be at least 1");
        let coefficients = (0..k).map(|_| rng.gen_range(0..MERSENNE_61)).collect();
        Self { coefficients }
    }

    /// Deterministically derives a k-wise independent hash function from a seed
    /// (convenient for reproducible experiments).
    pub fn from_seed(k: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Self::new(k, &mut rng)
    }

    /// A pairwise-independent function (k = 2).
    pub fn two_wise(rng: &mut impl RngCore) -> Self {
        Self::new(2, rng)
    }

    /// A 4-wise independent function (used by AMS-style sign sketches).
    pub fn four_wise(rng: &mut impl RngCore) -> Self {
        Self::new(4, rng)
    }

    /// Degree of independence.
    pub fn independence(&self) -> usize {
        self.coefficients.len()
    }

    /// Hash of `x` as an element of `[0, 2^61 − 1)`.
    pub fn hash_u64(&self, x: u64) -> u64 {
        let x = x % MERSENNE_61;
        let mut acc: u64 = 0;
        // Horner evaluation from the highest coefficient down.
        for &c in self.coefficients.iter().rev() {
            acc = mod_mersenne(acc as u128 * x as u128 + c as u128);
        }
        acc
    }

    /// Hash of `x` mapped to the unit interval `[0, 1)`.
    pub fn hash_unit(&self, x: u64) -> f64 {
        self.hash_u64(x) as f64 / MERSENNE_61 as f64
    }

    /// Hash of `x` mapped to a bucket in `[0, buckets)`.
    pub fn hash_bucket(&self, x: u64, buckets: usize) -> usize {
        assert!(buckets > 0);
        // Multiply-shift style mapping avoids the modulo bias of `% buckets` on the
        // nearly-uniform 61-bit output.
        ((self.hash_u64(x) as u128 * buckets as u128) >> 61) as usize
    }

    /// Hash of `x` mapped to a Rademacher sign `±1`.
    pub fn hash_sign(&self, x: u64) -> i64 {
        if self.hash_u64(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Whether `x` survives subsampling at rate `rate ∈ [0, 1]`.
    ///
    /// Because the decision is a deterministic function of `x`, repeated occurrences of
    /// the same item are consistently kept or dropped — exactly what universe
    /// subsampling (Algorithm 3) requires — and nested rates produce nested subsets when
    /// the same hash function is reused with smaller rates.
    pub fn subsamples(&self, x: u64, rate: f64) -> bool {
        self.hash_unit(x) < rate
    }
}

/// Simple tabulation hashing on the 8 bytes of a `u64` key (3-wise independent).
#[derive(Debug, Clone)]
pub struct TabulationHash {
    tables: Vec<[u64; 256]>,
}

impl TabulationHash {
    /// Draws fresh random tables using `rng`.
    pub fn new(rng: &mut impl RngCore) -> Self {
        let mut tables = Vec::with_capacity(8);
        for _ in 0..8 {
            let mut t = [0u64; 256];
            for entry in t.iter_mut() {
                *entry = rng.gen();
            }
            tables.push(t);
        }
        Self { tables }
    }

    /// Hash of `x` as a full 64-bit value.
    pub fn hash_u64(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            let byte = ((x >> (8 * i)) & 0xff) as usize;
            acc ^= table[byte];
        }
        acc
    }

    /// Hash of `x` mapped to a bucket in `[0, buckets)`.
    pub fn hash_bucket(&self, x: u64, buckets: usize) -> usize {
        assert!(buckets > 0);
        ((self.hash_u64(x) as u128 * buckets as u128) >> 64) as usize
    }

    /// Hash of `x` mapped to a Rademacher sign `±1`.
    pub fn hash_sign(&self, x: u64) -> i64 {
        if self.hash_u64(x).count_ones().is_multiple_of(2) {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn poly_hash_is_deterministic_and_seeded() {
        let h1 = PolyHash::from_seed(4, 99);
        let h2 = PolyHash::from_seed(4, 99);
        let h3 = PolyHash::from_seed(4, 100);
        for x in [0u64, 1, 17, u64::MAX - 3] {
            assert_eq!(h1.hash_u64(x), h2.hash_u64(x));
        }
        assert_ne!(
            (0..64).map(|x| h1.hash_u64(x)).collect::<Vec<_>>(),
            (0..64).map(|x| h3.hash_u64(x)).collect::<Vec<_>>()
        );
        assert_eq!(h1.independence(), 4);
    }

    #[test]
    fn unit_hash_is_roughly_uniform() {
        let h = PolyHash::from_seed(2, 7);
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|x| h.hash_unit(x)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below_quarter = (0..n).filter(|&x| h.hash_unit(x) < 0.25).count();
        let frac = below_quarter as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn bucket_hash_spreads_over_all_buckets() {
        let h = PolyHash::from_seed(2, 3);
        let buckets = 16;
        let mut counts = vec![0usize; buckets];
        for x in 0..16_000u64 {
            counts[h.hash_bucket(x, buckets)] += 1;
        }
        for &c in &counts {
            assert!(c > 700 && c < 1_300, "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn sign_hash_is_balanced() {
        let h = PolyHash::from_seed(4, 11);
        let sum: i64 = (0..10_000u64).map(|x| h.hash_sign(x)).sum();
        assert!(sum.abs() < 500, "sign sum {sum} not balanced");
    }

    #[test]
    fn subsampling_rate_is_respected_and_consistent() {
        let h = PolyHash::from_seed(2, 5);
        let n = 50_000u64;
        let kept = (0..n).filter(|&x| h.subsamples(x, 0.1)).count();
        let frac = kept as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "kept fraction {frac}");
        // Nested: everything kept at rate 0.05 is also kept at rate 0.1.
        for x in 0..n {
            if h.subsamples(x, 0.05) {
                assert!(h.subsamples(x, 0.1));
            }
        }
    }

    #[test]
    fn mersenne_reduction_matches_naive_modulo() {
        for &(a, b) in &[(3u64, 5u64), (MERSENNE_61 - 1, 2), (1 << 60, 1 << 59)] {
            let expected = ((a as u128 * b as u128) % MERSENNE_61 as u128) as u64;
            assert_eq!(mod_mersenne(a as u128 * b as u128), expected);
        }
    }

    #[test]
    fn tabulation_hash_buckets_and_signs_behave() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = TabulationHash::new(&mut rng);
        let buckets = 8;
        let mut counts = vec![0usize; buckets];
        let mut sign_sum = 0i64;
        for x in 0..8_000u64 {
            counts[h.hash_bucket(x, buckets)] += 1;
            sign_sum += h.hash_sign(x);
        }
        for &c in &counts {
            assert!(c > 700 && c < 1_300);
        }
        assert!(sign_sum.abs() < 500);
        assert_eq!(h.hash_u64(12345), h.hash_u64(12345));
    }
}
