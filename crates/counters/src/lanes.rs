//! Lane-packed ("portable SIMD") evaluation of the branch-free hash kernels.
//!
//! The bulk kernels of the write-heavy baselines spend almost their entire per-item
//! budget on *reads*: tabulation table lookups, Mersenne-prime multiplies, and the
//! probe loads into the counter matrix.  All of those are branch-free and mutually
//! independent across items, so the classic SIMD trick applies even without
//! intrinsics: pack `W ∈ {2, 4, 8}` items into plain `[u64; W]` arrays and evaluate
//! every step lane-by-lane in a fixed-width inner loop.  The compiler unrolls the
//! `W`-sized loops completely (the width is a const generic), which turns each
//! serial dependency chain into `W` independent chains that pipeline through the
//! multiplier and the load ports — and auto-vectorizes the pure-ALU steps where the
//! target ISA has the lanes for it.
//!
//! # Bit-equivalence by construction
//!
//! Every helper here evaluates the **same integer expression** as its scalar
//! counterpart in [`crate::hashing`], per lane, in the same operation order; lanes
//! never interact.  Packing items into lanes therefore cannot change any output bit:
//! for each lane `l`, `f_lanes(xs)[l] ≡ f_scalar(xs[l])` holds as an identity over
//! the integers (no floating point, no reassociation, no rounding), and the unit
//! tests below additionally pin the equality exhaustively against the scalar
//! entry points.  This is what lets the sketch kernels swap widths freely while the
//! batch laws demand bit-identical answers, `StateReport`s, and wear tables.
//!
//! # Choosing a width
//!
//! Widths 1 (scalar fallback), 2, 4, and 8 are supported ([`LANE_WIDTHS`]); kernels
//! select one at construction and keep it for life.  [`DEFAULT_LANE_WIDTH`] is the
//! measured sweet spot on the recorded benchmark host: wide enough to saturate the
//! load ports during tabulation gathers, narrow enough that the per-row working set
//! of buckets and signs stays in registers.

use crate::hashing::{
    fold_mersenne, mod_mersenne, multiply_shift_bucket, FoldedItem, FourWise, TabulationHash,
    MERSENNE_61,
};

/// The lane widths every lane-packed kernel supports (1 is the scalar fallback).
pub const LANE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Default width for kernels constructed without an explicit choice (see the module
/// docs; `fig_throughput --lanes` forces other widths for A/B runs).
pub const DEFAULT_LANE_WIDTH: usize = 8;

/// Whether `w` is a supported lane width.
#[inline]
pub fn is_supported_width(w: usize) -> bool {
    LANE_WIDTHS.contains(&w)
}

/// Folds `W` items for repeated polynomial hashing — per lane identical to
/// [`FoldedItem::new`] (fold, square, cube), with the three dependent multiplies of
/// each lane pipelining against the other lanes'.
#[inline(always)]
pub fn fold_items<const W: usize>(xs: &[u64; W]) -> [FoldedItem; W] {
    let mut x = [0u64; W];
    let mut x2 = [0u64; W];
    let mut x3 = [0u64; W];
    for l in 0..W {
        x[l] = xs[l] % MERSENNE_61;
    }
    for l in 0..W {
        x2[l] = mod_mersenne(x[l] as u128 * x[l] as u128);
    }
    for l in 0..W {
        x3[l] = mod_mersenne(x2[l] as u128 * x[l] as u128);
    }
    std::array::from_fn(|l| FoldedItem {
        x: x[l],
        x2: x2[l],
        x3: x3[l],
    })
}

/// Multiply-shift bucket mapping of `W` hashes — per lane identical to
/// [`multiply_shift_bucket`].
#[inline(always)]
pub fn multiply_shift_buckets<const W: usize>(
    hashes: &[u64; W],
    buckets: usize,
    bits: u32,
) -> [usize; W] {
    std::array::from_fn(|l| multiply_shift_bucket(hashes[l], buckets, bits))
}

/// Horner evaluation of one polynomial hash at `W` folded points — per lane
/// identical to [`crate::hashing::PolyHash::hash_u64_folded`] (same coefficient
/// order, same [`mod_mersenne`] per step), with the `W` serial Horner chains
/// pipelining against each other.
#[inline(always)]
pub fn poly_hash_folded<const W: usize>(coefficients: &[u64], xs: &[u64; W]) -> [u64; W] {
    let mut acc = [0u64; W];
    for &c in coefficients.iter().rev() {
        for l in 0..W {
            acc[l] = mod_mersenne(acc[l] as u128 * xs[l] as u128 + c as u128);
        }
    }
    acc
}

/// Power-form 4-wise hash of `W` folded items under one coefficient set — per lane
/// identical to [`FourWise::hash_folded`] (three independent partial folds, one
/// final fold-and-subtract).
#[inline(always)]
pub fn four_wise_hashes<const W: usize>(c: &[u64; 4], f: &[FoldedItem; W]) -> [u64; W] {
    let mut out = [0u64; W];
    for l in 0..W {
        let s = c[0]
            + fold_mersenne(c[1] as u128 * f[l].x as u128)
            + fold_mersenne(c[2] as u128 * f[l].x2 as u128)
            + fold_mersenne(c[3] as u128 * f[l].x3 as u128);
        let r = (s & MERSENNE_61) + (s >> 61);
        out[l] = r - (MERSENNE_61 & ((r >= MERSENNE_61) as u64).wrapping_neg());
    }
    out
}

/// Rademacher signs of `W` folded items under one coefficient set — per lane
/// identical to [`FourWise::sign_folded`].
#[inline(always)]
pub fn four_wise_signs<const W: usize>(c: &[u64; 4], f: &[FoldedItem; W]) -> [i64; W] {
    let h = four_wise_hashes::<W>(c, f);
    std::array::from_fn(|l| 1 - 2 * (h[l] & 1) as i64)
}

/// Power-form 4-wise hashes of **one** folded item under `W` different coefficient
/// sets — the transposed lane shape the AMS sign kernel wants (one item, a whole
/// row of sign functions).  Per function identical to [`FourWise::hash_folded`].
///
/// # Panics
///
/// If `hashes.len() < W`.
#[inline(always)]
pub fn four_wise_hashes_many<const W: usize>(hashes: &[FourWise], f: &FoldedItem) -> [u64; W] {
    let mut out = [0u64; W];
    for l in 0..W {
        let c = hashes[l].coefficients();
        let s = c[0]
            + fold_mersenne(c[1] as u128 * f.x as u128)
            + fold_mersenne(c[2] as u128 * f.x2 as u128)
            + fold_mersenne(c[3] as u128 * f.x3 as u128);
        let r = (s & MERSENNE_61) + (s >> 61);
        out[l] = r - (MERSENNE_61 & ((r >= MERSENNE_61) as u64).wrapping_neg());
    }
    out
}

/// Tabulation hash of `W` keys — per lane identical to
/// [`TabulationHash::hash_u64`], with the byte-table iteration outermost so the
/// `8·W` independent table loads issue in interleaved order and overlap in the
/// load queue (the whole point: one item's eight lookups are a short dependent
/// XOR reduction, eight items' lookups are memory-level parallelism).
#[inline(always)]
pub fn tabulation_hashes<const W: usize>(hash: &TabulationHash, xs: &[u64; W]) -> [u64; W] {
    let mut acc = [0u64; W];
    for (i, table) in hash.tables().iter().enumerate() {
        for l in 0..W {
            acc[l] ^= table[((xs[l] >> (8 * i)) & 0xff) as usize];
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::PolyHash;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn probe_items(seed: u64) -> Vec<u64> {
        let mut items = vec![
            0u64,
            1,
            2,
            MERSENNE_61 - 2,
            MERSENNE_61 - 1,
            MERSENNE_61,
            MERSENNE_61 + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        items.extend(
            (0..4_000u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed)),
        );
        items
    }

    /// Runs `check` on every supported width over sliding windows of the probe set,
    /// so each helper is pinned at W = 1, 2, 4, and 8 on identical inputs.
    fn for_each_width(seed: u64, mut check: impl FnMut(&[u64])) {
        let items = probe_items(seed);
        for &w in &LANE_WIDTHS {
            for window in items.windows(w) {
                check(window);
            }
        }
    }

    #[test]
    fn supported_widths_are_exactly_the_advertised_set() {
        for w in 0..=16 {
            assert_eq!(is_supported_width(w), matches!(w, 1 | 2 | 4 | 8), "{w}");
        }
        assert!(is_supported_width(DEFAULT_LANE_WIDTH));
    }

    fn check_window<const W: usize>(window: &[u64], poly2: &PolyHash, fw: &FourWise) {
        let xs: [u64; W] = window.try_into().unwrap();
        let folded = fold_items::<W>(&xs);
        let folded_x: [u64; W] = std::array::from_fn(|l| folded[l].x);
        let poly = poly_hash_folded::<W>(poly2.coefficients(), &folded_x);
        let fwh = four_wise_hashes::<W>(&fw.coefficients(), &folded);
        let fws = four_wise_signs::<W>(&fw.coefficients(), &folded);
        let buckets = multiply_shift_buckets::<W>(&poly, 28, 61);
        for l in 0..W {
            let scalar = FoldedItem::new(xs[l]);
            assert_eq!(folded[l].x, scalar.x);
            assert_eq!(folded[l].x2, scalar.x2);
            assert_eq!(folded[l].x3, scalar.x3);
            assert_eq!(poly[l], poly2.hash_u64(xs[l]));
            assert_eq!(fwh[l], fw.hash_folded(&scalar));
            assert_eq!(fws[l], fw.sign_folded(&scalar));
            assert_eq!(buckets[l], multiply_shift_bucket(poly[l], 28, 61));
        }
    }

    #[test]
    fn every_lane_helper_is_bit_identical_to_its_scalar_counterpart() {
        for seed in [0u64, 7, 99] {
            let poly2 = PolyHash::from_seed(2, seed);
            let fw = FourWise::from_poly(&PolyHash::from_seed(4, seed ^ 0xA5));
            for_each_width(seed, |window| match window.len() {
                1 => check_window::<1>(window, &poly2, &fw),
                2 => check_window::<2>(window, &poly2, &fw),
                4 => check_window::<4>(window, &poly2, &fw),
                _ => check_window::<8>(window, &poly2, &fw),
            });
        }
    }

    #[test]
    fn many_hash_form_matches_per_function_evaluation() {
        let hashes: Vec<FourWise> = (0..16)
            .map(|s| FourWise::from_poly(&PolyHash::from_seed(4, s)))
            .collect();
        for &x in &probe_items(3)[..64] {
            let f = FoldedItem::new(x);
            let h8 = four_wise_hashes_many::<8>(&hashes, &f);
            let h4 = four_wise_hashes_many::<4>(&hashes[8..], &f);
            for l in 0..8 {
                assert_eq!(h8[l], hashes[l].hash_folded(&f), "x {x}, lane {l}");
            }
            for l in 0..4 {
                assert_eq!(h4[l], hashes[8 + l].hash_folded(&f), "x {x}, lane {l}");
            }
        }
    }

    #[test]
    fn tabulation_lanes_match_the_scalar_hash() {
        let mut rng = StdRng::seed_from_u64(5);
        let hash = TabulationHash::new(&mut rng);
        for_each_width(11, |window| {
            let check = |got: &[u64]| {
                for (l, &h) in got.iter().enumerate() {
                    assert_eq!(h, hash.hash_u64(window[l]), "lane {l}");
                }
            };
            match window.len() {
                1 => check(&tabulation_hashes::<1>(&hash, window.try_into().unwrap())),
                2 => check(&tabulation_hashes::<2>(&hash, window.try_into().unwrap())),
                4 => check(&tabulation_hashes::<4>(&hash, window.try_into().unwrap())),
                _ => check(&tabulation_hashes::<8>(&hash, window.try_into().unwrap())),
            }
        });
    }
}
