//! Generation-stamped serving views: publish-once, read-many snapshot caching.
//!
//! A [`ServingView`] is the std-only RCU cell behind
//! [`Engine::query`](crate::Engine::query): the merged shard union is built
//! once, published as an
//! [`Arc`] stamped with the engine's staleness generation, and every subsequent
//! query whose live generation still matches is a lock-free counter compare plus
//! a brief read-lock `Arc` clone — no checkpoint restore, no merge pass.  The
//! stamp only goes stale when a *state change* lands (the paper's scarce
//! resource), so the serve path inherits the `Õ(n^{1−1/p})` rebuild economy the
//! complexity measure promises; see DESIGN.md §1.7 for the soundness argument.
//!
//! Publication order matters: the snapshot is written under the write lock
//! *before* the stamp is stored (release ordering), so a reader that observes a
//! matching stamp always finds a snapshot at least that fresh in the slot.
//! Concurrent rebuilds for the same generation are idempotent — both publish
//! observably identical merged views — so readers never need to coordinate.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use fsc_state::{Answer, Query, Queryable};

/// Stamp value meaning "nothing published yet".  Generations are sums of
/// per-shard counters that would take centuries of state changes to reach
/// `u64::MAX`, so the sentinel never collides with a live generation.
const STAMP_EMPTY: u64 = u64::MAX;

/// A generation-stamped snapshot cell (see the module docs above).
///
/// `stamp` is the generation the published snapshot was built at
/// (an empty-sentinel before the first publish); `slot` holds the snapshot
/// itself.  Readers clone the `Arc` out and drop the lock immediately, so a
/// concurrent publish never blocks on slow queries.
pub struct ServingView<A> {
    stamp: AtomicU64,
    slot: RwLock<Option<Arc<A>>>,
    rebuilds: AtomicU64,
}

impl<A> ServingView<A> {
    /// An empty cell: no snapshot, stamp at the sentinel, zero rebuilds.
    pub(crate) fn new() -> Self {
        Self {
            stamp: AtomicU64::new(STAMP_EMPTY),
            slot: RwLock::new(None),
            rebuilds: AtomicU64::new(0),
        }
    }

    fn read_slot(&self) -> Option<Arc<A>> {
        match self.slot.read() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The published snapshot if it was built at exactly `generation` — the
    /// lock-free fast path (one atomic load; the read lock is only taken once
    /// the stamp already matches).
    pub(crate) fn get_if_current(&self, generation: u64) -> Option<Arc<A>> {
        if self.stamp.load(Ordering::Acquire) != generation {
            return None;
        }
        self.read_slot()
    }

    /// Publishes `snapshot` as the view at `generation` and returns it shared.
    /// Slot first, stamp second (release): a matching stamp implies the slot
    /// holds a snapshot at least that fresh.
    pub(crate) fn publish(&self, generation: u64, snapshot: A) -> Arc<A> {
        let shared = Arc::new(snapshot);
        match self.slot.write() {
            Ok(mut guard) => *guard = Some(Arc::clone(&shared)),
            Err(poisoned) => *poisoned.into_inner() = Some(Arc::clone(&shared)),
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.stamp.store(generation, Ordering::Release);
        shared
    }

    /// Generation the published snapshot was built at (`None` until the first
    /// publish).  A reader comparing this against a live
    /// [`Engine::generation`](crate::Engine::generation) learns whether its
    /// cached answers are current without touching the summary.
    pub fn published_stamp(&self) -> Option<u64> {
        match self.stamp.load(Ordering::Acquire) {
            STAMP_EMPTY => None,
            stamp => Some(stamp),
        }
    }

    /// Number of snapshot publishes over this cell's lifetime — the serve-cost
    /// counter F13 plots against state changes.  Monotone; never reset, not
    /// even by engine restore.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// The published snapshot regardless of staleness (`None` until the first
    /// publish) — what a detached reader serves between writer refreshes.
    pub fn snapshot(&self) -> Option<Arc<A>> {
        self.read_slot()
    }
}

impl<A> fmt::Debug for ServingView<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingView")
            .field("stamp", &self.published_stamp())
            .field("rebuilds", &self.rebuilds())
            .field("populated", &self.read_slot().is_some())
            .finish()
    }
}

/// The type-erased reader face of a [`ServingView`]: what reader threads hold
/// (via [`DynEngine::serve_handle`](crate::DynEngine::serve_handle)) to answer
/// queries from the latest *published* snapshot while a writer owns the engine
/// and keeps ingesting.
///
/// Handles are deliberately decoupled from freshness: [`ServeHandle::serve`]
/// never rebuilds, it answers from whatever the writer last published (possibly
/// stale by the updates since the last
/// [`Engine::refresh_view`](crate::Engine::refresh_view)).  At quiescence —
/// writer done, one final
/// refresh — handle answers equal the fresh merged summary exactly.
pub trait ServeHandle: Send + Sync {
    /// Answers from the latest published snapshot, or `None` if nothing has
    /// been published yet.  Never rebuilds; never blocks on ingest.
    fn serve(&self, query: &Query) -> Option<Answer>;
    /// Generation of the published snapshot (`None` before the first publish).
    fn stamp(&self) -> Option<u64>;
    /// Snapshot publishes so far (see [`ServingView::rebuilds`]).
    fn rebuilds(&self) -> u64;
}

impl<A: Queryable + Send + Sync> ServeHandle for ServingView<A> {
    fn serve(&self, query: &Query) -> Option<Answer> {
        self.snapshot().map(|view| view.query(query))
    }

    fn stamp(&self) -> Option<u64> {
        self.published_stamp()
    }

    fn rebuilds(&self) -> u64 {
        ServingView::rebuilds(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_view_serves_nothing_and_matches_no_generation() {
        let view: ServingView<u64> = ServingView::new();
        assert_eq!(view.published_stamp(), None);
        assert_eq!(view.snapshot(), None);
        assert_eq!(view.rebuilds(), 0);
        assert!(view.get_if_current(0).is_none());
        assert!(
            view.get_if_current(STAMP_EMPTY).is_none(),
            "the sentinel itself must not read as a published generation"
        );
    }

    #[test]
    fn publish_then_hit_then_stale() {
        let view: ServingView<u64> = ServingView::new();
        let shared = view.publish(7, 42);
        assert_eq!(*shared, 42);
        assert_eq!(view.published_stamp(), Some(7));
        assert_eq!(view.rebuilds(), 1);
        assert_eq!(view.get_if_current(7).as_deref(), Some(&42));
        assert!(view.get_if_current(8).is_none(), "stale stamp must miss");
        view.publish(8, 43);
        assert_eq!(view.get_if_current(8).as_deref(), Some(&43));
        assert_eq!(view.rebuilds(), 2);
    }

    #[test]
    fn readers_hold_snapshots_across_republication() {
        let view: ServingView<Vec<u64>> = ServingView::new();
        let old = view.publish(1, vec![1, 2, 3]);
        view.publish(2, vec![4, 5]);
        assert_eq!(*old, vec![1, 2, 3], "RCU: old readers keep the old epoch");
        assert_eq!(view.snapshot().as_deref(), Some(&vec![4, 5]));
    }
}
