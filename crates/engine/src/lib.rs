//! # fsc-engine — a checkpointable, sharded streaming engine
//!
//! The long-lived serving layer over the repository's summaries: an [`Engine`] owns
//! `S` replicas ("shards") of one summary type, routes every ingested batch across
//! them, serves queries from their [`Mergeable`](fsc_state::Mergeable) union, and
//! persists/recovers itself through the versioned checkpoints of the
//! [`Snapshot`](fsc_state::Snapshot) layer.
//!
//! The design leans on the three laws the algorithm layer already guarantees:
//!
//! * **Batch law** — shard ingest goes through the specialized `process_batch`
//!   kernels, observably identical to per-item updates;
//! * **Merge law** — linear sketches with shared seeds merge *exactly*, so a sharded
//!   engine answers queries identically to a single-shard run over the concatenated
//!   stream (counter summaries merge within their usual additive bounds);
//! * **Snapshot law** — `restore(checkpoint(e))` is observably identical to `e`
//!   (answers, per-shard [`StateReport`](fsc_state::StateReport), per-address wear),
//!   so a crash between checkpoints loses only the updates since the last one.
//!
//! Queries never disturb shard state, and they almost never rebuild: the merged
//! view — shard 0 restored from its checkpoint, the remaining shards folded in
//! with `merge_from` — is built once and published through a generation-stamped
//! [`ServingView`], then revalidated lazily against [`Engine::generation`], the
//! engine's state-change clock.  A query on a current view is a lock-free stamp
//! compare plus an `Arc` clone; a rebuild happens only after a *state change*
//! lands, so serve cost tracks the paper's scarce resource rather than ingest
//! volume ([`Engine::query_fresh`] keeps the always-rebuild path as the testing
//! oracle, and [`ServeHandle`] lets detached reader threads serve published
//! snapshots while a writer ingests).
//!
//! Checkpoints have two faces: [`Engine::checkpoint`] serializes everything, and
//! [`Engine::checkpoint_delta`] emits only the `FSCD` bytes that changed since a
//! captured [`BaseRef`](fsc_state::delta::BaseRef) — chained and time-travelled via
//! [`CheckpointChain`](fsc_state::delta::CheckpointChain), with the cadence/mode
//! selected per scenario through [`scenario::CheckpointMode`] (the delta-law tests
//! pin that base + deltas reconstructs the full checkpoint byte-for-byte).
//!
//! [`scenario`] adds the config-driven workload layer: a [`Scenario`] is a literal
//! description (segments of Zipf/uniform/sorted/bursty/drifting traffic, a checkpoint
//! cadence) that synthesizes its stream from `fsc-streamgen`, so a new workload is a
//! config value, not a new binary.  The `fsc-bench` experiment F12 (`fig_engine`)
//! drives engines from the shared algorithm registry through these scenarios.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
pub mod scenario;
mod view;

pub use engine::{detected_cores, DynEngine, Engine, EngineAlgorithm, EngineConfig, Routing};
pub use scenario::{CheckpointMode, Scenario, Segment, Workload};
pub use view::{ServeHandle, ServingView};
