//! Config-driven workload scenarios.
//!
//! A [`Scenario`] is a *literal description* of a workload — segments of traffic
//! drawn from the `fsc-streamgen` generators, plus an optional checkpoint cadence —
//! that synthesizes its stream deterministically from its seed.  Adding a workload
//! to an experiment means writing a config value, not a new binary:
//!
//! ```
//! use fsc_engine::{CheckpointMode, Scenario, Segment, Workload};
//!
//! let scenario = Scenario {
//!     name: "drift-then-burst".into(),
//!     universe: 1 << 12,
//!     seed: 7,
//!     segments: vec![
//!         Segment { workload: Workload::Zipf { theta: 1.1 }, updates: 10_000 },
//!         Segment { workload: Workload::Drift { theta: 1.1, step: 512 }, updates: 10_000 },
//!         Segment { workload: Workload::Bursty { theta: 1.2, burst: 32 }, updates: 5_000 },
//!     ],
//!     checkpoint_every: Some(8_192),
//!     checkpoint_mode: CheckpointMode::Delta { compact_every: 4 },
//!     batch: 1_024,
//! };
//! let stream = scenario.stream();
//! assert_eq!(stream.len(), scenario.total_updates());
//! assert_eq!(stream, scenario.stream(), "synthesis is deterministic");
//! ```

use fsc_streamgen::uniform::uniform_stream;
use fsc_streamgen::zipf::zipf_stream;

/// One segment's traffic shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Workload {
    /// Zipf(θ)-distributed items — steady skewed traffic.
    Zipf {
        /// Skew exponent.
        theta: f64,
    },
    /// Uniform items over the universe — the heavy-hitter-free stress case.
    Uniform,
    /// Zipf(θ) traffic sorted ascending — maximal run structure (the favourable
    /// extreme for run-length kernels, the adversarial one for eviction policies
    /// that key on recency).
    Sorted {
        /// Skew exponent of the underlying draw.
        theta: f64,
    },
    /// Zipf(θ) traffic where each drawn item arrives as a burst of `burst`
    /// consecutive copies — flash-crowd traffic.
    Bursty {
        /// Skew exponent of the underlying draw.
        theta: f64,
        /// Copies per drawn item (≥ 1).
        burst: usize,
    },
    /// Zipf(θ) traffic whose item identities are rotated by `segment_index · step`
    /// within the universe — the hot set drifts between segments, so summaries
    /// tuned to a static hot set must adapt.
    Drift {
        /// Skew exponent.
        theta: f64,
        /// Identity rotation per segment.
        step: u64,
    },
}

/// How a scenario's checkpoint cadence persists the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// Every cadence point serializes and persists the full engine checkpoint.
    #[default]
    Full,
    /// Cadence points persist `FSCD` deltas into a
    /// [`fsc_state::delta::CheckpointChain`]: the first checkpoint is the base, each
    /// later one stores only the bytes that changed since the previous — the
    /// persistence cost the paper argues should track *state changes*, not summary
    /// size.
    Delta {
        /// Fold the chain into a fresh base after this many deltas (`0` = never):
        /// bounds both replay length on failover and how far back time-travel
        /// queries can reach.
        compact_every: usize,
    },
}

/// A contiguous stretch of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Traffic shape of this segment.
    pub workload: Workload,
    /// Number of stream updates the segment contributes.
    pub updates: usize,
}

/// A config-driven workload: named segments over one universe, a deterministic
/// seed, and the operational parameters of an engine run (batch size, checkpoint
/// cadence).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (experiment tables, logs).
    pub name: String,
    /// Universe size `n` shared by all segments.
    pub universe: usize,
    /// Master seed; segment `i` derives its generator seed as `seed + i`.
    pub seed: u64,
    /// The traffic segments, in arrival order.
    pub segments: Vec<Segment>,
    /// Checkpoint the engine every this many ingested updates (`None` = never).
    pub checkpoint_every: Option<usize>,
    /// How cadence checkpoints are persisted: full serializations or deltas chained
    /// off a base (see [`CheckpointMode`]).
    pub checkpoint_mode: CheckpointMode,
    /// Ingest batch size the runner feeds the engine with.
    pub batch: usize,
}

impl Scenario {
    /// Total updates across all segments.
    pub fn total_updates(&self) -> usize {
        self.segments.iter().map(|s| s.updates).sum()
    }

    /// Synthesizes the full stream deterministically from the scenario's seed.
    pub fn stream(&self) -> Vec<u64> {
        assert!(self.universe >= 1, "scenario needs a non-empty universe");
        let mut out = Vec::with_capacity(self.total_updates());
        for (index, segment) in self.segments.iter().enumerate() {
            let seed = self.seed.wrapping_add(index as u64);
            let n = self.universe;
            let m = segment.updates;
            match segment.workload {
                Workload::Zipf { theta } => out.extend(zipf_stream(n, m, theta, seed)),
                Workload::Uniform => out.extend(uniform_stream(n, m, seed)),
                Workload::Sorted { theta } => {
                    let mut items = zipf_stream(n, m, theta, seed);
                    items.sort_unstable();
                    out.extend(items);
                }
                Workload::Bursty { theta, burst } => {
                    let burst = burst.max(1);
                    let draws = zipf_stream(n, m.div_ceil(burst), theta, seed);
                    out.extend(
                        draws
                            .into_iter()
                            .flat_map(|item| std::iter::repeat_n(item, burst))
                            .take(m),
                    );
                }
                Workload::Drift { theta, step } => {
                    let shift = step.wrapping_mul(index as u64) % n as u64;
                    out.extend(
                        zipf_stream(n, m, theta, seed)
                            .into_iter()
                            .map(|item| (item + shift) % n as u64),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(segments: Vec<Segment>) -> Scenario {
        Scenario {
            name: "test".into(),
            universe: 64,
            seed: 3,
            segments,
            checkpoint_every: None,
            checkpoint_mode: CheckpointMode::default(),
            batch: 16,
        }
    }

    #[test]
    fn every_workload_synthesizes_its_exact_length() {
        for workload in [
            Workload::Zipf { theta: 1.1 },
            Workload::Uniform,
            Workload::Sorted { theta: 1.0 },
            Workload::Bursty {
                theta: 1.0,
                burst: 7,
            },
            Workload::Drift {
                theta: 1.0,
                step: 5,
            },
        ] {
            let s = scenario(vec![Segment {
                workload,
                updates: 1_000,
            }]);
            let stream = s.stream();
            assert_eq!(stream.len(), 1_000, "{workload:?}");
            assert!(
                stream.iter().all(|&x| x < 64),
                "{workload:?} stays in universe"
            );
            assert_eq!(stream, s.stream(), "{workload:?} is deterministic");
        }
    }

    #[test]
    fn sorted_segments_are_sorted_and_bursts_repeat() {
        let s = scenario(vec![
            Segment {
                workload: Workload::Sorted { theta: 1.0 },
                updates: 500,
            },
            Segment {
                workload: Workload::Bursty {
                    theta: 1.0,
                    burst: 10,
                },
                updates: 500,
            },
        ]);
        let stream = s.stream();
        assert_eq!(s.total_updates(), 1_000);
        assert!(stream[..500].windows(2).all(|w| w[0] <= w[1]));
        // Bursts: the second segment is runs of length 10 (except possibly the tail).
        let bursty = &stream[500..];
        assert!(bursty.chunks(10).all(|c| c.iter().all(|&x| x == c[0])));
    }

    #[test]
    fn drift_rotates_identities_between_segments() {
        let updates = 400;
        let drift = Workload::Drift {
            theta: 1.3,
            step: 13,
        };
        let s = scenario(vec![
            Segment {
                workload: drift,
                updates,
            },
            Segment {
                workload: drift,
                updates,
            },
        ]);
        let stream = s.stream();
        // Same θ and universe, different hot sets: the most frequent item of the two
        // segments differs by the rotation.
        let mode = |xs: &[u64]| {
            let mut counts = [0u32; 64];
            for &x in xs {
                counts[x as usize] += 1;
            }
            (0..64).max_by_key(|&i| counts[i]).unwrap() as u64
        };
        let first = mode(&stream[..updates]);
        let second = mode(&stream[updates..]);
        assert_ne!(first, second, "hot set must move between segments");
    }
}
