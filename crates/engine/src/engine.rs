//! The sharded engine: replica ownership, routing, merged queries, checkpoints.

use fsc_state::delta::{encode_delta, BaseRef};
use fsc_state::snapshot::{SnapshotReader, SnapshotWriter, TrackerState};
use fsc_state::{
    Answer, Mergeable, Query, Queryable, Snapshot, SnapshotError, StateReport, StreamAlgorithm,
    TrackerKind,
};

/// Checkpoint-header id of an engine checkpoint (shard checkpoints nest inside with
/// their own algorithm ids).
const SNAPSHOT_ID: &str = "fsc_engine";

/// How ingested items are distributed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Item `t` (global stream position) goes to shard `t mod S`.  Spreads load
    /// evenly regardless of key skew; exact-merging sketches reproduce the
    /// single-shard answers under any routing, so this is the default.
    #[default]
    RoundRobin,
    /// Items route by a multiplicative hash of their identity, so all occurrences of
    /// one item land on the same shard.  Counter summaries (Misra-Gries,
    /// SpaceSaving) keep per-item counts exact-per-shard under this policy, at the
    /// cost of load skew on heavy-hitter traffic.
    ByItemHash,
}

impl Routing {
    fn tag(self) -> u8 {
        match self {
            Routing::RoundRobin => 0,
            Routing::ByItemHash => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(Routing::RoundRobin),
            1 => Ok(Routing::ByItemHash),
            _ => Err(SnapshotError::Corrupt("routing tag")),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shard replicas (≥ 1).
    pub shards: usize,
    /// Routing policy for ingested items.
    pub routing: Routing,
    /// Tracker backend kind each shard's summary is constructed with.
    pub tracker: TrackerKind,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            routing: Routing::RoundRobin,
            tracker: TrackerKind::Full,
        }
    }
}

/// The bound an engine places on its summary type: ingest
/// ([`StreamAlgorithm`]), typed queries ([`Queryable`]), checkpoints
/// ([`Snapshot`]), and shard union ([`Mergeable`]).
///
/// Blanket-implemented: any summary with the four capabilities is engine-ready.
pub trait EngineAlgorithm: StreamAlgorithm + Queryable + Snapshot + Mergeable + Sized {}

impl<T: StreamAlgorithm + Queryable + Snapshot + Mergeable + Sized> EngineAlgorithm for T {}

/// A sharded, checkpointable serving engine over `S` replicas of one summary type.
///
/// See the [crate docs](crate) for the design and the laws it relies on.  The shard
/// summaries must be merge-compatible — built by one constructor with shared
/// dimensions and hash seeds — which [`Engine::new`]'s factory-closure construction
/// makes the natural default.
#[derive(Debug)]
pub struct Engine<A: EngineAlgorithm> {
    config: EngineConfig,
    shards: Vec<A>,
    /// Total items ingested (drives round-robin routing across batch boundaries).
    ingested: u64,
    /// Per-shard routing buffers, reused across batches.
    buffers: Vec<Vec<u64>>,
}

/// Multiplicative item hash for [`Routing::ByItemHash`] (SplitMix64 finalizer — the
/// route must be a stable pure function of the item, independent of shard count
/// changes elsewhere).
#[inline]
fn route_hash(item: u64) -> u64 {
    let mut x = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<A: EngineAlgorithm> Engine<A> {
    /// Builds an engine whose `config.shards` replicas are produced by `make`
    /// (called with the shard index).  For exact sharded answers the factory must
    /// produce merge-compatible summaries — in practice, ignore the index and build
    /// identical instances (same dimensions and seeds) on fresh trackers of
    /// `config.tracker` kind.
    pub fn new(config: EngineConfig, mut make: impl FnMut(usize) -> A) -> Self {
        assert!(config.shards >= 1, "an engine needs at least one shard");
        let shards: Vec<A> = (0..config.shards).map(&mut make).collect();
        let buffers = vec![Vec::new(); config.shards];
        Self {
            config,
            shards,
            ingested: 0,
            buffers,
        }
    }

    /// The engine's construction parameters.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total items ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Read access to one shard's summary (reporting/tests).
    pub fn shard(&self, index: usize) -> &A {
        &self.shards[index]
    }

    /// Ingests a batch: items are routed to their shards and each shard processes
    /// its sub-batch through the specialized batch kernels, in shard order (the
    /// engine is sequential per instance; sharding buys mergeable state and
    /// independent accounting, and `fsc-bench::sharded` shows the same shards
    /// driven in parallel across threads).
    pub fn ingest(&mut self, items: &[u64]) {
        match self.config.routing {
            Routing::RoundRobin => {
                let shards = self.shards.len() as u64;
                for (i, &item) in items.iter().enumerate() {
                    let shard = ((self.ingested + i as u64) % shards) as usize;
                    self.buffers[shard].push(item);
                }
            }
            Routing::ByItemHash => {
                let shards = self.shards.len() as u64;
                for &item in items {
                    let shard = (route_hash(item) % shards) as usize;
                    self.buffers[shard].push(item);
                }
            }
        }
        self.ingested += items.len() as u64;
        for (shard, buffer) in self.shards.iter_mut().zip(&mut self.buffers) {
            if !buffer.is_empty() {
                shard.process_batch(buffer);
                buffer.clear();
            }
        }
    }

    /// Builds the merged serving view: shard 0 is cloned via a checkpoint round trip
    /// (queries must not disturb shard state, and the snapshot law guarantees the
    /// clone is observably identical), then every other shard is folded in with
    /// [`Mergeable::merge_from`].
    pub fn merged_summary(&self) -> Result<A, SnapshotError> {
        let mut merged = A::restore(&self.shards[0].checkpoint())?;
        for shard in &self.shards[1..] {
            merged.merge_from(shard);
        }
        Ok(merged)
    }

    /// Answers a typed query from the merged view.
    ///
    /// Each call rebuilds the merged view; batch read-heavy probes through
    /// [`Engine::query_many`] (or hold a [`Engine::merged_summary`]) to pay the
    /// restore-and-merge cost once.
    pub fn query(&self, query: &Query) -> Result<Answer, SnapshotError> {
        Ok(self.merged_summary()?.query(query))
    }

    /// Answers a batch of queries from **one** merged view (one checkpoint restore
    /// plus one merge pass, however many queries follow).
    pub fn query_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError> {
        let merged = self.merged_summary()?;
        Ok(queries.iter().map(|q| merged.query(q)).collect())
    }

    /// Serializes the whole engine — config, ingest position, and one nested
    /// checkpoint per shard — into a versioned byte string.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        w.usize(self.shards.len());
        w.u8(self.config.routing.tag());
        blank_tracker_state(self.config.tracker).write_to(&mut w);
        w.u64(self.ingested);
        for shard in &self.shards {
            w.bytes(&shard.checkpoint());
        }
        w.finish()
    }

    /// Captures the current full checkpoint as a [`BaseRef`] for later
    /// [`Engine::checkpoint_delta`] calls.  The engine's epoch clock is its ingest
    /// position, so delta epochs line up with the stream positions a
    /// [`crate::Scenario`] checkpoint cadence is expressed in.
    pub fn base_ref(&self) -> BaseRef {
        BaseRef::new(self.checkpoint(), self.ingested)
    }

    /// Serializes a **delta** checkpoint against a previously captured base: the
    /// `FSCD` bytes transforming `since` into the current [`Engine::checkpoint`]
    /// (see [`fsc_state::delta`]).  Because engine checkpoints nest one `FSCS`
    /// checkpoint per shard at stable offsets, a few-state-change summary's shard
    /// payloads diff in few words and the engine delta stays proportional to what
    /// changed across all shards.
    pub fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError> {
        encode_delta(
            since.bytes(),
            &self.checkpoint(),
            since.epoch(),
            self.ingested,
        )
    }

    /// Rebuilds an engine from [`Engine::checkpoint`] bytes.  By the snapshot law
    /// the result is observably identical: same answers, same per-shard
    /// [`StateReport`]s and wear tables, same behaviour on subsequently ingested
    /// batches.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let shard_count = r.usize()?;
        if shard_count == 0 || shard_count > 1 << 20 {
            return Err(SnapshotError::Corrupt("shard count"));
        }
        let routing = Routing::from_tag(r.u8()?)?;
        let tracker = TrackerState::read_from(&mut r)?.kind;
        let ingested = r.u64()?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let shard_bytes = r.byte_slice()?;
            shards.push(A::restore(shard_bytes)?);
        }
        r.finish()?;
        Ok(Self {
            config: EngineConfig {
                shards: shard_count,
                routing,
                tracker,
            },
            buffers: vec![Vec::new(); shard_count],
            shards,
            ingested,
        })
    }

    /// Combined accounting across shards ([`StateReport::sharded`] semantics: epochs,
    /// state changes, writes, and space are additive over the disjoint substreams).
    pub fn report(&self) -> StateReport {
        self.shards
            .iter()
            .map(|s| s.report())
            .reduce(|a, b| a.sharded(&b))
            .expect("an engine has at least one shard")
    }

    /// Per-shard accounting reports.
    pub fn shard_reports(&self) -> Vec<StateReport> {
        self.shards.iter().map(|s| s.report()).collect()
    }

    /// Per-shard wear tables (present when shards run address-tracked trackers).
    pub fn shard_wear(&self, index: usize) -> Option<Vec<u64>> {
        self.shards[index].tracker().address_writes()
    }
}

/// A zeroed tracker state of the given kind — the engine header only needs to carry
/// the *kind* (each shard checkpoint embeds its own full state), but reusing
/// [`TrackerState`]'s codec keeps the format single-sourced.
fn blank_tracker_state(kind: TrackerKind) -> TrackerState {
    TrackerState {
        kind,
        epochs: 0,
        last_change_epoch: 0,
        state_changes: 0,
        word_writes: 0,
        redundant_writes: 0,
        reads: 0,
        words_current: 0,
        words_peak: 0,
        next_addr: 0,
        wear: if kind == TrackerKind::FullAddressTracked {
            Some(Vec::new())
        } else {
            None
        },
    }
}

/// The object-safe face of [`Engine`], so registries and scenario runners can hold
/// engines over different summary types uniformly (`Box<dyn DynEngine>`) without
/// downcasting.
pub trait DynEngine {
    /// Name of the underlying summary (shard 0's [`StreamAlgorithm::name`]).
    fn algorithm(&self) -> String;
    /// Number of shards.
    fn shards(&self) -> usize;
    /// Total items ingested so far.
    fn ingested(&self) -> u64;
    /// Routes and ingests a batch (see [`Engine::ingest`]).
    fn ingest(&mut self, items: &[u64]);
    /// Answers a typed query from the merged shard union (see [`Engine::query`]).
    fn query(&self, query: &Query) -> Result<Answer, SnapshotError>;
    /// Answers a batch of queries from one merged view (see [`Engine::query_many`]).
    fn query_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError>;
    /// Serializes the engine (see [`Engine::checkpoint`]).
    fn checkpoint(&self) -> Vec<u8>;
    /// Captures the current checkpoint as a delta base (see [`Engine::base_ref`]).
    fn base_ref(&self) -> BaseRef;
    /// Serializes a delta checkpoint against `since` (see
    /// [`Engine::checkpoint_delta`]).
    fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError>;
    /// Replaces this engine's state with a restored checkpoint (the failover verb:
    /// a fresh process constructs an engine and restores into it).
    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
    /// Combined accounting across shards (see [`Engine::report`]).
    fn report(&self) -> StateReport;
    /// Per-shard accounting reports.
    fn shard_reports(&self) -> Vec<StateReport>;
}

impl<A: EngineAlgorithm> DynEngine for Engine<A> {
    fn algorithm(&self) -> String {
        self.shards[0].name().to_string()
    }

    fn shards(&self) -> usize {
        self.shards.len()
    }

    fn ingested(&self) -> u64 {
        self.ingested
    }

    fn ingest(&mut self, items: &[u64]) {
        Engine::ingest(self, items);
    }

    fn query(&self, query: &Query) -> Result<Answer, SnapshotError> {
        Engine::query(self, query)
    }

    fn query_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError> {
        Engine::query_many(self, queries)
    }

    fn checkpoint(&self) -> Vec<u8> {
        Engine::checkpoint(self)
    }

    fn base_ref(&self) -> BaseRef {
        Engine::base_ref(self)
    }

    fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError> {
        Engine::checkpoint_delta(self, since)
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        *self = Engine::restore(bytes)?;
        Ok(())
    }

    fn report(&self) -> StateReport {
        Engine::report(self)
    }

    fn shard_reports(&self) -> Vec<StateReport> {
        Engine::shard_reports(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_baselines::{CountMin, MisraGries};
    use fsc_state::StateTracker;
    use fsc_streamgen::zipf::zipf_stream;

    fn count_min_engine(config: EngineConfig) -> Engine<CountMin> {
        Engine::new(config, |_| {
            CountMin::with_tracker(&StateTracker::of_kind(config.tracker), 128, 4, 77)
        })
    }

    #[test]
    fn sharded_engine_reproduces_single_shard_answers_exactly() {
        let stream = zipf_stream(1 << 10, 6_000, 1.1, 3);
        for routing in [Routing::RoundRobin, Routing::ByItemHash] {
            let mut sharded = count_min_engine(EngineConfig {
                shards: 4,
                routing,
                ..EngineConfig::default()
            });
            let mut single = count_min_engine(EngineConfig {
                shards: 1,
                routing,
                ..EngineConfig::default()
            });
            for batch in stream.chunks(512) {
                sharded.ingest(batch);
                single.ingest(batch);
            }
            assert_eq!(sharded.ingested(), stream.len() as u64);
            for item in 0..64u64 {
                assert_eq!(
                    sharded.query(&Query::Point(item)).unwrap(),
                    single.query(&Query::Point(item)).unwrap(),
                    "{routing:?}: item {item}"
                );
            }
            // Epochs are additive over shards: together they saw the whole stream.
            assert_eq!(sharded.report().epochs, stream.len() as u64);
        }
    }

    #[test]
    fn restore_of_checkpoint_is_observably_identical_and_continues_identically() {
        let stream = zipf_stream(512, 4_000, 1.2, 9);
        let (prefix, suffix) = stream.split_at(2_500);
        let config = EngineConfig {
            shards: 3,
            tracker: TrackerKind::FullAddressTracked,
            ..EngineConfig::default()
        };
        let mut engine = count_min_engine(config);
        let mut uninterrupted = count_min_engine(config);
        engine.ingest(prefix);
        uninterrupted.ingest(prefix);

        let bytes = engine.checkpoint();
        let mut restored = Engine::<CountMin>::restore(&bytes).expect("restore");
        assert_eq!(restored.shards(), 3);
        assert_eq!(restored.ingested(), engine.ingested());
        assert_eq!(restored.shard_reports(), engine.shard_reports());
        for i in 0..3 {
            assert_eq!(restored.shard_wear(i), engine.shard_wear(i), "shard {i}");
        }
        assert_eq!(restored.checkpoint(), bytes, "re-checkpoint determinism");

        // The restored engine continues bit-identically to the uninterrupted one.
        restored.ingest(suffix);
        uninterrupted.ingest(suffix);
        assert_eq!(restored.shard_reports(), uninterrupted.shard_reports());
        assert_eq!(restored.checkpoint(), uninterrupted.checkpoint());
        for item in 0..32u64 {
            assert_eq!(
                restored.query(&Query::Point(item)).unwrap(),
                uninterrupted.query(&Query::Point(item)).unwrap()
            );
        }
    }

    #[test]
    fn queries_do_not_disturb_shard_state() {
        let stream = zipf_stream(256, 1_000, 1.0, 5);
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&stream);
        let before = engine.checkpoint();
        let _ = engine.query(&Query::Point(1)).unwrap();
        let _ = engine
            .query(&Query::HeavyHitters { threshold: 10.0 })
            .unwrap();
        assert_eq!(engine.checkpoint(), before);
    }

    #[test]
    fn dyn_engine_round_trips_through_the_object_safe_face() {
        let mut engine: Box<dyn DynEngine> = Box::new(count_min_engine(EngineConfig::default()));
        engine.ingest(&zipf_stream(128, 500, 1.1, 2));
        assert!(engine.algorithm().contains("CountMin"));
        assert_eq!(engine.shards(), 4);
        let bytes = engine.checkpoint();
        let mut fresh: Box<dyn DynEngine> = Box::new(count_min_engine(EngineConfig::default()));
        fresh.restore_from(&bytes).expect("failover restore");
        assert_eq!(fresh.ingested(), 500);
        assert_eq!(fresh.report(), engine.report());
        assert_eq!(
            fresh.query(&Query::Point(3)).unwrap(),
            engine.query(&Query::Point(3)).unwrap()
        );
    }

    #[test]
    fn bounded_merge_summaries_serve_union_answers() {
        let stream = zipf_stream(256, 3_000, 1.3, 11);
        let mut engine = Engine::new(
            EngineConfig {
                shards: 2,
                routing: Routing::ByItemHash,
                ..EngineConfig::default()
            },
            |_| MisraGries::with_tracker(&StateTracker::new(), 32),
        );
        engine.ingest(&stream);
        // Under item-hash routing every occurrence of an item is on one shard, so
        // the union's top item estimate matches a serial Misra-Gries within the
        // merge bound; qualitatively, the heaviest item must be reported.
        let answer = engine
            .query(&Query::HeavyHitters { threshold: 50.0 })
            .unwrap();
        let hh = answer.item_weights().expect("heavy hitter answer");
        assert!(!hh.is_empty(), "top items survive the union");
    }

    #[test]
    fn delta_checkpoints_reconstruct_the_full_checkpoint() {
        use fsc_state::delta::{apply_delta, CheckpointChain};
        let stream = zipf_stream(512, 4_000, 1.2, 17);
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&stream[..1_000]);

        // Point delta: base → later full checkpoint, byte-for-byte.
        let base = engine.base_ref();
        engine.ingest(&stream[1_000..2_000]);
        let full = engine.checkpoint();
        let delta = engine.checkpoint_delta(&base).unwrap();
        assert_eq!(apply_delta(base.bytes(), &delta).unwrap(), full);

        // Chain across further cadence points; tip restores a working engine.
        let mut chain = CheckpointChain::new(full, engine.ingested()).unwrap();
        assert_eq!(chain.algorithm(), SNAPSHOT_ID);
        for end in [3_000, 4_000] {
            engine.ingest(&stream[end - 1_000..end]);
            chain
                .record(&engine.checkpoint(), engine.ingested())
                .unwrap();
        }
        let restored = Engine::<CountMin>::restore(chain.tip_bytes()).unwrap();
        assert_eq!(restored.ingested(), 4_000);
        assert_eq!(restored.shard_reports(), engine.shard_reports());

        // Time travel: the engine as of ingest position 3_000.
        let (bytes, at) = chain.bytes_at(3_500).unwrap();
        assert_eq!(at, 3_000);
        let past = Engine::<CountMin>::restore(&bytes).unwrap();
        assert_eq!(past.ingested(), 3_000);
    }

    #[test]
    fn corrupt_engine_checkpoints_error_not_panic() {
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&zipf_stream(64, 300, 1.1, 1));
        let bytes = engine.checkpoint();
        for cut in (0..bytes.len()).step_by(3) {
            assert!(Engine::<CountMin>::restore(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(
            Engine::<CountMin>::restore(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // A shard checkpoint of the wrong algorithm type is rejected by the nested
        // header validation.
        assert!(Engine::<MisraGries>::restore(&bytes).is_err());
    }
}
