//! The sharded engine: replica ownership, routing, cached merged queries,
//! checkpoints.

use std::sync::Arc;

use fsc_state::delta::{encode_delta, BaseRef, CheckpointChain};
use fsc_state::snapshot::{SnapshotReader, SnapshotWriter, TrackerState};
use fsc_state::{
    Answer, Mergeable, Query, Queryable, Snapshot, SnapshotError, StateReport, StreamAlgorithm,
    TrackerKind,
};

use crate::view::{ServeHandle, ServingView};

/// Checkpoint-header id of an engine checkpoint (shard checkpoints nest inside with
/// their own algorithm ids).
const SNAPSHOT_ID: &str = "fsc_engine";

/// How ingested items are distributed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Routing {
    /// Item `t` (global stream position) goes to shard `t mod S`.  Spreads load
    /// evenly regardless of key skew; exact-merging sketches reproduce the
    /// single-shard answers under any routing, so this is the default.
    #[default]
    RoundRobin,
    /// Items route by a multiplicative hash of their identity, so all occurrences of
    /// one item land on the same shard.  Counter summaries (Misra-Gries,
    /// SpaceSaving) keep per-item counts exact-per-shard under this policy, at the
    /// cost of load skew on heavy-hitter traffic.
    ByItemHash,
}

impl Routing {
    fn tag(self) -> u8 {
        match self {
            Routing::RoundRobin => 0,
            Routing::ByItemHash => 1,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, SnapshotError> {
        match tag {
            0 => Ok(Routing::RoundRobin),
            1 => Ok(Routing::ByItemHash),
            _ => Err(SnapshotError::Corrupt("routing tag")),
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of shard replicas (≥ 1).
    pub shards: usize,
    /// Routing policy for ingested items.
    pub routing: Routing,
    /// Tracker backend kind each shard's summary is constructed with.
    pub tracker: TrackerKind,
    /// Worker budget for the threaded ingest drain: `None` (the default) sizes it
    /// from [`detected_cores`], so a 1-CPU host never pays thread-spawn overhead
    /// for workers that cannot run concurrently.  A runtime performance knob, not
    /// engine state — it is not serialized, and a restored engine reverts to
    /// `None` (answers and accounting are identical either way; only wall-clock
    /// changes).  Tests force `Some(n)` to exercise the threaded path on any host.
    pub ingest_threads: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            routing: Routing::RoundRobin,
            tracker: TrackerKind::Full,
            ingest_threads: None,
        }
    }
}

/// Usable cores on this host, as reported by [`std::thread::available_parallelism`]
/// (1 when detection fails).  Sizes the engine's threaded ingest gate and is
/// recorded in the throughput experiment's JSON so numbers from a 1-CPU container
/// are never mistaken for multi-core ones.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The threaded-ingest gate, as a pure function of the three quantities that decide
/// it: worker threads only pay when there is more than one shard to drain, more
/// than one core to drain them on, and enough items per worker to amortize the
/// spawn cost ([`PARALLEL_INGEST_THRESHOLD`]).
#[inline]
fn use_parallel_ingest(shards: usize, workers: usize, largest: usize) -> bool {
    shards > 1 && workers > 1 && largest >= PARALLEL_INGEST_THRESHOLD
}

/// The bound an engine places on its summary type: ingest
/// ([`StreamAlgorithm`]), typed queries ([`Queryable`]), checkpoints
/// ([`Snapshot`]), and shard union ([`Mergeable`]) — plus `Send + Sync +
/// 'static`, so shards can ingest on scoped worker threads and reader threads
/// can hold `Arc`-published serving views across engine generations.
///
/// Blanket-implemented: any summary with the four capabilities is engine-ready
/// (all of this repository's summaries are plain owned data over thread-safe
/// trackers, so the marker bounds come for free).
pub trait EngineAlgorithm:
    StreamAlgorithm + Queryable + Snapshot + Mergeable + Sized + Send + Sync + 'static
{
}

impl<T: StreamAlgorithm + Queryable + Snapshot + Mergeable + Sized + Send + Sync + 'static>
    EngineAlgorithm for T
{
}

/// A sharded, checkpointable serving engine over `S` replicas of one summary type.
///
/// See the [crate docs](crate) for the design and the laws it relies on.  The shard
/// summaries must be merge-compatible — built by one constructor with shared
/// dimensions and hash seeds — which [`Engine::new`]'s factory-closure construction
/// makes the natural default.
#[derive(Debug)]
pub struct Engine<A: EngineAlgorithm> {
    config: EngineConfig,
    shards: Vec<A>,
    /// Total items ingested (drives round-robin routing across batch boundaries).
    ingested: u64,
    /// Per-shard routing buffers, reused across batches.
    buffers: Vec<Vec<u64>>,
    /// The cached merged view queries serve from, shared with any detached
    /// reader handles (see [`ServingView`]).
    view: Arc<ServingView<A>>,
    /// Added to the summed shard generations by [`Engine::generation`].  Zero
    /// for the life of a normally-constructed engine; bumped by
    /// [`Engine::restore_from`] so the staleness clock stays strictly monotone
    /// across in-place failover even though the restored trackers start their
    /// own clocks near zero.
    gen_offset: u64,
}

/// Per-shard sub-batch size at which [`Engine::ingest`] moves from the serial
/// drain to scoped worker threads.  Spawning a thread costs microseconds —
/// three orders of magnitude more than a small batch kernel — so parallelism
/// only pays once each worker has thousands of items to chew through.
const PARALLEL_INGEST_THRESHOLD: usize = 8_192;

/// Multiplicative item hash for [`Routing::ByItemHash`] (SplitMix64 finalizer — the
/// route must be a stable pure function of the item, independent of shard count
/// changes elsewhere).
#[inline]
fn route_hash(item: u64) -> u64 {
    let mut x = item.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl<A: EngineAlgorithm> Engine<A> {
    /// Builds an engine whose `config.shards` replicas are produced by `make`
    /// (called with the shard index).  For exact sharded answers the factory must
    /// produce merge-compatible summaries — in practice, ignore the index and build
    /// identical instances (same dimensions and seeds) on fresh trackers of
    /// `config.tracker` kind.
    pub fn new(config: EngineConfig, mut make: impl FnMut(usize) -> A) -> Self {
        assert!(config.shards >= 1, "an engine needs at least one shard");
        let shards: Vec<A> = (0..config.shards).map(&mut make).collect();
        let buffers = vec![Vec::new(); config.shards];
        Self {
            config,
            shards,
            ingested: 0,
            buffers,
            view: Arc::new(ServingView::new()),
            gen_offset: 0,
        }
    }

    /// The engine's construction parameters.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total items ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Read access to one shard's summary (reporting/tests).
    pub fn shard(&self, index: usize) -> &A {
        &self.shards[index]
    }

    /// Ingests a batch: items are routed to their shards and each shard processes
    /// its sub-batch through the specialized batch kernels.  Small batches run in
    /// shard order on the calling thread; once the largest routed sub-batch
    /// clears the parallel-ingest threshold (8 Ki items) **and** the worker budget
    /// ([`EngineConfig::ingest_threads`], by default the host's [`detected_cores`])
    /// exceeds one, the shards drain concurrently on [`std::thread::scope`] workers
    /// (shards own disjoint state, so the result is observably identical either
    /// way — pinned by the parallel-ingest law test).  The threshold keeps the
    /// thread-spawn cost out of the latency-sensitive small-batch path, and the
    /// core gate keeps it off single-CPU hosts where workers cannot overlap.
    pub fn ingest(&mut self, items: &[u64]) {
        match self.config.routing {
            Routing::RoundRobin => {
                let shards = self.shards.len() as u64;
                for (i, &item) in items.iter().enumerate() {
                    let shard = ((self.ingested + i as u64) % shards) as usize;
                    self.buffers[shard].push(item);
                }
            }
            Routing::ByItemHash => {
                let shards = self.shards.len() as u64;
                for &item in items {
                    let shard = (route_hash(item) % shards) as usize;
                    self.buffers[shard].push(item);
                }
            }
        }
        self.ingested += items.len() as u64;
        let largest = self.buffers.iter().map(Vec::len).max().unwrap_or(0);
        let workers = self.config.ingest_threads.unwrap_or_else(detected_cores);
        if use_parallel_ingest(self.shards.len(), workers, largest) {
            std::thread::scope(|scope| {
                for (shard, buffer) in self.shards.iter_mut().zip(&mut self.buffers) {
                    if !buffer.is_empty() {
                        scope.spawn(move || {
                            shard.process_batch(buffer);
                            buffer.clear();
                        });
                    }
                }
            });
        } else {
            for (shard, buffer) in self.shards.iter_mut().zip(&mut self.buffers) {
                if !buffer.is_empty() {
                    shard.process_batch(buffer);
                    buffer.clear();
                }
            }
        }
    }

    /// Builds the merged serving view: shard 0 is cloned via a checkpoint round trip
    /// (queries must not disturb shard state, and the snapshot law guarantees the
    /// clone is observably identical), then every other shard is folded in with
    /// [`Mergeable::merge_from`].
    pub fn merged_summary(&self) -> Result<A, SnapshotError> {
        let mut merged = A::restore(&self.shards[0].checkpoint())?;
        for shard in &self.shards[1..] {
            merged.merge_from(shard);
        }
        Ok(merged)
    }

    /// The engine's **staleness generation**: the sum of every shard tracker's
    /// [`state_change_generation`](fsc_state::StateTracker::state_change_generation)
    /// (plus a restore offset keeping the clock monotone across
    /// [`Engine::restore_from`]).  Monotone over this engine instance's
    /// lifetime, and guaranteed to have advanced after any ingest that changed
    /// an observable answer on *any* shard.
    ///
    /// The sum — not the max — is what makes the clock sound: shard clocks
    /// advance at different rates, and a change on a lagging shard would be
    /// invisible to the max while the union's answers moved (DESIGN.md §1.7
    /// spells out the argument).  Every changed write strictly increases its
    /// own shard's term, hence the sum.
    ///
    /// Because ingest needs `&mut self`, the generation is frozen while any
    /// `&self` query runs — a query compares a stable clock, never a racing
    /// one.
    pub fn generation(&self) -> u64 {
        self.gen_offset
            + self
                .shards
                .iter()
                .map(|s| s.tracker().state_change_generation())
                .sum::<u64>()
    }

    /// The cached view if it is current, else rebuild-and-publish at the live
    /// generation.
    fn current_view(&self) -> Result<Arc<A>, SnapshotError> {
        let generation = self.generation();
        if let Some(view) = self.view.get_if_current(generation) {
            return Ok(view);
        }
        Ok(self.view.publish(generation, self.merged_summary()?))
    }

    /// Answers a typed query from the **cached** merged view.
    ///
    /// Freshness contract: the answer always reflects every ingested item.  The
    /// view is revalidated lazily against [`Engine::generation`] — if no state
    /// change landed since the last rebuild the query is a lock-free stamp
    /// compare plus an `Arc` clone (no restore, no merge); otherwise the view
    /// is rebuilt once and republished for every subsequent reader.  Rebuild
    /// frequency therefore tracks *state changes*, not queries or ingested
    /// items.  [`Engine::query_fresh`] bypasses the cache when a test wants the
    /// always-rebuild semantics.
    pub fn query(&self, query: &Query) -> Result<Answer, SnapshotError> {
        Ok(self.current_view()?.query(query))
    }

    /// Answers a batch of queries from one cached view (at most one rebuild,
    /// however many queries follow — and none at all when the view is current).
    pub fn query_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError> {
        let merged = self.current_view()?;
        Ok(queries.iter().map(|q| merged.query(q)).collect())
    }

    /// Answers a typed query by **rebuilding** the merged view from the live
    /// shards, bypassing the cache — the pre-cache `query` semantics, kept as
    /// the oracle the serve-law tests compare cached answers against.
    pub fn query_fresh(&self, query: &Query) -> Result<Answer, SnapshotError> {
        Ok(self.merged_summary()?.query(query))
    }

    /// Batch flavour of [`Engine::query_fresh`]: one fresh rebuild, many
    /// queries, cache untouched.
    pub fn query_fresh_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError> {
        let merged = self.merged_summary()?;
        Ok(queries.iter().map(|q| merged.query(q)).collect())
    }

    /// Rebuilds and republishes the cached view if it is stale; returns whether
    /// a rebuild happened.  This is the writer-side verb of the mixed
    /// read/write pattern: reader threads serve from [`Engine::serving_view`]
    /// handles while the ingesting thread (which owns `&mut self`) calls this
    /// between batches to push fresh snapshots to them.
    pub fn refresh_view(&self) -> Result<bool, SnapshotError> {
        let generation = self.generation();
        if self.view.get_if_current(generation).is_some() {
            return Ok(false);
        }
        self.view.publish(generation, self.merged_summary()?);
        Ok(true)
    }

    /// Times the cached view has been (re)built over this engine's lifetime —
    /// the serve-cost counter F13 records next to state changes.
    pub fn view_rebuilds(&self) -> u64 {
        self.view.rebuilds()
    }

    /// A shared handle on the engine's serving view, for detached reader
    /// threads.  The handle survives [`Engine::restore_from`] failover and
    /// serves the latest *published* snapshot without ever rebuilding (see
    /// [`ServeHandle`] for the staleness contract).
    pub fn serving_view(&self) -> Arc<ServingView<A>> {
        Arc::clone(&self.view)
    }

    /// Serializes the whole engine — config, ingest position, and one nested
    /// checkpoint per shard — into a versioned byte string.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        w.usize(self.shards.len());
        w.u8(self.config.routing.tag());
        blank_tracker_state(self.config.tracker).write_to(&mut w);
        w.u64(self.ingested);
        for shard in &self.shards {
            w.bytes(&shard.checkpoint());
        }
        w.finish()
    }

    /// Captures the current full checkpoint as a [`BaseRef`] for later
    /// [`Engine::checkpoint_delta`] calls.  The engine's epoch clock is its ingest
    /// position, so delta epochs line up with the stream positions a
    /// [`crate::Scenario`] checkpoint cadence is expressed in.
    pub fn base_ref(&self) -> BaseRef {
        BaseRef::new(self.checkpoint(), self.ingested)
    }

    /// Serializes a **delta** checkpoint against a previously captured base: the
    /// `FSCD` bytes transforming `since` into the current [`Engine::checkpoint`]
    /// (see [`fsc_state::delta`]).  Because engine checkpoints nest one `FSCS`
    /// checkpoint per shard at stable offsets, a few-state-change summary's shard
    /// payloads diff in few words and the engine delta stays proportional to what
    /// changed across all shards.
    pub fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError> {
        encode_delta(
            since.bytes(),
            &self.checkpoint(),
            since.epoch(),
            self.ingested,
        )
    }

    /// Rebuilds an engine from [`Engine::checkpoint`] bytes.  By the snapshot law
    /// the result is observably identical: same answers, same per-shard
    /// [`StateReport`]s and wear tables, same behaviour on subsequently ingested
    /// batches.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let shard_count = r.usize()?;
        if shard_count == 0 || shard_count > 1 << 20 {
            return Err(SnapshotError::Corrupt("shard count"));
        }
        let routing = Routing::from_tag(r.u8()?)?;
        let tracker = TrackerState::read_from(&mut r)?.kind;
        let ingested = r.u64()?;
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let shard_bytes = r.byte_slice()?;
            shards.push(A::restore(shard_bytes)?);
        }
        r.finish()?;
        Ok(Self {
            config: EngineConfig {
                shards: shard_count,
                routing,
                tracker,
                ingest_threads: None,
            },
            buffers: vec![Vec::new(); shard_count],
            shards,
            ingested,
            view: Arc::new(ServingView::new()),
            gen_offset: 0,
        })
    }

    /// Replaces this engine's state with a restored checkpoint in place (the
    /// failover verb: a fresh process constructs an engine and restores into
    /// it).  Two things survive the swap that a plain [`Engine::restore`]
    /// would discard:
    ///
    /// * **Reader handles** — the serving view cell is kept, so
    ///   [`Engine::serving_view`] handles held by reader threads keep working;
    ///   they serve the pre-restore snapshot until the next refresh.
    /// * **Clock monotonicity** — restored trackers restart their staleness
    ///   clocks near zero (import *taints* rather than restores the
    ///   generation), so [`Engine::generation`] is re-based to land strictly
    ///   above its pre-restore value.  Any stamp issued before the restore —
    ///   including the kept view's — therefore compares stale, and the first
    ///   post-restore query rebuilds: a restore is a state mutation.
    ///
    /// Restoring is only meaningful between *twins*: a checkpoint from a
    /// different summary type fails with the nested shard's typed
    /// [`SnapshotError::WrongAlgorithm`], and a checkpoint whose engine config
    /// (shard count, routing, tracker kind) or summary geometry (dimensions and
    /// seeds, as carried in the summary's name) differs from this engine's
    /// fails with [`SnapshotError::ConfigMismatch`] — *before* any state is
    /// swapped, so a rejected restore leaves the engine untouched.
    pub fn restore_from(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let before = self.generation();
        let mut restored = Engine::<A>::restore(bytes)?;
        if restored.config != self.config {
            return Err(SnapshotError::ConfigMismatch {
                what: "engine config",
                expected: format!("{:?}", self.config),
                found: format!("{:?}", restored.config),
            });
        }
        let expected = self.shards[0].name();
        let found = restored.shards[0].name();
        if expected != found {
            return Err(SnapshotError::ConfigMismatch {
                what: "summary geometry",
                expected: expected.to_string(),
                found: found.to_string(),
            });
        }
        let raw = restored.generation();
        restored.gen_offset = (before + 1).saturating_sub(raw);
        restored.view = Arc::clone(&self.view);
        *self = restored;
        Ok(())
    }

    /// [`Engine::restore_from`], fed by the tip of a persisted
    /// [`CheckpointChain`] — the recovery verb: replay a base + delta log (via
    /// [`CheckpointChain::recover`] when the log may be damaged), then restore
    /// the surviving tip into a freshly constructed twin.  All of
    /// [`Engine::restore_from`]'s pairing checks apply.
    pub fn restore_from_chain(&mut self, chain: &CheckpointChain) -> Result<(), SnapshotError> {
        self.restore_from(chain.tip_bytes())
    }

    /// Combined accounting across shards ([`StateReport::sharded`] semantics: epochs,
    /// state changes, writes, and space are additive over the disjoint substreams).
    pub fn report(&self) -> StateReport {
        self.shards
            .iter()
            .map(|s| s.report())
            .reduce(|a, b| a.sharded(&b))
            .expect("an engine has at least one shard")
    }

    /// Per-shard accounting reports.
    pub fn shard_reports(&self) -> Vec<StateReport> {
        self.shards.iter().map(|s| s.report()).collect()
    }

    /// Per-shard wear tables (present when shards run address-tracked trackers).
    pub fn shard_wear(&self, index: usize) -> Option<Vec<u64>> {
        self.shards[index].tracker().address_writes()
    }
}

/// A zeroed tracker state of the given kind — the engine header only needs to carry
/// the *kind* (each shard checkpoint embeds its own full state), but reusing
/// [`TrackerState`]'s codec keeps the format single-sourced.
fn blank_tracker_state(kind: TrackerKind) -> TrackerState {
    TrackerState {
        kind,
        epochs: 0,
        last_change_epoch: 0,
        state_changes: 0,
        word_writes: 0,
        redundant_writes: 0,
        reads: 0,
        words_current: 0,
        words_peak: 0,
        next_addr: 0,
        wear: if kind == TrackerKind::FullAddressTracked {
            Some(Vec::new())
        } else {
            None
        },
    }
}

/// The object-safe face of [`Engine`], so registries and scenario runners can hold
/// engines over different summary types uniformly (`Box<dyn DynEngine>`) without
/// downcasting.
///
/// `Send` is a supertrait so servers can own engines from connection-handling
/// threads; every [`Engine`] qualifies for free ([`EngineAlgorithm`] already
/// requires `Send + Sync` summaries).
pub trait DynEngine: Send {
    /// Name of the underlying summary (shard 0's [`StreamAlgorithm::name`]).
    fn algorithm(&self) -> String;
    /// Number of shards.
    fn shards(&self) -> usize;
    /// Total items ingested so far.
    fn ingested(&self) -> u64;
    /// Routes and ingests a batch (see [`Engine::ingest`]).
    fn ingest(&mut self, items: &[u64]);
    /// Answers a typed query from the **cached** merged view (see
    /// [`Engine::query`] for the freshness contract).
    fn query(&self, query: &Query) -> Result<Answer, SnapshotError>;
    /// Answers a batch of queries from one cached view (see [`Engine::query_many`]).
    fn query_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError>;
    /// Answers a typed query by rebuilding, cache bypassed (see
    /// [`Engine::query_fresh`]).
    fn query_fresh(&self, query: &Query) -> Result<Answer, SnapshotError>;
    /// The engine's staleness generation (see [`Engine::generation`]).
    fn generation(&self) -> u64;
    /// Times the cached view has been built (see [`Engine::view_rebuilds`]).
    fn view_rebuilds(&self) -> u64;
    /// Rebuilds the cached view if stale; `Ok(true)` iff it rebuilt (see
    /// [`Engine::refresh_view`]).
    fn refresh_view(&self) -> Result<bool, SnapshotError>;
    /// A shared, type-erased reader handle on the serving view (see
    /// [`ServeHandle`] and [`Engine::serving_view`]).
    fn serve_handle(&self) -> Arc<dyn ServeHandle>;
    /// Serializes the engine (see [`Engine::checkpoint`]).
    fn checkpoint(&self) -> Vec<u8>;
    /// Captures the current checkpoint as a delta base (see [`Engine::base_ref`]).
    fn base_ref(&self) -> BaseRef;
    /// Serializes a delta checkpoint against `since` (see
    /// [`Engine::checkpoint_delta`]).
    fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError>;
    /// Replaces this engine's state with a restored checkpoint (the failover verb;
    /// see [`Engine::restore_from`] for what survives the swap and which
    /// mismatched pairings are rejected).
    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;
    /// Replaces this engine's state with the tip of a persisted chain (the
    /// recovery verb; see [`Engine::restore_from_chain`]).
    fn restore_from_chain(&mut self, chain: &CheckpointChain) -> Result<(), SnapshotError>;
    /// Combined accounting across shards (see [`Engine::report`]).
    fn report(&self) -> StateReport;
    /// Per-shard accounting reports.
    fn shard_reports(&self) -> Vec<StateReport>;
}

impl<A: EngineAlgorithm> DynEngine for Engine<A> {
    fn algorithm(&self) -> String {
        self.shards[0].name().to_string()
    }

    fn shards(&self) -> usize {
        self.shards.len()
    }

    fn ingested(&self) -> u64 {
        self.ingested
    }

    fn ingest(&mut self, items: &[u64]) {
        Engine::ingest(self, items);
    }

    fn query(&self, query: &Query) -> Result<Answer, SnapshotError> {
        Engine::query(self, query)
    }

    fn query_many(&self, queries: &[Query]) -> Result<Vec<Answer>, SnapshotError> {
        Engine::query_many(self, queries)
    }

    fn query_fresh(&self, query: &Query) -> Result<Answer, SnapshotError> {
        Engine::query_fresh(self, query)
    }

    fn generation(&self) -> u64 {
        Engine::generation(self)
    }

    fn view_rebuilds(&self) -> u64 {
        Engine::view_rebuilds(self)
    }

    fn refresh_view(&self) -> Result<bool, SnapshotError> {
        Engine::refresh_view(self)
    }

    fn serve_handle(&self) -> Arc<dyn ServeHandle> {
        self.serving_view()
    }

    fn checkpoint(&self) -> Vec<u8> {
        Engine::checkpoint(self)
    }

    fn base_ref(&self) -> BaseRef {
        Engine::base_ref(self)
    }

    fn checkpoint_delta(&self, since: &BaseRef) -> Result<Vec<u8>, SnapshotError> {
        Engine::checkpoint_delta(self, since)
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        Engine::restore_from(self, bytes)
    }

    fn restore_from_chain(&mut self, chain: &CheckpointChain) -> Result<(), SnapshotError> {
        Engine::restore_from_chain(self, chain)
    }

    fn report(&self) -> StateReport {
        Engine::report(self)
    }

    fn shard_reports(&self) -> Vec<StateReport> {
        Engine::shard_reports(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_baselines::{CountMin, MisraGries};
    use fsc_state::StateTracker;
    use fsc_streamgen::zipf::zipf_stream;

    fn count_min_engine(config: EngineConfig) -> Engine<CountMin> {
        Engine::new(config, |_| {
            CountMin::with_tracker(&StateTracker::of_kind(config.tracker), 128, 4, 77)
        })
    }

    #[test]
    fn sharded_engine_reproduces_single_shard_answers_exactly() {
        let stream = zipf_stream(1 << 10, 6_000, 1.1, 3);
        for routing in [Routing::RoundRobin, Routing::ByItemHash] {
            let mut sharded = count_min_engine(EngineConfig {
                shards: 4,
                routing,
                ..EngineConfig::default()
            });
            let mut single = count_min_engine(EngineConfig {
                shards: 1,
                routing,
                ..EngineConfig::default()
            });
            for batch in stream.chunks(512) {
                sharded.ingest(batch);
                single.ingest(batch);
            }
            assert_eq!(sharded.ingested(), stream.len() as u64);
            for item in 0..64u64 {
                assert_eq!(
                    sharded.query(&Query::Point(item)).unwrap(),
                    single.query(&Query::Point(item)).unwrap(),
                    "{routing:?}: item {item}"
                );
            }
            // Epochs are additive over shards: together they saw the whole stream.
            assert_eq!(sharded.report().epochs, stream.len() as u64);
        }
    }

    #[test]
    fn restore_of_checkpoint_is_observably_identical_and_continues_identically() {
        let stream = zipf_stream(512, 4_000, 1.2, 9);
        let (prefix, suffix) = stream.split_at(2_500);
        let config = EngineConfig {
            shards: 3,
            tracker: TrackerKind::FullAddressTracked,
            ..EngineConfig::default()
        };
        let mut engine = count_min_engine(config);
        let mut uninterrupted = count_min_engine(config);
        engine.ingest(prefix);
        uninterrupted.ingest(prefix);

        let bytes = engine.checkpoint();
        let mut restored = Engine::<CountMin>::restore(&bytes).expect("restore");
        assert_eq!(restored.shards(), 3);
        assert_eq!(restored.ingested(), engine.ingested());
        assert_eq!(restored.shard_reports(), engine.shard_reports());
        for i in 0..3 {
            assert_eq!(restored.shard_wear(i), engine.shard_wear(i), "shard {i}");
        }
        assert_eq!(restored.checkpoint(), bytes, "re-checkpoint determinism");

        // The restored engine continues bit-identically to the uninterrupted one.
        restored.ingest(suffix);
        uninterrupted.ingest(suffix);
        assert_eq!(restored.shard_reports(), uninterrupted.shard_reports());
        assert_eq!(restored.checkpoint(), uninterrupted.checkpoint());
        for item in 0..32u64 {
            assert_eq!(
                restored.query(&Query::Point(item)).unwrap(),
                uninterrupted.query(&Query::Point(item)).unwrap()
            );
        }
    }

    #[test]
    fn queries_do_not_disturb_shard_state() {
        let stream = zipf_stream(256, 1_000, 1.0, 5);
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&stream);
        let before = engine.checkpoint();
        let _ = engine.query(&Query::Point(1)).unwrap();
        let _ = engine
            .query(&Query::HeavyHitters { threshold: 10.0 })
            .unwrap();
        assert_eq!(engine.checkpoint(), before);
    }

    #[test]
    fn dyn_engine_round_trips_through_the_object_safe_face() {
        let mut engine: Box<dyn DynEngine> = Box::new(count_min_engine(EngineConfig::default()));
        engine.ingest(&zipf_stream(128, 500, 1.1, 2));
        assert!(engine.algorithm().contains("CountMin"));
        assert_eq!(engine.shards(), 4);
        let bytes = engine.checkpoint();
        let mut fresh: Box<dyn DynEngine> = Box::new(count_min_engine(EngineConfig::default()));
        fresh.restore_from(&bytes).expect("failover restore");
        assert_eq!(fresh.ingested(), 500);
        assert_eq!(fresh.report(), engine.report());
        assert_eq!(
            fresh.query(&Query::Point(3)).unwrap(),
            engine.query(&Query::Point(3)).unwrap()
        );
    }

    #[test]
    fn restore_from_rejects_a_checkpoint_of_a_different_algorithm() {
        let mut donor = Engine::new(EngineConfig::default(), |_| {
            MisraGries::with_tracker(&StateTracker::new(), 32)
        });
        donor.ingest(&zipf_stream(128, 500, 1.1, 2));
        let bytes = donor.checkpoint();

        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&zipf_stream(128, 200, 1.1, 3));
        let before = engine.checkpoint();
        match engine.restore_from(&bytes) {
            Err(SnapshotError::WrongAlgorithm { .. }) => {}
            other => panic!("cross-algorithm restore must fail typed, got {other:?}"),
        }
        assert_eq!(engine.checkpoint(), before, "rejected restore is a no-op");
    }

    #[test]
    fn restore_from_rejects_mismatched_geometry_and_config() {
        // Same summary type, different sketch width: parses fine, pairs wrong.
        let mut wide = Engine::new(EngineConfig::default(), |_| {
            CountMin::with_tracker(&StateTracker::new(), 256, 4, 77)
        });
        wide.ingest(&zipf_stream(128, 400, 1.1, 5));
        let mut narrow = count_min_engine(EngineConfig::default());
        match narrow.restore_from(&wide.checkpoint()) {
            Err(SnapshotError::ConfigMismatch { what, .. }) => {
                assert_eq!(what, "summary geometry");
            }
            other => panic!("geometry mismatch must fail typed, got {other:?}"),
        }

        // Same summary, different shard count: engine config mismatch.
        let mut five = count_min_engine(EngineConfig {
            shards: 5,
            ..EngineConfig::default()
        });
        five.ingest(&zipf_stream(128, 400, 1.1, 5));
        match narrow.restore_from(&five.checkpoint()) {
            Err(SnapshotError::ConfigMismatch { what, .. }) => {
                assert_eq!(what, "engine config");
            }
            other => panic!("config mismatch must fail typed, got {other:?}"),
        }
    }

    #[test]
    fn restore_from_chain_restores_the_recovered_tip() {
        use fsc_state::delta::CheckpointChain;
        let stream = zipf_stream(256, 3_000, 1.2, 21);
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&stream[..1_000]);
        let mut chain = CheckpointChain::new(engine.checkpoint(), engine.ingested()).unwrap();
        for end in [2_000, 3_000] {
            engine.ingest(&stream[end - 1_000..end]);
            chain
                .record(&engine.checkpoint(), engine.ingested())
                .unwrap();
        }

        let mut twin: Box<dyn DynEngine> = Box::new(count_min_engine(EngineConfig::default()));
        twin.restore_from_chain(&chain).expect("chain restore");
        assert_eq!(twin.ingested(), 3_000);
        for item in 0..16u64 {
            assert_eq!(
                twin.query(&Query::Point(item)).unwrap(),
                engine.query(&Query::Point(item)).unwrap()
            );
        }
    }

    #[test]
    fn bounded_merge_summaries_serve_union_answers() {
        let stream = zipf_stream(256, 3_000, 1.3, 11);
        let mut engine = Engine::new(
            EngineConfig {
                shards: 2,
                routing: Routing::ByItemHash,
                ..EngineConfig::default()
            },
            |_| MisraGries::with_tracker(&StateTracker::new(), 32),
        );
        engine.ingest(&stream);
        // Under item-hash routing every occurrence of an item is on one shard, so
        // the union's top item estimate matches a serial Misra-Gries within the
        // merge bound; qualitatively, the heaviest item must be reported.
        let answer = engine
            .query(&Query::HeavyHitters { threshold: 50.0 })
            .unwrap();
        let hh = answer.item_weights().expect("heavy hitter answer");
        assert!(!hh.is_empty(), "top items survive the union");
    }

    #[test]
    fn delta_checkpoints_reconstruct_the_full_checkpoint() {
        use fsc_state::delta::{apply_delta, CheckpointChain};
        let stream = zipf_stream(512, 4_000, 1.2, 17);
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&stream[..1_000]);

        // Point delta: base → later full checkpoint, byte-for-byte.
        let base = engine.base_ref();
        engine.ingest(&stream[1_000..2_000]);
        let full = engine.checkpoint();
        let delta = engine.checkpoint_delta(&base).unwrap();
        assert_eq!(apply_delta(base.bytes(), &delta).unwrap(), full);

        // Chain across further cadence points; tip restores a working engine.
        let mut chain = CheckpointChain::new(full, engine.ingested()).unwrap();
        assert_eq!(chain.algorithm(), SNAPSHOT_ID);
        for end in [3_000, 4_000] {
            engine.ingest(&stream[end - 1_000..end]);
            chain
                .record(&engine.checkpoint(), engine.ingested())
                .unwrap();
        }
        let restored = Engine::<CountMin>::restore(chain.tip_bytes()).unwrap();
        assert_eq!(restored.ingested(), 4_000);
        assert_eq!(restored.shard_reports(), engine.shard_reports());

        // Time travel: the engine as of ingest position 3_000.
        let (bytes, at) = chain.bytes_at(3_500).unwrap();
        assert_eq!(at, 3_000);
        let past = Engine::<CountMin>::restore(&bytes).unwrap();
        assert_eq!(past.ingested(), 3_000);
    }

    #[test]
    fn cached_queries_match_fresh_and_rebuild_only_on_state_changes() {
        let stream = zipf_stream(512, 4_000, 1.1, 21);
        let mut engine = count_min_engine(EngineConfig::default());
        assert_eq!(engine.view_rebuilds(), 0);
        for batch in stream.chunks(500) {
            engine.ingest(batch);
            for item in 0..16u64 {
                let q = Query::Point(item);
                assert_eq!(
                    engine.query(&q).unwrap(),
                    engine.query_fresh(&q).unwrap(),
                    "cached answer must match the always-rebuild oracle"
                );
            }
        }
        // 8 ingest rounds, 128 queries: the first query of each round rebuilds
        // (CountMin changes state almost every epoch), the rest hit the cache.
        assert_eq!(engine.view_rebuilds(), 8, "one rebuild per dirty round");
        let before = engine.view_rebuilds();
        let _ = engine.query_many(&(0..64).map(Query::Point).collect::<Vec<_>>());
        assert_eq!(
            engine.view_rebuilds(),
            before,
            "current view: zero rebuilds"
        );
    }

    #[test]
    fn generation_advances_with_changes_and_freezes_between_ingests() {
        let mut engine = count_min_engine(EngineConfig::default());
        let g0 = engine.generation();
        engine.ingest(&zipf_stream(256, 1_000, 1.1, 4));
        let g1 = engine.generation();
        assert!(g1 > g0, "ingest that changes state must advance the clock");
        let _ = engine.query(&Query::Point(1)).unwrap();
        let _ = engine.refresh_view().unwrap();
        assert_eq!(engine.generation(), g1, "reads never tick the clock");
    }

    #[test]
    fn restore_from_taints_the_generation_and_keeps_handles_alive() {
        let stream = zipf_stream(256, 2_000, 1.1, 8);
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&stream);
        let handle = engine.serving_view();
        let q = Query::Point(3);
        let live = engine.query(&q).unwrap();
        assert_eq!(
            handle.serve(&q),
            Some(live.clone()),
            "handle sees publishes"
        );

        let bytes = engine.checkpoint();
        let before = engine.generation();
        let stamp_before = handle.published_stamp().unwrap();
        engine.restore_from(&bytes).expect("failover restore");
        assert!(
            engine.generation() > before,
            "restore taints the clock forward even though trackers rewind"
        );
        assert_ne!(
            engine.generation(),
            stamp_before,
            "the kept view's stamp must compare stale after restore"
        );
        // The old handle still serves (the pre-restore snapshot) ...
        assert_eq!(handle.serve(&q), Some(live.clone()));
        // ... and the first post-restore query rebuilds through the same cell.
        let rebuilds = engine.view_rebuilds();
        assert_eq!(engine.query(&q).unwrap(), live);
        assert_eq!(engine.view_rebuilds(), rebuilds + 1);
        assert_eq!(handle.serve(&q), Some(live), "handle caught the republish");
    }

    #[test]
    fn parallel_ingest_gate_requires_shards_cores_and_volume() {
        let t = PARALLEL_INGEST_THRESHOLD;
        assert!(use_parallel_ingest(4, 4, t));
        assert!(use_parallel_ingest(2, 2, t + 1));
        assert!(
            !use_parallel_ingest(1, 4, t),
            "one shard has no parallelism"
        );
        assert!(
            !use_parallel_ingest(4, 1, t),
            "one core cannot overlap workers"
        );
        assert!(
            !use_parallel_ingest(4, 4, t - 1),
            "sub-threshold stays serial"
        );
        assert!(!use_parallel_ingest(4, 0, t), "zero workers never thread");
    }

    #[test]
    fn parallel_ingest_is_observably_identical_to_serial() {
        // Large enough that every shard's sub-batch clears the threshold, with the
        // worker budget forced past the gate so the scoped-thread path actually
        // runs even on a single-CPU host (where the default budget stays serial).
        let stream = zipf_stream(1 << 10, 4 * PARALLEL_INGEST_THRESHOLD, 1.1, 13);
        let config = EngineConfig {
            tracker: TrackerKind::FullAddressTracked,
            ingest_threads: Some(4),
            ..EngineConfig::default()
        };
        let mut parallel = count_min_engine(config);
        let mut serial = count_min_engine(config);
        parallel.ingest(&stream); // one call: sub-batches ≥ threshold → workers
        for batch in stream.chunks(1_000) {
            serial.ingest(batch); // small calls: always the serial drain
        }
        assert_eq!(parallel.shard_reports(), serial.shard_reports());
        assert_eq!(parallel.checkpoint(), serial.checkpoint());
        for i in 0..4 {
            assert_eq!(parallel.shard_wear(i), serial.shard_wear(i), "shard {i}");
        }
    }

    #[test]
    fn corrupt_engine_checkpoints_error_not_panic() {
        let mut engine = count_min_engine(EngineConfig::default());
        engine.ingest(&zipf_stream(64, 300, 1.1, 1));
        let bytes = engine.checkpoint();
        for cut in (0..bytes.len()).step_by(3) {
            assert!(Engine::<CountMin>::restore(&bytes[..cut]).is_err());
        }
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(
            Engine::<CountMin>::restore(&bad),
            Err(SnapshotError::BadMagic)
        ));
        // A shard checkpoint of the wrong algorithm type is rejected by the nested
        // header validation.
        assert!(Engine::<MisraGries>::restore(&bytes).is_err());
    }
}
