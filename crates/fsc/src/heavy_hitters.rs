//! `L_p` heavy hitters with few state changes (Theorem 1.1).

use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm,
};

use crate::full_sample_and_hold::FullSampleAndHold;
use crate::params::Params;

/// Stable checkpoint-header id of [`FewStateHeavyHitters`].
const SNAPSHOT_ID: &str = "few_state_heavy_hitters";

/// The paper's `L_p` heavy-hitter algorithm: `FullSampleAndHold` plus thresholding.
///
/// Guarantee (Theorem 1.1): with probability ≥ 2/3 the returned frequency vector
/// satisfies `‖f̂ − f‖_∞ ≤ (ε/2)·‖f‖_p`, using `Õ(n^{1−1/p})·poly(1/ε)` internal state
/// changes, `poly(log nm, 1/ε)` bits of space for `p ∈ [1,2]`, and
/// `Õ(n^{1−2/p}/ε^{4+4p})` bits for `p > 2`.
///
/// Turning frequency estimates into a heavy-hitter *list* additionally needs a
/// 2-approximation of `‖f‖_p` (paper, Section 1.2).  [`FewStateHeavyHitters::heavy_hitters`]
/// derives one from the algorithm's own summary (`F̂_p = max(m, Σ_tracked f̂^p)`, which is
/// within a constant factor whenever the tracked items capture the significant mass);
/// [`FewStateHeavyHitters::heavy_hitters_with_norm`] accepts an externally supplied
/// norm, e.g. from [`crate::FpEstimator`].
#[derive(Debug)]
pub struct FewStateHeavyHitters {
    inner: FullSampleAndHold,
    params: Params,
    name: String,
}

impl FewStateHeavyHitters {
    /// Creates the algorithm for the given parameters.
    pub fn new(params: Params) -> Self {
        Self {
            inner: FullSampleAndHold::standalone(&params),
            name: format!("FewStateHeavyHitters(p={}, eps={})", params.p, params.eps),
            params,
        }
    }

    /// The accuracy parameter `ε` the instance was built for.
    pub fn eps(&self) -> f64 {
        self.params.eps
    }

    /// The norm order `p`.
    pub fn p(&self) -> f64 {
        self.params.p
    }

    /// A self-contained estimate of `F_p` built from the summary's own tracked items:
    /// `max(m, Σ_j f̂_j^p)`.  (`F_p ≥ m` always holds for `p ≥ 1` on insertion-only
    /// streams, so this never underestimates by more than the untracked light mass.)
    pub fn rough_fp(&self) -> f64 {
        let m = self.inner.tracker().epochs() as f64;
        let tracked: f64 = self
            .inner
            .tracked_items()
            .into_iter()
            .map(|j| self.inner.estimate(j).powf(self.params.p))
            .sum();
        tracked.max(m)
    }

    /// All items whose estimated frequency is at least `ε·‖f‖_p`, where `‖f‖_p` is
    /// supplied by the caller (e.g. from an `F_p` estimator or from ground truth).
    /// Returned as `(item, estimated frequency)` sorted by decreasing estimate.
    pub fn heavy_hitters_with_norm(&self, lp_norm: f64) -> Vec<(u64, f64)> {
        let threshold = self.params.eps * lp_norm;
        FrequencyEstimator::heavy_hitters(self, threshold)
    }

    /// Heavy hitters thresholded against the algorithm's own rough `F_p` estimate.
    pub fn heavy_hitters(&self) -> Vec<(u64, f64)> {
        self.heavy_hitters_with_norm(self.rough_fp().powf(1.0 / self.params.p))
    }
}

impl StreamAlgorithm for FewStateHeavyHitters {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        self.inner.process_item(item);
    }

    fn tracker(&self) -> &StateTracker {
        self.inner.tracker()
    }

    /// Delegates to the inner [`FullSampleAndHold`] batch kernel (same tracker, so
    /// the epoch span it opens is this algorithm's span).
    fn process_batch(&mut self, items: &[u64]) {
        self.inner.process_batch(items);
    }
}

impl_queryable!(FewStateHeavyHitters: [frequency]);

impl Snapshot for FewStateHeavyHitters {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, the parameter set, then the inner
    /// [`FullSampleAndHold`] ensemble's dynamic state (the wrapper itself is
    /// stateless beyond its parameters).
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker().export_state().write_to(&mut w);
        self.params.write_snapshot(&mut w);
        self.inner.write_dynamic_state(&mut w);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let params = Params::read_snapshot(&mut r)?.with_tracker(state.kind);
        let mut alg = FewStateHeavyHitters::new(params);
        alg.inner.read_dynamic_state(&mut r)?;
        alg.tracker().import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for FewStateHeavyHitters {
    fn estimate(&self, item: u64) -> f64 {
        self.inner.estimate(item)
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.inner.tracked_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::ground_truth::precision_recall;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn finds_the_true_l2_heavy_hitters_on_a_zipf_stream() {
        let n = 1 << 13;
        let m = 4 * n;
        let eps = 0.25;
        let stream = zipf_stream(n, m, 1.3, 9);
        let truth = FrequencyVector::from_stream(&stream);
        let exact: Vec<u64> = truth
            .heavy_hitters(2.0, eps)
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert!(
            !exact.is_empty(),
            "workload should contain L2 heavy hitters"
        );

        let mut alg = FewStateHeavyHitters::new(Params::new(2.0, eps, n, m).with_seed(4));
        alg.process_stream(&stream);
        let reported: Vec<u64> = alg
            .heavy_hitters_with_norm(truth.lp(2.0))
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        let (_, recall) = precision_recall(&reported, &exact);
        assert!(
            recall >= 0.99,
            "recall {recall} (reported {reported:?}, exact {exact:?})"
        );
        // Soundness: nothing below the ε/4 threshold may be reported.
        let floor = 0.25 * eps * truth.lp(2.0);
        for &item in &reported {
            assert!(
                truth.frequency(item) as f64 >= floor,
                "item {item} below the ε/4 floor was reported"
            );
        }
    }

    #[test]
    fn self_contained_threshold_is_usable() {
        let n = 1 << 12;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.4, 17);
        let truth = FrequencyVector::from_stream(&stream);
        let mut alg = FewStateHeavyHitters::new(Params::new(2.0, 0.3, n, m).with_seed(8));
        alg.process_stream(&stream);
        assert!(alg.rough_fp() >= m as f64);
        assert!(
            alg.rough_fp() <= 2.0 * truth.fp(2.0),
            "rough Fp should not blow up"
        );
        let hh = alg.heavy_hitters();
        assert!(!hh.is_empty());
        // The most frequent item must be in the list.
        assert!(hh.iter().any(|&(i, _)| i == truth.mode().unwrap().0));
        assert_eq!(alg.eps(), 0.3);
        assert_eq!(alg.p(), 2.0);
    }

    #[test]
    fn state_changes_are_far_below_the_stream_length() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.1, 3);
        let mut alg = FewStateHeavyHitters::new(Params::new(2.0, 0.3, n, m).with_seed(2));
        alg.process_stream(&stream);
        let r = alg.report();
        assert!((r.state_changes as f64) < 0.9 * m as f64);
        assert!(r.epochs as usize == m);
    }
}
