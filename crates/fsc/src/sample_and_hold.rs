//! `SampleAndHold` — Algorithm 1 of the paper.
//!
//! The subroutine that makes few state changes possible: items are *sampled* into a
//! small reservoir with probability `ϱ ≈ n^{1−1/p}·polylog/(ε·m)`, and a (Morris)
//! counter is *held* for an item only when it arrives again while it sits in the
//! reservoir.  Heavy items are caught early and their frequencies counted almost
//! completely; light items rarely acquire counters.  When too many counters exist, the
//! paper's time-bucketed maintenance keeps, within every age group `[2^z, 2^{z+1})`,
//! only the half with the largest approximate counts — the rule that defeats the
//! Section 1.4 counterexample on which globally-smallest-counter eviction fails.
//!
//! Deviations of the practical profile (all documented in `DESIGN.md`):
//!
//! * the counter budget is the deterministic `4κ` instead of the randomised
//!   `Uni[200pκ log²(nm), 202pκ log²(nm)]` (the randomisation is only needed for the
//!   worst-case proof of Lemma 2.1);
//! * an item sitting in the reservoir counts as one implicit occurrence, so
//!   frequency-one items surviving aggressive universe subsampling are still visible to
//!   the `F_p` estimator (the paper implicitly assumes the same when it credits the
//!   sampled occurrence);
//! * the stream position used for age bucketing is the update index supplied by the
//!   harness (the paper likewise indexes updates by `t` without charging for a clock).

use fsc_counters::fastmap::{fast_map, FastMap};
use fsc_counters::{Counter, MorrisCounter};
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm, TrackedVec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::Params;

/// Stable checkpoint-header id of [`SampleAndHold`].
const SNAPSHOT_ID: &str = "sample_and_hold";

/// A held per-item counter: the Morris register plus its creation time.
#[derive(Debug, Clone)]
struct HeldCounter {
    morris: MorrisCounter,
    created_at: u64,
}

/// The merged per-item slot: an item known to the summary is in the reservoir
/// (`reservoir_slots > 0`), holds a Morris counter (`held`), or both.
///
/// Keeping one table instead of a counter map plus a reservoir mirror halves the
/// hash probes of the dominant "unknown item" path (one miss instead of two) — the
/// single most important cost inside `FullSampleAndHold` and `FpEstimator`, which
/// run `O(log)` copies of this algorithm per update.  The table is untracked
/// (a performance aid, like the mirror it replaces); the tracked read charges still
/// follow the per-item path's logical probes of the counter table and reservoir.
#[derive(Debug, Clone, Default)]
struct ItemSlot {
    held: Option<HeldCounter>,
    /// Number of reservoir slots currently holding this item.
    reservoir_slots: u32,
}

/// Words charged for the key and creation-time metadata of a held counter
/// (the Morris register charges its own word).
const HELD_METADATA_WORDS: usize = 2;

/// Algorithm 1: reservoir sampling plus held Morris counters with time-bucketed
/// maintenance.
#[derive(Debug)]
pub struct SampleAndHold {
    params: Params,
    tracker: StateTracker,
    rng: StdRng,
    reservoir: TrackedVec<u64>,
    /// Untracked merged view of the summary keyed by item: reservoir membership
    /// counts and held Morris counters in one probe (see [`ItemSlot`]).  Invariant:
    /// an entry exists iff it is held or occupies ≥ 1 reservoir slot.
    items: FastMap<u64, ItemSlot>,
    /// Number of entries currently holding a Morris counter (`items` entries with
    /// `held.is_some()`), maintained incrementally.
    held_len: usize,
    /// Slots that have never been written; preferred over random eviction so that a
    /// lightly-loaded reservoir retains every sampled item (practical deviation noted
    /// in the module docs — the paper always evicts a uniformly random slot).
    free_slots: Vec<usize>,
    counter_budget: usize,
    sample_prob: f64,
    name: String,
}

/// Sentinel marking an empty reservoir slot.
const EMPTY_SLOT: u64 = u64::MAX;

/// Items per block of the leveled-ensemble batch kernels: large enough to amortise
/// the per-block bookkeeping, small enough that the level scratch stays
/// cache-resident.
pub(crate) const BATCH_BLOCK: usize = 1024;

/// The shared blocked batch kernel of the leveled ensembles (`FullSampleAndHold`'s
/// stream-subsampling levels, `FpEstimator`'s universe-subsampling levels).
///
/// Per block, `fill_levels` precomputes the deepest level of every
/// `(item, repetition)` pair — in `(item, repetition)` order, so an ensemble whose
/// level decision consumes its own rng draws them in exactly the per-item sequence —
/// then the updates dispatch into the per-level `SampleAndHold` copies inside
/// per-item epochs, with all logical read charges accumulated (both the ensemble's
/// own, via the accumulator handed to `fill_levels`, and the copies') and flushed
/// with one tracker call per batch.  Each copy still sees its substream in stream
/// order, so every observable matches the per-item path — the batch-law tests pin
/// this for both ensembles.
///
/// `scratch` is the block-level buffer the deepest-level table is built in — owned
/// by the calling ensemble and allocated once at construction (like MorrisCounter's
/// cached acceptance probability), so repeated `process_batch` calls reuse one
/// allocation instead of growing a fresh vector each call.  Contents on entry are
/// irrelevant; the kernel clears it per block.
pub(crate) fn process_batch_leveled(
    tracker: &StateTracker,
    instances: &mut [Vec<SampleAndHold>],
    items: &[u64],
    scratch: &mut Vec<u16>,
    mut fill_levels: impl FnMut(&[u64], &mut Vec<u16>, &mut u64),
) {
    let first = tracker.begin_epochs(items.len() as u64);
    let reps = instances.len();
    let mut reads = 0u64;
    let deepest = scratch;
    let mut offset = 0u64;
    for block in items.chunks(BATCH_BLOCK) {
        deepest.clear();
        fill_levels(block, deepest, &mut reads);
        for (i, &item) in block.iter().enumerate() {
            tracker.enter_epoch(first + offset + i as u64);
            for (r, row) in instances.iter_mut().enumerate() {
                let d = deepest[i * reps + r] as usize;
                for inst in row.iter_mut().take(d + 1) {
                    inst.process_item_inner(item, &mut reads);
                }
            }
        }
        offset += block.len() as u64;
    }
    tracker.record_reads(reads);
}

impl SampleAndHold {
    /// Creates an instance that shares `tracker` with an enclosing algorithm and is
    /// sized for a (sub)stream of about `substream_len_hint` updates.
    pub fn new(
        params: &Params,
        substream_len_hint: usize,
        tracker: &StateTracker,
        seed: u64,
    ) -> Self {
        let substream_len_hint = substream_len_hint.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let kappa = params.kappa(substream_len_hint);
        let counter_budget = params.counter_budget(substream_len_hint, rng.gen());
        let sample_prob = params.sample_prob(substream_len_hint);
        let reservoir = TrackedVec::filled(tracker, kappa, EMPTY_SLOT);
        Self {
            name: format!("SampleAndHold(p={}, eps={})", params.p, params.eps),
            params: params.clone(),
            tracker: tracker.clone(),
            rng,
            reservoir,
            items: fast_map(),
            held_len: 0,
            free_slots: (0..kappa).rev().collect(),
            counter_budget,
            sample_prob,
        }
    }

    /// Creates a standalone instance with its own tracker (of the backend kind selected
    /// by [`Params::tracker`]), sized from [`Params::stream_len_hint`].
    pub fn standalone(params: &Params) -> Self {
        let tracker = params.make_tracker();
        let hint = params.stream_len_hint;
        let seed = params.seed;
        Self::new(params, hint, &tracker, seed)
    }

    /// Per-update sampling probability `ϱ` in use.
    pub fn sample_prob(&self) -> f64 {
        self.sample_prob
    }

    /// Number of reservoir slots `κ`.
    pub fn reservoir_slots(&self) -> usize {
        self.reservoir.len()
    }

    /// Counter budget `k` that triggers maintenance.
    pub fn counter_budget(&self) -> usize {
        self.counter_budget
    }

    /// Number of currently held counters.
    pub fn held_counters(&self) -> usize {
        self.held_len
    }

    /// Whether `item` currently holds a Morris counter (untracked; tests/reporting).
    pub fn holds_counter(&self, item: u64) -> bool {
        self.items.get(&item).is_some_and(|s| s.held.is_some())
    }

    fn now(&self) -> u64 {
        self.tracker.epochs()
    }

    fn hold_counter(&mut self, item: u64) {
        let mut morris = MorrisCounter::new(&self.tracker, self.params.morris_growth());
        // Count the occurrence that triggered the hold.
        morris.increment(&mut self.rng);
        self.tracker.alloc(HELD_METADATA_WORDS);
        self.tracker.record_write(None, true);
        let created_at = self.now();
        self.items.entry(item).or_default().held = Some(HeldCounter { morris, created_at });
        self.held_len += 1;
        if self.held_len > self.counter_budget {
            self.maintain();
        }
    }

    /// Time-bucketed maintenance (Algorithm 1, lines 19–21): within each age bucket
    /// `[2^z, 2^{z+1})`, retain the half of the counters with the largest approximate
    /// counts and drop the rest.
    fn maintain(&mut self) {
        let now = self.now();
        self.tracker.record_reads(self.held_len as u64);

        let mut buckets: FastMap<u32, Vec<(u64, f64)>> = fast_map();
        for (&item, slot) in &self.items {
            if let Some(held) = &slot.held {
                let age = now.saturating_sub(held.created_at) + 1;
                let z = 63 - age.leading_zeros(); // floor(log2(age))
                buckets
                    .entry(z)
                    .or_default()
                    .push((item, held.morris.estimate()));
            }
        }

        let mut to_remove: Vec<u64> = Vec::new();
        for (_, mut members) in buckets {
            members.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let keep = members.len().div_ceil(2);
            for &(item, _) in &members[keep..] {
                to_remove.push(item);
            }
        }
        for item in to_remove {
            // The Morris register's word is released when the counter drops.
            let slot = self
                .items
                .get_mut(&item)
                .expect("held item is in the table");
            slot.held = None;
            self.held_len -= 1;
            if slot.reservoir_slots == 0 {
                self.items.remove(&item);
            }
            self.tracker.dealloc(HELD_METADATA_WORDS);
            self.tracker.record_write(None, true);
        }
    }

    /// The per-update body, with read charges accumulated into `reads` instead of
    /// being dispatched to the tracker one at a time.
    ///
    /// [`StreamAlgorithm::process_item`] flushes after one item; the batch kernels of
    /// this type and of the enclosing ensembles (`FullSampleAndHold`, `FpEstimator`)
    /// flush once per batch.  Only the read *total* is deferred — writes, epochs, and
    /// state-change claims go to the tracker at their natural points, so the
    /// accounting is observably identical (reads are a single aggregate counter).
    #[inline]
    pub(crate) fn process_item_inner(&mut self, item: u64, reads: &mut u64) {
        // One physical probe of the merged table resolves both logical lookups of
        // the algorithm; the read charges still follow the logical path (counter
        // table, then — for unheld items — the reservoir).
        *reads += 1;
        match self.items.get_mut(&item) {
            // 1. Already held: update its Morris counter (a state change only when
            //    the probabilistic register advances).
            Some(slot) if slot.held.is_some() => {
                let held = slot.held.as_mut().expect("checked above");
                held.morris.increment(&mut self.rng);
            }
            // 2. In the reservoir: start holding a counter for it.
            Some(_) => {
                *reads += 1;
                self.hold_counter(item);
            }
            // 3. Otherwise: sample it into the reservoir with probability ϱ.
            None => {
                *reads += 1;
                if self.rng.gen::<f64>() < self.sample_prob {
                    self.sample_into_reservoir(item);
                }
            }
        }
    }

    fn sample_into_reservoir(&mut self, item: u64) {
        let slot = match self.free_slots.pop() {
            Some(slot) => slot,
            None => self.rng.gen_range(0..self.reservoir.len()),
        };
        let old = *self.reservoir.peek(slot);
        if self.reservoir.set(slot, item) {
            if old != EMPTY_SLOT {
                if let Some(entry) = self.items.get_mut(&old) {
                    entry.reservoir_slots -= 1;
                    if entry.reservoir_slots == 0 && entry.held.is_none() {
                        self.items.remove(&old);
                    }
                }
            }
            self.items.entry(item).or_default().reservoir_slots += 1;
        }
    }

    /// Serializes the dynamic (post-construction) state: the live rng, the derived
    /// budgets, the reservoir contents, the free-slot stack, and the merged item
    /// table including each held Morris counter's register, creation time, and
    /// tracked register address (held counters are allocated mid-stream, so their
    /// addresses cannot be re-derived by reconstruction — recording them is what
    /// keeps post-restore wear landing on the same cells as the original).
    ///
    /// Configuration-derived structure (reservoir size, hash functions) is *not*
    /// serialized: the caller rebuilds the instance with its deterministic
    /// constructor first, then overwrites this dynamic state, then imports the
    /// tracker state — see the ensemble `Snapshot` implementations.
    pub(crate) fn write_dynamic_state(&self, w: &mut SnapshotWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        w.f64(self.sample_prob);
        w.usize(self.counter_budget);
        w.usize(self.free_slots.len());
        for &slot in &self.free_slots {
            w.usize(slot);
        }
        w.usize(self.reservoir.len());
        for &slot in self.reservoir.iter_untracked() {
            w.u64(slot);
        }
        let mut entries: Vec<(&u64, &ItemSlot)> = self.items.iter().collect();
        entries.sort_unstable_by_key(|(&k, _)| k);
        w.usize(entries.len());
        for (&item, slot) in entries {
            w.u64(item);
            w.u32(slot.reservoir_slots);
            match &slot.held {
                Some(held) => {
                    w.bool(true);
                    w.u64(held.created_at);
                    w.u64(held.morris.register());
                    w.usize(held.morris.addr_start());
                }
                None => w.bool(false),
            }
        }
    }

    /// Restores the dynamic state serialized by
    /// [`SampleAndHold::write_dynamic_state`] into a freshly constructed instance
    /// (same parameters, same tracker construction order).  The caller finishes with
    /// [`StateTracker::import_state`].
    pub(crate) fn read_dynamic_state(
        &mut self,
        r: &mut SnapshotReader<'_>,
    ) -> Result<(), SnapshotError> {
        self.rng = StdRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        let sample_prob = r.f64()?;
        if !(0.0..=1.0).contains(&sample_prob) {
            return Err(SnapshotError::Corrupt("sample probability out of range"));
        }
        self.sample_prob = sample_prob;
        self.counter_budget = r.usize()?;
        let kappa = self.reservoir.len();
        let free = r.len_prefix(8)?;
        if free > kappa {
            return Err(SnapshotError::Corrupt("free-slot stack exceeds reservoir"));
        }
        self.free_slots.clear();
        for _ in 0..free {
            let slot = r.usize()?;
            if slot >= kappa {
                return Err(SnapshotError::Corrupt("free slot out of range"));
            }
            self.free_slots.push(slot);
        }
        if r.len_prefix(8)? != kappa {
            return Err(SnapshotError::Corrupt("reservoir size mismatch"));
        }
        for slot in self.reservoir.as_mut_slice_untracked() {
            *slot = r.u64()?;
        }
        self.items.clear();
        self.held_len = 0;
        let growth = self.params.morris_growth();
        // Minimum serialized entry: key (8) + slots (4) + held flag (1).
        let entries = r.len_prefix(13)?;
        for _ in 0..entries {
            let item = r.u64()?;
            let reservoir_slots = r.u32()?;
            let held = if r.bool()? {
                let created_at = r.u64()?;
                let register = r.u64()?;
                let addr_start = r.usize()?;
                self.held_len += 1;
                Some(HeldCounter {
                    morris: MorrisCounter::restore_at(&self.tracker, growth, register, addr_start),
                    created_at,
                })
            } else {
                None
            };
            if held.is_none() && reservoir_slots == 0 {
                return Err(SnapshotError::Corrupt("item slot neither held nor sampled"));
            }
            self.items.insert(
                item,
                ItemSlot {
                    held,
                    reservoir_slots,
                },
            );
        }
        Ok(())
    }

    /// Items currently held in the reservoir (without counters).
    pub fn reservoir_items(&self) -> Vec<u64> {
        self.items
            .iter()
            .filter(|(_, s)| s.reservoir_slots > 0)
            .map(|(&i, _)| i)
            .collect()
    }
}

impl StreamAlgorithm for SampleAndHold {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        let mut reads = 0;
        self.process_item_inner(item, &mut reads);
        self.tracker.record_reads(reads);
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Batch kernel: the tracker handle is resolved once, the epoch span is hoisted,
    /// and the per-update read charges (1–2 per item) are accumulated and flushed
    /// with a single tracker call for the whole batch.
    fn process_batch(&mut self, items: &[u64]) {
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(items.len() as u64);
        let mut reads = 0;
        for (i, &item) in items.iter().enumerate() {
            tracker.enter_epoch(first + i as u64);
            self.process_item_inner(item, &mut reads);
        }
        tracker.record_reads(reads);
    }
}

impl_queryable!(SampleAndHold: [frequency]);

impl Snapshot for SampleAndHold {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, the parameter set, then the dynamic state
    /// (`write_dynamic_state`).
    ///
    /// Defined for standalone-constructed instances (the instance owns its tracker
    /// and was sized from [`Params::stream_len_hint`], as [`SampleAndHold::standalone`]
    /// does); copies embedded in an ensemble are checkpointed through the ensemble's
    /// own `Snapshot` implementation.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        self.params.write_snapshot(&mut w);
        self.write_dynamic_state(&mut w);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let params = Params::read_snapshot(&mut r)?.with_tracker(state.kind);
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = SampleAndHold::new(&params, params.stream_len_hint, &tracker, params.seed);
        alg.read_dynamic_state(&mut r)?;
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for SampleAndHold {
    /// Estimated frequency: one implicit occurrence for the event that put the item in
    /// the summary, plus the Morris estimate of subsequent occurrences.  Estimates never
    /// exceed the true frequency by more than the Morris approximation error — the
    /// one-sidedness `FullSampleAndHold` relies on.
    fn estimate(&self, item: u64) -> f64 {
        match self.items.get(&item) {
            Some(slot) => match &slot.held {
                Some(held) => 1.0 + held.morris.estimate(),
                None => 1.0, // reservoir-only: the sampled occurrence itself
            },
            None => 0.0,
        }
    }

    fn tracked_items(&self) -> Vec<u64> {
        // Table invariant: every entry is held and/or in the reservoir, so the key
        // set is exactly the union the two former tables produced.
        let mut items: Vec<u64> = self.items.keys().copied().collect();
        items.sort_unstable();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::blocks::counterexample_stream;
    use fsc_streamgen::planted::{planted_stream, PlantedSpec};
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    fn params(n: usize, m: usize, eps: f64) -> Params {
        Params::new(2.0, eps, n, m)
    }

    #[test]
    fn heavy_hitter_frequencies_are_estimated_well() {
        let n = 1 << 14;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.2, 11);
        let truth = FrequencyVector::from_stream(&stream);
        let mut alg = SampleAndHold::standalone(&params(n, m, 0.2).with_seed(5));
        alg.process_stream(&stream);
        for (item, f) in truth.top_k(3) {
            let est = alg.estimate(item);
            let rel = (est - f as f64).abs() / f as f64;
            assert!(rel < 0.3, "item {item}: est {est}, true {f}, rel {rel}");
        }
    }

    #[test]
    fn estimates_do_not_materially_overestimate() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.1, 3);
        let truth = FrequencyVector::from_stream(&stream);
        let mut alg = SampleAndHold::standalone(&params(n, m, 0.2).with_seed(9));
        alg.process_stream(&stream);
        for item in alg.tracked_items() {
            let est = alg.estimate(item);
            let true_f = truth.frequency(item) as f64;
            assert!(
                est <= 1.3 * true_f + 2.0,
                "item {item} overestimated: est {est}, true {true_f}"
            );
        }
    }

    #[test]
    fn state_changes_are_sublinear_in_the_stream_length() {
        let n = 1 << 14;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.0, 7);
        let mut alg = SampleAndHold::standalone(&params(n, m, 0.3).with_seed(2));
        alg.process_stream(&stream);
        let r = alg.report();
        assert_eq!(r.epochs as usize, m);
        assert!(
            (r.state_changes as f64) < 0.5 * m as f64,
            "state changes {} vs stream length {m}",
            r.state_changes
        );
    }

    #[test]
    fn space_stays_within_the_counter_budget() {
        let n = 1 << 14;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 0.9, 13);
        let mut alg = SampleAndHold::standalone(&params(n, m, 0.25).with_seed(21));
        alg.process_stream(&stream);
        assert!(alg.held_counters() <= alg.counter_budget());
        // Reservoir + counters + Morris registers, with a small constant of slack.
        let budget_words =
            alg.reservoir_slots() + alg.counter_budget() * (HELD_METADATA_WORDS + 1) + 16;
        assert!(
            alg.space_words() <= budget_words,
            "space {} exceeds budget {budget_words}",
            alg.space_words()
        );
    }

    #[test]
    fn maintenance_keeps_the_heavy_hitter_on_the_counterexample_stream() {
        // The Section 1.4 stream: time-bucketed maintenance must not evict the true
        // heavy hitter in favour of locally-large pseudo-heavy items.
        let cx = counterexample_stream(12);
        let n = cx.stream.len();
        let p = Params::new(2.0, 0.3, n, n).with_seed(17);
        let mut alg = SampleAndHold::standalone(&p);
        alg.process_stream(&cx.stream);
        let est = alg.estimate(cx.heavy_hitter);
        assert!(
            est >= 0.4 * cx.heavy_freq as f64,
            "heavy hitter estimate {est} vs true {}",
            cx.heavy_freq
        );
    }

    #[test]
    fn reservoir_only_items_report_one_occurrence() {
        let spec = PlantedSpec {
            universe: 1 << 12,
            background_updates: 10_000,
            planted: vec![2_000],
            seed: 3,
        };
        let stream = planted_stream(&spec);
        let mut alg = SampleAndHold::standalone(&params(1 << 12, stream.len(), 0.3).with_seed(8));
        alg.process_stream(&stream);
        let reservoir_only: Vec<u64> = alg
            .reservoir_items()
            .into_iter()
            .filter(|&i| !alg.holds_counter(i))
            .collect();
        for item in reservoir_only {
            assert_eq!(alg.estimate(item), 1.0);
        }
        assert_eq!(alg.estimate(u64::MAX - 7), 0.0);
    }

    #[test]
    fn standalone_uses_its_own_tracker_and_parameters() {
        let p = params(1 << 10, 1 << 12, 0.2);
        let alg = SampleAndHold::standalone(&p);
        assert!(alg.sample_prob() > 0.0 && alg.sample_prob() <= 1.0);
        assert!(alg.reservoir_slots() >= 16);
        assert!(alg.counter_budget() >= alg.reservoir_slots());
        assert_eq!(alg.held_counters(), 0);
        assert_eq!(alg.report().epochs, 0);
    }
}
