//! # fsc — streaming algorithms with few state changes
//!
//! Rust implementation of the algorithms of *Streaming Algorithms with Few State
//! Changes* (Jayaram, Woodruff, Zhou; PODS 2024).  All algorithms are one-pass,
//! insertion-only, and built on the tracked-memory substrate of [`fsc_state`], so their
//! state-change counts are measured rather than asserted.
//!
//! | Type | Paper result | Guarantee |
//! |------|--------------|-----------|
//! | [`SampleAndHold`] | Algorithm 1 | frequency estimates for items that are heavy under an `F_p = Õ(n)` assumption |
//! | [`FullSampleAndHold`] | Algorithm 2 | removes the moment assumption by stream subsampling |
//! | [`FewStateHeavyHitters`] | Theorem 1.1 | `L_p` heavy hitters, `Õ(n^{1−1/p})` state changes, near-optimal space |
//! | [`FpEstimator`] | Theorem 1.3 / Algorithm 3 | `(1±ε)·F_p` for `p ≥ 1`, `Õ(n^{1−1/p})` state changes |
//! | [`FpSmallEstimator`] | Theorem 3.2 | `(1±ε)·F_p` for `p < 1`, `poly(log n, 1/ε)` state changes |
//! | [`EntropyFewState`] | Theorem 3.8 | additive-ε Shannon entropy via moments near `p = 1` |
//! | [`SparseRecovery`](sparse_recovery::FewStateSparseRecovery) | abstract | exact support of a `k`-sparse vector with `k` state changes |
//! | [`BudgetedAlgorithm`] | Theorems 1.2/1.4 | wrapper enforcing a hard state-change budget (for the lower-bound experiments) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod budget;
mod entropy;
mod fp;
mod fp_small;
mod full_sample_and_hold;
mod heavy_hitters;
mod params;
mod sample_and_hold;
pub mod sparse_recovery;

pub use budget::BudgetedAlgorithm;
pub use entropy::EntropyFewState;
pub use fp::FpEstimator;
pub use fp_small::FpSmallEstimator;
pub use full_sample_and_hold::FullSampleAndHold;
pub use heavy_hitters::FewStateHeavyHitters;
pub use params::{Params, Profile};
pub use sample_and_hold::SampleAndHold;

// Re-exported so callers can select a tracker backend through `Params` without naming
// the `fsc_state` crate explicitly.
pub use fsc_state::TrackerKind;
