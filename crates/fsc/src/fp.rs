//! `F_p` moment estimation for `p ≥ 1` (Theorem 1.3, Algorithm 3).
//!
//! The estimator follows the level-set framework of [IW05] as instantiated by the
//! paper: the universe `[n]` is subsampled at geometrically decreasing rates
//! `2^{-ℓ}`, a `SampleAndHold` summary is maintained per subsampling level and
//! repetition, and at query time the contribution `C_i` of every frequency level set
//! `Γ_i = {j : f_j^p ∈ [λ·G/2^i, 2λ·G/2^i)}` is estimated from the level
//! `ℓ(i) = max(0, i − offset)` at which about `survivor_target` members of `Γ_i`
//! survive, then rescaled by the inverse sampling rate.  `λ ~ Uni[1/2, 1]` randomises
//! the level-set boundaries (Lemma 3.6, "randomized boundaries").
//!
//! Because universe subsampling keeps or drops *items* wholesale, a surviving item's
//! frequency inside the substream equals its true frequency, so no frequency rescaling
//! is needed — only the item count is rescaled.
//!
//! Practical deviations (documented in `DESIGN.md`):
//!
//! * The paper anchors the level sets at `M̃ ≈ m^p` (Algorithm 3, line 9); anchoring at
//!   a guess `G` of `F_p` and accepting the first self-consistent guess
//!   (`total ∈ [G/2, 2G)`) avoids subsampling far past the point where anything
//!   survives.  This is the standard way the [IW05] framework removes the
//!   "know `F_p` up to a constant" assumption and does not change the state-change or
//!   space behaviour (the same summaries serve every guess).
//! * Each subsampling level runs Algorithm 1 directly rather than Algorithm 2; the
//!   level structure already provides the moment reduction that Algorithm 2's stream
//!   subsampling supplies (set [`Params::reps`] higher for more robustness).

use fsc_counters::hashing::{GeometricLevels, PolyHash, MERSENNE_61};
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, MomentEstimator, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, StateTracker, StreamAlgorithm,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::Params;
use crate::sample_and_hold::{process_batch_leveled, SampleAndHold, BATCH_BLOCK};

/// Stable checkpoint-header id of [`FpEstimator`].
const SNAPSHOT_ID: &str = "fp_estimator";

/// Algorithm 3: universe-subsampled `SampleAndHold` summaries plus level-set estimation.
#[derive(Debug)]
pub struct FpEstimator {
    params: Params,
    tracker: StateTracker,
    /// One universe-subsampling hash per repetition (items are kept consistently).
    hashes: Vec<PolyHash>,
    /// `instances[r][ℓ]`: summary of the substream induced by keeping items with
    /// probability `2^{-ℓ}` under hash `r`.
    instances: Vec<Vec<SampleAndHold>>,
    levels: usize,
    /// Precomputed integer cutoffs mapping a universe-subsampling hash to the deepest
    /// level it reaches — bit-identical to the former per-item
    /// `⌊−log2(hash_unit)⌋` computation (see [`GeometricLevels`]).
    level_cutoffs: GeometricLevels,
    /// Random level-set boundary shift `λ ∈ [1/2, 1]`.
    lambda: f64,
    /// Reusable per-block level buffer for the batch kernel, allocated once here at
    /// construction (cached like `MorrisCounter`'s acceptance probability) instead of
    /// per `process_batch` call.
    level_scratch: Vec<u16>,
    name: String,
}

impl FpEstimator {
    /// Creates an estimator with its own tracker (of the backend kind selected by
    /// [`Params::tracker`]).
    pub fn new(params: Params) -> Self {
        let tracker = params.make_tracker();
        Self::with_tracker(params, &tracker)
    }

    /// Creates an estimator sharing `tracker` with an enclosing algorithm
    /// (used by the entropy estimator, which runs several moment estimators).
    pub fn with_tracker(params: Params, tracker: &StateTracker) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x0F9E_57A7);
        let levels = params.universe_levels();
        let reps = params.reps;
        let hashes = (0..reps).map(|_| PolyHash::new(2, &mut rng)).collect();
        let mut instances = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut row = Vec::with_capacity(levels);
            for level in 0..levels {
                let hint = (params.stream_len_hint >> level).max(1);
                row.push(SampleAndHold::new(&params, hint, tracker, rng.gen()));
            }
            instances.push(row);
        }
        let lambda = 0.5 + 0.5 * rng.gen::<f64>();
        Self {
            name: format!("FpEstimator(p={}, eps={})", params.p, params.eps),
            params,
            tracker: tracker.clone(),
            hashes,
            instances,
            levels,
            level_cutoffs: GeometricLevels::new(levels - 1),
            lambda,
            level_scratch: Vec::with_capacity(BATCH_BLOCK * reps),
        }
    }

    /// Number of universe-subsampling levels `L`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of repetitions `R`.
    pub fn reps(&self) -> usize {
        self.instances.len()
    }

    /// The randomized level-set boundary shift `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Serializes the post-construction state: every copy's dynamic state in
    /// `(repetition, level)` order.  The subsampling hashes, `λ`, and the level
    /// structure are deterministic functions of the parameters and re-derive on
    /// restore; the estimator itself holds no rng after construction.
    pub(crate) fn write_dynamic_state(&self, w: &mut SnapshotWriter) {
        for row in &self.instances {
            for inst in row {
                inst.write_dynamic_state(w);
            }
        }
    }

    /// Restores the state serialized by [`FpEstimator::write_dynamic_state`] into a
    /// freshly constructed estimator built from the same parameters.
    pub(crate) fn read_dynamic_state(
        &mut self,
        r: &mut SnapshotReader<'_>,
    ) -> Result<(), SnapshotError> {
        for row in &mut self.instances {
            for inst in row {
                inst.read_dynamic_state(r)?;
            }
        }
        Ok(())
    }

    /// The parameter set the estimator was built from (used by the entropy wrapper's
    /// checkpoint).
    pub(crate) fn params(&self) -> &Params {
        &self.params
    }

    /// Per-(repetition, level) sorted `f̂^p` values together with prefix sums of
    /// `f̂^p` and of `f̂·ln(f̂)`, computed once per query so that each level-set
    /// interval is a pair of binary searches.
    fn summaries(&self) -> Vec<Vec<Summary>> {
        let p = self.params.p;
        self.instances
            .iter()
            .map(|row| {
                row.iter()
                    .map(|inst| {
                        let mut pairs: Vec<(f64, f64)> = inst
                            .tracked_items()
                            .into_iter()
                            .map(|j| {
                                let est = inst.estimate(j);
                                (est.powf(p), est * est.max(1.0).ln())
                            })
                            .filter(|(v, _)| *v > 0.0)
                            .collect();
                        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                        let mut summary = Summary {
                            vals: Vec::with_capacity(pairs.len()),
                            prefix_fp: vec![0.0],
                            prefix_flnf: vec![0.0],
                        };
                        let (mut acc_fp, mut acc_flnf) = (0.0, 0.0);
                        for (fp, flnf) in pairs {
                            summary.vals.push(fp);
                            acc_fp += fp;
                            acc_flnf += flnf;
                            summary.prefix_fp.push(acc_fp);
                            summary.prefix_flnf.push(acc_flnf);
                        }
                        summary
                    })
                    .collect()
            })
            .collect()
    }

    /// The level-set estimates anchored at the moment guess `G`:
    /// `(Σ_i Ĉ_i,  Σ_i Ĉ_i weighted by f·ln f)`.
    fn total_for_guess(&self, guess: f64, summaries: &[Vec<Summary>]) -> (f64, f64) {
        let offset = self.params.level_offset();
        let lambda = self.lambda;
        let mut total_fp = 0.0;
        let mut total_flnf = 0.0;

        let mut add_interval = |level: usize, lo: f64, hi: f64, rate: f64| {
            let mut fp: Vec<f64> = Vec::with_capacity(summaries.len());
            let mut flnf: Vec<f64> = Vec::with_capacity(summaries.len());
            for row in summaries {
                let (a, b) = row[level].interval_sum(lo, hi);
                fp.push(a);
                flnf.push(b);
            }
            fp.sort_by(f64::total_cmp);
            flnf.sort_by(f64::total_cmp);
            total_fp += fp[fp.len() / 2] / rate;
            total_flnf += flnf[flnf.len() / 2] / rate;
        };

        // Overflow class [2λG, ∞), read from the unsampled level: if the guess is far
        // below the true moment, the dominant items land here and push the total above
        // the self-consistency window, forcing a larger guess.
        add_interval(0, 2.0 * lambda * guess, f64::INFINITY, 1.0);

        let mut i = 0usize;
        loop {
            let lo = lambda * guess / 2f64.powi(i as i32);
            if lo <= 0.5 && i > 0 {
                break;
            }
            let hi = 2.0 * lo;
            let level = if i > offset {
                (i - offset).min(self.levels - 1)
            } else {
                0
            };
            let rate = 2f64.powi(-(level as i32));
            add_interval(level, lo, hi, rate);
            i += 1;
            if i > 4 * self.levels + 64 {
                break;
            }
        }
        (total_fp, total_flnf)
    }

    /// Runs the guess loop and returns the `(F̂_p, Σ f̂·ln f̂)` pair of the accepted
    /// (self-consistent) guess, or of the closest guess if none is self-consistent.
    fn estimate_pair(&self) -> (f64, f64) {
        let m = self.tracker.epochs() as f64;
        if m < 1.0 {
            return (0.0, 0.0);
        }
        let summaries = self.summaries();
        let p = self.params.p;
        let j_lo = m.log2().floor() as i32;
        let j_hi = (p * m.log2()).ceil() as i32 + 1;

        let mut best: Option<(f64, (f64, f64))> = None;
        for j in j_lo..=j_hi {
            let guess = 2f64.powi(j);
            let (total_fp, total_flnf) = self.total_for_guess(guess, &summaries);
            if total_fp >= guess / 2.0 && total_fp < 2.0 * guess {
                return (total_fp.max(m), total_flnf);
            }
            if total_fp > 0.0 {
                let dist = (total_fp / guess).ln().abs();
                if best.map(|(d, _)| dist < d).unwrap_or(true) {
                    best = Some((dist, (total_fp, total_flnf)));
                }
            }
        }
        // No self-consistent guess (possible on tiny or adversarial inputs): fall back
        // to the nearest guess, flooring F̂_p at m (F_p ≥ m holds for every p ≥ 1).
        let (fp, flnf) = best.map(|(_, pair)| pair).unwrap_or((0.0, 0.0));
        (fp.max(m), flnf)
    }

    /// Estimate of `Σ_i f_i·ln(f_i)` from the same summaries (used by
    /// [`crate::EntropyFewState`]; equals `∂_p F_p` at `p = 1`).
    pub fn estimate_f_ln_f(&self) -> f64 {
        self.estimate_pair().1.max(0.0)
    }
}

/// Sorted `f̂^p` values of one summary with prefix sums of `f̂^p` and `f̂·ln f̂`.
#[derive(Debug, Clone)]
struct Summary {
    vals: Vec<f64>,
    prefix_fp: Vec<f64>,
    prefix_flnf: Vec<f64>,
}

impl Summary {
    /// Sums of `f̂^p` and `f̂·ln f̂` over tracked items whose `f̂^p` lies in `[lo, hi)`.
    fn interval_sum(&self, lo: f64, hi: f64) -> (f64, f64) {
        let lo_idx = self.vals.partition_point(|&v| v < lo);
        let hi_idx = self.vals.partition_point(|&v| v < hi);
        (
            self.prefix_fp[hi_idx] - self.prefix_fp[lo_idx],
            self.prefix_flnf[hi_idx] - self.prefix_flnf[lo_idx],
        )
    }
}

impl StreamAlgorithm for FpEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        for (row, hash) in self.instances.iter_mut().zip(&self.hashes) {
            self.tracker.record_reads(1);
            // One integer compare chain instead of an f64 division + log2 per item;
            // equivalent bit-for-bit to ⌊−log2(max(hash_unit, MIN_POSITIVE))⌋ clamped
            // to the level range (the hashing tests pin the equivalence).
            let deepest = self.level_cutoffs.deepest(hash.hash_u64(item));
            for inst in row.iter_mut().take(deepest + 1) {
                inst.process_item(item);
            }
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Blocked batch kernel (the shared `process_batch_leveled` harness): per
    /// block, the universe-subsampling levels of every `(item, repetition)` pair are
    /// precomputed in one tight pass — the item folded once and reused across the
    /// repetitions' hashes, with the per-repetition read charge accumulated — then
    /// the updates dispatch into the per-level `SampleAndHold` copies.  The
    /// subsampling decision is a pure function of the item, so precomputing it
    /// reorders nothing (pinned by the batch-law tests).
    fn process_batch(&mut self, items: &[u64]) {
        let Self {
            instances,
            hashes,
            level_cutoffs,
            tracker,
            level_scratch,
            ..
        } = self;
        process_batch_leveled(
            tracker,
            instances,
            items,
            level_scratch,
            |block, deepest, reads| {
                for &item in block {
                    let folded = item % MERSENNE_61;
                    for hash in hashes.iter() {
                        *reads += 1;
                        deepest.push(level_cutoffs.deepest(hash.hash_u64_folded(folded)) as u16);
                    }
                }
            },
        );
    }
}

impl_queryable!(FpEstimator: [moment]);

impl Snapshot for FpEstimator {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, the parameter set, then the per-copy dynamic state.
    /// Defined for instances that own their tracker ([`FpEstimator::new`]); the
    /// entropy wrapper checkpoints through its own implementation.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        self.params.write_snapshot(&mut w);
        self.write_dynamic_state(&mut w);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let params = Params::read_snapshot(&mut r)?.with_tracker(state.kind);
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = FpEstimator::with_tracker(params, &tracker);
        alg.read_dynamic_state(&mut r)?;
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl MomentEstimator for FpEstimator {
    fn p(&self) -> f64 {
        self.params.p
    }

    /// The `(1±ε)`-approximation of `F_p` (Theorem 1.3).
    fn estimate_moment(&self) -> f64 {
        let m = self.tracker.epochs() as f64;
        if m < 1.0 {
            return 0.0;
        }
        self.estimate_pair().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::planted::{planted_stream, PlantedSpec};
    use fsc_streamgen::uniform::permutation_stream;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    fn relative_error(est: f64, truth: f64) -> f64 {
        (est - truth).abs() / truth
    }

    #[test]
    fn batch_scratch_is_hoisted_to_construction() {
        // The blocked kernel's per-(item, repetition) level buffer is allocated once
        // at construction and reused verbatim across process_batch calls: same
        // backing pointer, no per-call reallocation.  (The level *cutoffs* were
        // already construction-cached via `GeometricLevels`; this pins the remaining
        // per-call recomputation, the scratch allocation.)
        let n = 1 << 10;
        let stream = zipf_stream(n, 4 * n, 1.2, 11);
        let mut est = FpEstimator::new(Params::new(2.0, 0.3, n, 4 * n).with_seed(5));
        assert!(
            est.level_scratch.capacity() > 0,
            "scratch allocated at construction"
        );
        let before = est.level_scratch.as_ptr();
        let capacity = est.level_scratch.capacity();
        est.process_batch(&stream[..2 * n]);
        est.process_batch(&stream[2 * n..]);
        assert_eq!(est.level_scratch.as_ptr(), before, "scratch buffer reused");
        assert_eq!(
            est.level_scratch.capacity(),
            capacity,
            "no per-call reallocation"
        );
    }

    #[test]
    fn f2_on_a_skewed_zipf_stream() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.3, 31);
        let truth = FrequencyVector::from_stream(&stream).fp(2.0);
        let mut est = FpEstimator::new(Params::new(2.0, 0.2, n, m).with_seed(7));
        est.process_stream(&stream);
        let rel = relative_error(est.estimate_moment(), truth);
        assert!(rel < 0.35, "relative error {rel}");
        assert_eq!(est.p(), 2.0);
    }

    #[test]
    fn f2_on_a_permutation_stream_equals_n() {
        // No heavy hitters at all: the whole moment lives in the singleton level set,
        // which is only visible through the subsampled reservoirs.
        let n = 1 << 14;
        let stream = permutation_stream(n, 5);
        let mut est = FpEstimator::new(Params::new(2.0, 0.25, n, n).with_seed(3));
        est.process_stream(&stream);
        let rel = relative_error(est.estimate_moment(), n as f64);
        assert!(rel < 0.3, "estimate {} vs n {n}", est.estimate_moment());
    }

    #[test]
    fn f2_with_a_dominant_planted_item() {
        let n = 1 << 13;
        let spec = PlantedSpec {
            universe: n,
            background_updates: 20_000,
            planted: vec![3_000],
            seed: 2,
        };
        let stream = planted_stream(&spec);
        let truth = FrequencyVector::from_stream(&stream).fp(2.0);
        let mut est = FpEstimator::new(Params::new(2.0, 0.2, n, stream.len()).with_seed(11));
        est.process_stream(&stream);
        let rel = relative_error(est.estimate_moment(), truth);
        assert!(rel < 0.3, "relative error {rel}");
    }

    #[test]
    fn f1_recovers_the_stream_length() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.1, 13);
        let mut est = FpEstimator::new(Params::new(1.0, 0.25, n, m).with_seed(23));
        est.process_stream(&stream);
        let rel = relative_error(est.estimate_moment(), m as f64);
        assert!(rel < 0.3, "estimate {} vs m {m}", est.estimate_moment());
    }

    #[test]
    fn f3_on_a_skewed_stream() {
        let n = 1 << 12;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.4, 41);
        let truth = FrequencyVector::from_stream(&stream).fp(3.0);
        let mut est = FpEstimator::new(Params::new(3.0, 0.25, n, m).with_seed(5));
        est.process_stream(&stream);
        let rel = relative_error(est.estimate_moment(), truth);
        assert!(rel < 0.4, "relative error {rel}");
    }

    #[test]
    fn state_changes_are_sublinear_and_structure_is_logarithmic() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.0, 19);
        let mut est = FpEstimator::new(Params::new(2.0, 0.3, n, m).with_seed(2));
        est.process_stream(&stream);
        assert!(est.levels() <= 20);
        assert_eq!(est.reps(), 3);
        assert!(est.lambda() >= 0.5 && est.lambda() <= 1.0);
        let r = est.report();
        assert_eq!(r.epochs as usize, m);
        assert!(
            (r.state_changes as f64) < 0.95 * m as f64,
            "state changes {} vs m {m}",
            r.state_changes
        );
    }

    #[test]
    fn empty_stream_reports_zero() {
        let est = FpEstimator::new(Params::new(2.0, 0.3, 1 << 10, 1 << 10));
        assert_eq!(est.estimate_moment(), 0.0);
    }
}
