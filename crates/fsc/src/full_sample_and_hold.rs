//! `FullSampleAndHold` — Algorithm 2 of the paper.
//!
//! `SampleAndHold` (Algorithm 1) needs the moment assumption `F_p = Õ_ε(n)`.
//! Algorithm 2 removes it: it runs `R × Y` copies of `SampleAndHold`, where copy
//! `(r, x)` processes the nested substream `J^{(r)}_x ⊆ [m]` obtained by keeping each
//! *stream position* independently with probability `min(1, 2^{1−x})`.  For every item,
//! some level `x` has a substream whose moment is small enough for Algorithm 1 to work,
//! and because `SampleAndHold` never overestimates, the per-item estimates from the
//! different levels (rescaled by the inverse sampling rate) can simply be combined by a
//! maximum (Section 1.3, "Removing moment assumptions").
//!
//! Practical deviation (documented in `DESIGN.md`): a level's rescaled estimate only
//! participates in the maximum once its raw (pre-rescaling) median count reaches a small
//! floor (`MIN_LEVEL_COUNT`), which suppresses the variance of multiplying a count of
//! one or two by a large factor; level `x = 0` (the full stream) always participates.

use fsc_counters::hashing::UnitLevels;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, FrequencyEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::Params;
use crate::sample_and_hold::{process_batch_leveled, SampleAndHold, BATCH_BLOCK};

/// Stable checkpoint-header id of [`FullSampleAndHold`].
const SNAPSHOT_ID: &str = "full_sample_and_hold";

/// Minimum raw median count a subsampled level must reach before its rescaled estimate
/// is trusted (level 0 is always trusted).
const MIN_LEVEL_COUNT: f64 = 4.0;

/// Algorithm 2: `R` repetitions × `Y` nested stream-subsampling levels of Algorithm 1.
#[derive(Debug)]
pub struct FullSampleAndHold {
    params: Params,
    tracker: StateTracker,
    rng: StdRng,
    /// `instances[r][x]` processes the substream kept with probability `2^{-x}`.
    instances: Vec<Vec<SampleAndHold>>,
    levels: usize,
    /// Precomputed cutoffs turning a uniform draw into its deepest nested level —
    /// bit-identical to the former per-update `⌊−log2(u)⌋` (see [`UnitLevels`]).
    level_cutoffs: UnitLevels,
    /// Reusable per-block level buffer for the batch kernel, allocated once here at
    /// construction instead of per `process_batch` call.
    level_scratch: Vec<u16>,
    name: String,
}

impl FullSampleAndHold {
    /// Creates an instance sharing `tracker` with an enclosing algorithm.
    pub fn new(params: &Params, tracker: &StateTracker, seed: u64) -> Self {
        let levels = params.stream_levels();
        let reps = params.reps;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut instances = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut row = Vec::with_capacity(levels);
            for x in 0..levels {
                let hint = (params.stream_len_hint >> x).max(1);
                row.push(SampleAndHold::new(params, hint, tracker, rng.gen()));
            }
            instances.push(row);
        }
        Self {
            name: format!(
                "FullSampleAndHold(p={}, eps={}, R={}, Y={levels})",
                params.p, params.eps, reps
            ),
            params: params.clone(),
            tracker: tracker.clone(),
            rng,
            instances,
            levels,
            level_cutoffs: UnitLevels::new(levels - 1),
            level_scratch: Vec::with_capacity(BATCH_BLOCK * reps),
        }
    }

    /// Creates a standalone instance with its own tracker (of the backend kind selected
    /// by [`Params::tracker`]).
    pub fn standalone(params: &Params) -> Self {
        let tracker = params.make_tracker();
        let seed = params.seed;
        Self::new(params, &tracker, seed)
    }

    /// Number of stream-subsampling levels `Y`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of repetitions `R`.
    pub fn reps(&self) -> usize {
        self.instances.len()
    }

    /// Serializes the post-construction state: the ensemble's own rng plus every
    /// copy's dynamic state, in `(repetition, level)` order.  Structure (level count,
    /// per-copy sizing) re-derives from the parameters on restore.
    pub(crate) fn write_dynamic_state(&self, w: &mut SnapshotWriter) {
        for word in self.rng.state() {
            w.u64(word);
        }
        for row in &self.instances {
            for inst in row {
                inst.write_dynamic_state(w);
            }
        }
    }

    /// Restores the state serialized by [`FullSampleAndHold::write_dynamic_state`]
    /// into a freshly constructed ensemble (same parameters and construction seed, so
    /// the copies' tracked containers sit at the same addresses).
    pub(crate) fn read_dynamic_state(
        &mut self,
        r: &mut SnapshotReader<'_>,
    ) -> Result<(), SnapshotError> {
        self.rng = StdRng::from_state([r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
        for row in &mut self.instances {
            for inst in row {
                inst.read_dynamic_state(r)?;
            }
        }
        Ok(())
    }

    /// Median estimate across repetitions of the raw (unrescaled) count at level `x`.
    fn level_median(&self, item: u64, x: usize) -> f64 {
        let mut estimates: Vec<f64> = self
            .instances
            .iter()
            .map(|row| row[x].estimate(item))
            .collect();
        estimates.sort_by(f64::total_cmp);
        estimates[estimates.len() / 2]
    }
}

impl StreamAlgorithm for FullSampleAndHold {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        for row in &mut self.instances {
            // One uniform draw determines the deepest nested level this update
            // reaches; the precomputed cutoffs reproduce ⌊−log2(u)⌋ clamped to the
            // level range bit-for-bit (pinned by the hashing equivalence tests).
            let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let deepest = self.level_cutoffs.deepest(u);
            for level_row in row.iter_mut().take(deepest + 1) {
                level_row.process_item(item);
            }
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Blocked batch kernel (the shared `process_batch_leveled` harness): per
    /// block, all level draws are made up front — same rng, same
    /// `(item, repetition)` order as the per-item path, so the random sequence is
    /// untouched — then the updates dispatch into the per-level `SampleAndHold`
    /// copies with read charges accumulated and flushed once per batch.
    fn process_batch(&mut self, items: &[u64]) {
        let Self {
            instances,
            rng,
            level_cutoffs,
            tracker,
            level_scratch,
            ..
        } = self;
        let reps = instances.len();
        process_batch_leveled(
            tracker,
            instances,
            items,
            level_scratch,
            |block, deepest, _reads| {
                for _ in block {
                    for _ in 0..reps {
                        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                        deepest.push(level_cutoffs.deepest(u) as u16);
                    }
                }
            },
        );
    }
}

impl_queryable!(FullSampleAndHold: [frequency]);

impl Snapshot for FullSampleAndHold {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, the parameter set, then the ensemble dynamic state.
    /// Defined for standalone-constructed instances (construction seed =
    /// [`Params::seed`], own tracker), as produced by
    /// [`FullSampleAndHold::standalone`].
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        self.params.write_snapshot(&mut w);
        self.write_dynamic_state(&mut w);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let params = Params::read_snapshot(&mut r)?.with_tracker(state.kind);
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = FullSampleAndHold::new(&params, &tracker, params.seed);
        alg.read_dynamic_state(&mut r)?;
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl FrequencyEstimator for FullSampleAndHold {
    /// Combines the per-level estimates.  Estimates from `SampleAndHold` are
    /// (approximate) underestimates, so the paper combines levels by a maximum
    /// (Section 1.3).  With the practical profile's coarser Morris counters a plain
    /// maximum over `Y ≈ log m` levels would systematically pick up the largest upward
    /// fluctuation, so the unsampled level's estimate is only overridden when a deeper
    /// level's *lower confidence bound* (two standard deviations of Poisson subsampling
    /// plus Morris noise below its rescaled median) still exceeds it — strong evidence
    /// that the unsampled level undercounted.
    fn estimate(&self, item: u64) -> f64 {
        let morris_sigma = (self.params.morris_growth() / 2.0).sqrt();
        let mut best = self.level_median(item, 0);
        for x in 1..self.levels {
            let raw = self.level_median(item, x);
            if raw < MIN_LEVEL_COUNT {
                continue;
            }
            let sigma = raw * morris_sigma + raw.sqrt();
            let lower_bound = ((raw - 2.0 * sigma).max(0.0)) * (1u64 << x) as f64;
            if lower_bound > best {
                best = lower_bound;
            }
        }
        best
    }

    fn tracked_items(&self) -> Vec<u64> {
        let mut items: Vec<u64> = self
            .instances
            .iter()
            .flat_map(|row| row.iter().flat_map(|inst| inst.tracked_items()))
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::planted::{planted_stream, PlantedSpec};
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn structure_matches_parameters() {
        let params = Params::new(2.0, 0.3, 1 << 10, 1 << 12).with_reps(3);
        let alg = FullSampleAndHold::standalone(&params);
        assert_eq!(alg.reps(), 3);
        assert_eq!(alg.levels(), 13);
        assert!(alg.name().contains("FullSampleAndHold"));
    }

    #[test]
    fn batch_scratch_is_hoisted_to_construction() {
        // Same pin as FpEstimator's: the blocked kernel's level buffer is allocated
        // once at construction and its backing pointer survives repeated
        // process_batch calls unchanged.
        let n = 1 << 10;
        let stream = zipf_stream(n, 4 * n, 1.2, 13);
        let params = Params::new(2.0, 0.3, n, 4 * n).with_seed(9);
        let mut alg = FullSampleAndHold::standalone(&params);
        assert!(
            alg.level_scratch.capacity() > 0,
            "scratch allocated at construction"
        );
        let before = alg.level_scratch.as_ptr();
        let capacity = alg.level_scratch.capacity();
        alg.process_batch(&stream[..2 * n]);
        alg.process_batch(&stream[2 * n..]);
        assert_eq!(alg.level_scratch.as_ptr(), before, "scratch buffer reused");
        assert_eq!(
            alg.level_scratch.capacity(),
            capacity,
            "no per-call reallocation"
        );
    }

    #[test]
    fn heavy_hitter_estimates_survive_without_the_moment_assumption() {
        // A stream whose Fp is much larger than n: a single item of huge frequency.
        // Algorithm 1 alone would violate its F_p = O(n polylog) assumption; the
        // stream-subsampled levels still estimate the heavy item well.
        let n = 1 << 12;
        let spec = PlantedSpec {
            universe: n,
            background_updates: 2_000,
            planted: vec![30_000],
            seed: 1,
        };
        let stream = planted_stream(&spec);
        let params = Params::new(2.0, 0.25, n, stream.len()).with_seed(3);
        let mut alg = FullSampleAndHold::standalone(&params);
        alg.process_stream(&stream);
        let est = alg.estimate(0);
        let rel = (est - 30_000.0).abs() / 30_000.0;
        assert!(rel < 0.3, "estimate {est}, relative error {rel}");
    }

    #[test]
    fn estimates_on_zipf_streams_match_the_top_frequencies() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.3, 21);
        let truth = FrequencyVector::from_stream(&stream);
        let params = Params::new(2.0, 0.25, n, m).with_seed(5);
        let mut alg = FullSampleAndHold::standalone(&params);
        alg.process_stream(&stream);
        for (item, f) in truth.top_k(3) {
            let est = alg.estimate(item);
            let rel = (est - f as f64).abs() / f as f64;
            assert!(rel < 0.35, "item {item}: est {est} true {f}");
        }
        assert_eq!(alg.estimate(u64::MAX - 1), 0.0);
    }

    #[test]
    fn state_changes_remain_sublinear() {
        // A single repetition isolates the per-copy behaviour (with R copies running in
        // parallel on a short stream, the one-change-per-epoch metric saturates even
        // though each copy is write-frugal; the scaling experiment F1 shows the slope).
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.0, 2);
        let params = Params::new(2.0, 0.35, n, m).with_seed(11).with_reps(1);
        let mut alg = FullSampleAndHold::standalone(&params);
        alg.process_stream(&stream);
        let r = alg.report();
        assert_eq!(r.epochs as usize, m);
        assert!(
            (r.state_changes as f64) < 0.75 * m as f64,
            "state changes {} vs m {m}",
            r.state_changes
        );
        // Word writes include the one-off reservoir initialisation of every level, so
        // the bound is looser than the per-epoch one but still far below the
        // ~2 tracked writes per update a write-per-update ensemble would make.
        assert!((r.word_writes as f64) < 2.5 * m as f64);
    }
}
