//! Shared parameters of the paper's algorithms.
//!
//! The paper's constants (e.g. `γ = 2^{20p}`, `κ = Θ(log^{11+3p}(mn)/ε^{4+4p})`) are
//! chosen to make the proofs go through, not to be run; plugged in literally they exceed
//! the stream length for every feasible input.  [`Params`] therefore exposes two
//! profiles with the *same asymptotic form* but different constants:
//!
//! * [`Profile::Practical`] (default) — small constants; used by every experiment.
//! * [`Profile::PaperFaithful`] — the paper's polylog powers and the randomised counter
//!   budget of Algorithm 1, for reference; only feasible for tiny inputs.
//!
//! Every derived quantity is documented with the paper expression it instantiates.

use fsc_state::{SnapshotError, SnapshotReader, SnapshotWriter, StateTracker, TrackerKind};

/// Constant-factor profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small constants with the paper's asymptotic form (default).
    Practical,
    /// The paper's constants (γ = 2^{20p}, log^{11+3p} factors, randomised budget).
    PaperFaithful,
}

/// Parameters shared by `SampleAndHold`, `FullSampleAndHold`, the heavy-hitter
/// algorithm, and the `F_p` estimator.
#[derive(Debug, Clone)]
pub struct Params {
    /// Moment order `p ≥ 1` (use [`crate::FpSmallEstimator`] for `p < 1`).
    pub p: f64,
    /// Target relative accuracy `ε ∈ (0, 1)`.
    pub eps: f64,
    /// Target failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// Universe size `n` (an upper bound is fine).
    pub universe: usize,
    /// A constant-factor upper bound on the stream length `m`.
    pub stream_len_hint: usize,
    /// Number of independent repetitions `R` used for median boosting.
    pub reps: usize,
    /// Constant-factor profile.
    pub profile: Profile,
    /// Seed for all internal randomness.
    pub seed: u64,
    /// Which state-tracking backend the algorithm's tracker uses (default:
    /// [`TrackerKind::Full`], the exact accounting used by all recorded experiments;
    /// [`TrackerKind::Lean`] for answers-only runs that need `Send`able algorithms
    /// and a near-zero-cost update path).
    pub tracker: TrackerKind,
}

impl Params {
    /// Practical-profile parameters with `δ = 1/3` (the paper's constant success
    /// probability) and `R = 3` repetitions.
    pub fn new(p: f64, eps: f64, universe: usize, stream_len_hint: usize) -> Self {
        assert!(
            p >= 1.0,
            "Params is for p ≥ 1; use FpSmallEstimator for p < 1"
        );
        assert!(eps > 0.0 && eps < 1.0);
        assert!(universe > 0 && stream_len_hint > 0);
        Self {
            p,
            eps,
            delta: 1.0 / 3.0,
            universe,
            stream_len_hint,
            reps: 3,
            profile: Profile::Practical,
            seed: 0xF5C_5EED,
            tracker: TrackerKind::Full,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different number of repetitions.
    pub fn with_reps(mut self, reps: usize) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Returns a copy using the paper-faithful constants.
    pub fn paper_faithful(mut self) -> Self {
        self.profile = Profile::PaperFaithful;
        self
    }

    /// Returns a copy with a different tracker backend kind.
    pub fn with_tracker(mut self, tracker: TrackerKind) -> Self {
        self.tracker = tracker;
        self
    }

    /// Returns a copy using the lean (atomic, `Send + Sync`, answers-only) tracker
    /// backend — see [`fsc_state::LeanTracker`] for what it does and does not count.
    pub fn lean(self) -> Self {
        self.with_tracker(TrackerKind::Lean)
    }

    /// Creates the state tracker this parameter set asks for.  Every algorithm
    /// constructor that owns its tracker goes through this, so backend selection is a
    /// pure `Params` concern and algorithm update paths stay backend-agnostic.
    pub fn make_tracker(&self) -> StateTracker {
        StateTracker::of_kind(self.tracker)
    }

    /// Serializes every field into a checkpoint (used by the `Snapshot`
    /// implementations of the parameterized algorithms; the constructors are
    /// deterministic functions of a `Params`, so serializing it is what lets restore
    /// re-derive hash functions, level structure, and budgets instead of storing them).
    pub(crate) fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.f64(self.p);
        w.f64(self.eps);
        w.f64(self.delta);
        w.usize(self.universe);
        w.usize(self.stream_len_hint);
        w.usize(self.reps);
        w.u8(match self.profile {
            Profile::Practical => 0,
            Profile::PaperFaithful => 1,
        });
        w.u64(self.seed);
        // Serialized for Params-codec completeness; restore paths normalise it to the
        // checkpoint's TrackerState kind (standalone construction keeps them equal).
        w.u8(self.tracker.tag());
    }

    /// Restores a parameter set written by [`Params::write_snapshot`], re-validating
    /// the invariants the constructor asserts (so corrupt bytes surface as a typed
    /// error instead of a panic inside a derived-quantity computation).
    pub(crate) fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let p = r.f64()?;
        let eps = r.f64()?;
        let delta = r.f64()?;
        let universe = r.usize()?;
        let stream_len_hint = r.usize()?;
        let reps = r.usize()?;
        let profile = match r.u8()? {
            0 => Profile::Practical,
            1 => Profile::PaperFaithful,
            _ => return Err(SnapshotError::Corrupt("profile tag")),
        };
        let seed = r.u64()?;
        let tracker =
            TrackerKind::from_tag(r.u8()?).ok_or(SnapshotError::Corrupt("tracker kind tag"))?;
        let valid = p.is_finite()
            && p >= 1.0
            && eps > 0.0
            && eps < 1.0
            && delta > 0.0
            && delta < 1.0
            && universe > 0
            && stream_len_hint > 0
            && reps >= 1
            // Structure sizes derive from these; keep corrupt bytes from requesting
            // absurd allocations during the deterministic reconstruction.
            && universe <= 1 << 48
            && stream_len_hint <= 1 << 48
            && reps <= 1 << 10;
        if !valid {
            return Err(SnapshotError::Corrupt("parameter range"));
        }
        Ok(Self {
            p,
            eps,
            delta,
            universe,
            stream_len_hint,
            reps,
            profile,
            seed,
            tracker,
        })
    }

    /// `ln(nm + 2)`, the log factor every bound is expressed in.
    pub fn log_nm(&self) -> f64 {
        ((self.universe as f64) * (self.stream_len_hint as f64) + 2.0).ln()
    }

    /// Per-update sampling probability `ϱ` of `SampleAndHold` (Algorithm 1, line 3):
    /// paper `ϱ = γ²·n^{1−1/p}·log⁴(nm)/(ε²·m)`; practical
    /// `ϱ = n^{1−1/p}·ln(nm)/(ε·m)`, clamped to `[0, 1]`.
    ///
    /// `stream_len` is the length of the (sub)stream the instance actually processes.
    pub fn sample_prob(&self, stream_len: usize) -> f64 {
        let n = self.effective_n(stream_len) as f64;
        let m = stream_len.max(1) as f64;
        let expected_samples = match self.profile {
            // Floored at 4×survivor_target: the paper's γ²·log⁴/ε² constants guarantee
            // that substreams of polylog(nm)/ε² size are sampled wholesale (needed so
            // that subsampled level-set members at least reach the reservoir); the
            // floor is the practical-scale equivalent and is itself only polylog/ε².
            Profile::Practical => (n.powf(1.0 - 1.0 / self.p) * self.log_nm() / self.eps)
                .max(4.0 * self.survivor_target()),
            Profile::PaperFaithful => {
                let gamma = 2f64.powf(20.0 * self.p).min(1e12);
                gamma * gamma * n.powf(1.0 - 1.0 / self.p) * self.log_nm().powi(4)
                    / (self.eps * self.eps)
            }
        };
        (expected_samples / m).clamp(0.0, 1.0)
    }

    /// The paper redefines `n` to be `min(n, m)` when the stream is shorter than the
    /// universe (Algorithm 1, lines 2–5).
    pub fn effective_n(&self, stream_len: usize) -> usize {
        self.universe.min(stream_len.max(1))
    }

    /// Target number of level-set members that should survive universe subsampling in
    /// the `F_p` estimator (practical stand-in for the paper's `Θ(log(nm)/ε²)` with
    /// `γ`-sized constants): `2·ln(nm)/ε²`.
    pub fn survivor_target(&self) -> f64 {
        (2.0 * self.log_nm() / (self.eps * self.eps)).max(8.0)
    }

    /// Number of reservoir slots `κ` (Algorithm 1, lines 1, 3, 5):
    /// paper `Θ(log^{11+3p}(mn)/ε^{4+4p})` for `p ∈ [1,2)` and
    /// `Θ(n^{1−2/p}·log^{11+3p}(mn)/ε^{4+4p})` for `p ≥ 2`; practical
    /// `4 × survivor_target`, so that the reservoir can hold every member of a
    /// subsampled level set (the paper guarantees the same through its much larger
    /// polylog powers).
    pub fn kappa(&self, stream_len: usize) -> usize {
        let n = self.effective_n(stream_len) as f64;
        let log = self.log_nm();
        let value = match self.profile {
            Profile::Practical => 4.0 * self.survivor_target(),
            Profile::PaperFaithful => {
                let base = if self.p >= 2.0 {
                    n.powf(1.0 - 2.0 / self.p)
                } else {
                    1.0
                };
                base * log.powf(11.0 + 3.0 * self.p) / self.eps.powf(4.0 + 4.0 * self.p)
            }
        };
        (value.ceil() as usize).clamp(16, 1 << 22)
    }

    /// Counter budget `k` (Algorithm 1, line 7).  The paper draws
    /// `k ~ Uni[200pκ·log²(nm), 202pκ·log²(nm)]` to decorrelate maintenance times from
    /// the adversary; the practical profile uses the deterministic value
    /// `κ + n^{max(0, 1−2/p)}·ln(nm)/ε` (the extra term is the `p > 2` space allowance
    /// of Theorems 1.1/1.3).
    pub fn counter_budget(&self, stream_len: usize, uniform01: f64) -> usize {
        let kappa = self.kappa(stream_len) as f64;
        match self.profile {
            Profile::Practical => {
                let n = self.effective_n(stream_len) as f64;
                let extra = n.powf((1.0 - 2.0 / self.p).max(0.0)) * self.log_nm() / self.eps;
                (kappa + extra).ceil() as usize
            }
            Profile::PaperFaithful => {
                let log2 = self.log_nm().powi(2);
                let lo = 200.0 * self.p * kappa * log2;
                let hi = 202.0 * self.p * kappa * log2;
                (lo + uniform01.clamp(0.0, 1.0) * (hi - lo)).ceil() as usize
            }
        }
    }

    /// Growth parameter of the per-item Morris counters.  The paper asks for
    /// multiplicative accuracy `1 + O(ε/log(nm))`; the practical profile uses
    /// `a = (ε/2p)²`, i.e. a per-counter relative error of about `ε/(2p)` (a frequency
    /// error of `ε/p` becomes an `ε` error after raising to the `p`-th power), with the
    /// constant failure probability boosted by the `R` repetitions.
    pub fn morris_growth(&self) -> f64 {
        match self.profile {
            Profile::Practical => {
                let acc = self.eps / (2.0 * self.p.max(1.0));
                (acc * acc).clamp(1e-6, 1.0)
            }
            Profile::PaperFaithful => {
                let acc = self.eps / (8.0 * self.log_nm());
                (2.0 * acc * acc * self.delta).clamp(1e-9, 1.0)
            }
        }
    }

    /// Number of stream-subsampling levels `Y = O(log m)` of `FullSampleAndHold`
    /// (Algorithm 2, line 1).
    pub fn stream_levels(&self) -> usize {
        ((self.stream_len_hint.max(2) as f64).log2().ceil() as usize + 1).max(2)
    }

    /// Number of universe-subsampling levels `L = O(p·log(nm))` of Algorithm 3.
    /// Levels beyond `log2(m) + 1` keep (in expectation) less than one item of any
    /// frequency class, so the practical profile stops there.
    pub fn universe_levels(&self) -> usize {
        ((self.stream_len_hint.max(2) as f64).log2().ceil() as usize + 1).max(2)
    }

    /// The level-set → subsampling-level offset `⌊log(γ²·log(nm)/ε²)⌋` of Algorithm 3
    /// (line 12); practical `⌊log2(survivor_target)⌋`.  Level set `i` is estimated from
    /// universe-subsampling level `ℓ = max(1, i − offset)`, so that in expectation about
    /// `survivor_target` members of the level set survive — few enough to fit in the
    /// reservoir (`κ = 4·survivor_target`), many enough to concentrate.
    pub fn level_offset(&self) -> usize {
        let value = match self.profile {
            Profile::Practical => self.survivor_target(),
            Profile::PaperFaithful => {
                let gamma = 2f64.powf(20.0 * self.p).min(1e12);
                gamma * gamma * self.log_nm() / (self.eps * self.eps)
            }
        };
        value.max(1.0).log2().floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Params {
        Params::new(2.0, 0.1, 1 << 16, 1 << 18)
    }

    #[test]
    fn sample_probability_scales_as_n_to_one_minus_one_over_p() {
        let small = Params::new(2.0, 0.1, 1 << 10, 1 << 12);
        let large = Params::new(2.0, 0.1, 1 << 16, 1 << 18);
        let ratio = (large.sample_prob(1 << 18) * (1u64 << 18) as f64)
            / (small.sample_prob(1 << 12) * (1u64 << 12) as f64);
        // n grows by 2^6, so n^{1/2} grows by 2^3 = 8 (up to the log factor).
        assert!(ratio > 6.0 && ratio < 16.0, "ratio {ratio}");
    }

    #[test]
    fn sample_probability_is_a_probability() {
        for p in [1.0, 1.5, 2.0, 3.0] {
            for n in [16usize, 1 << 10, 1 << 20] {
                let params = Params::new(p, 0.2, n, 4 * n);
                let prob = params.sample_prob(4 * n);
                assert!((0.0..=1.0).contains(&prob), "p={p} n={n} prob={prob}");
            }
        }
    }

    #[test]
    fn space_budgets_are_sublinear_for_large_p_and_polylog_for_small_p() {
        let p3 = Params::new(3.0, 0.1, 1 << 18, 1 << 20);
        let p15 = Params::new(1.5, 0.1, 1 << 18, 1 << 20);
        let m = 1usize << 20;
        assert!(
            p3.counter_budget(m, 0.5) > p15.counter_budget(m, 0.5),
            "p>2 needs the extra n^{{1-2/p}} counter allowance"
        );
        assert!(
            p15.counter_budget(m, 0.5) < 100_000,
            "p<2 space should be polylog-sized"
        );
        assert!(
            p3.counter_budget(m, 0.5) < (1 << 18) / 2,
            "space must stay sublinear in n"
        );
        assert!(p15.kappa(m) >= 16);
        assert!(p3.kappa(m) >= p3.survivor_target() as usize);
    }

    #[test]
    fn paper_faithful_constants_are_larger() {
        let practical = base();
        let faithful = base().paper_faithful();
        let m = 1 << 18;
        assert!(faithful.kappa(m) >= practical.kappa(m));
        assert!(faithful.sample_prob(m) >= practical.sample_prob(m));
        assert!(faithful.morris_growth() <= practical.morris_growth());
        assert!(
            faithful.counter_budget(m, 0.5) >= practical.counter_budget(m, 0.5),
            "paper budget should dominate"
        );
    }

    #[test]
    fn derived_levels_are_logarithmic() {
        let params = base();
        assert_eq!(params.stream_levels(), 19);
        assert_eq!(params.universe_levels(), 19);
        assert!(params.level_offset() >= 8);
        assert!(params.level_offset() <= 24);
    }

    #[test]
    fn builder_methods_apply() {
        let p = base().with_seed(7).with_reps(5);
        assert_eq!(p.seed, 7);
        assert_eq!(p.reps, 5);
        assert_eq!(p.profile, Profile::Practical);
        assert_eq!(p.tracker, TrackerKind::Full);
    }

    #[test]
    fn tracker_kind_selection_flows_into_make_tracker() {
        assert_eq!(base().make_tracker().kind(), TrackerKind::Full);
        assert_eq!(base().lean().make_tracker().kind(), TrackerKind::Lean);
        assert_eq!(
            base()
                .with_tracker(TrackerKind::FullAddressTracked)
                .make_tracker()
                .kind(),
            TrackerKind::FullAddressTracked
        );
    }

    #[test]
    #[should_panic]
    fn p_below_one_is_rejected() {
        let _ = Params::new(0.5, 0.1, 10, 10);
    }
}
