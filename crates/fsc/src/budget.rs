//! A hard state-change budget wrapper, used by the lower-bound experiments.
//!
//! Theorems 1.2 and 1.4 show that *any* algorithm whose internal state changes fewer
//! than `~n^{1−1/p}/2` times cannot solve `L_p` heavy hitters or `(2−ε)`-approximate
//! `F_p` estimation.  [`BudgetedAlgorithm`] turns that statement into an executable
//! experiment: it wraps an arbitrary [`StreamAlgorithm`] and simply stops forwarding
//! updates once the wrapped algorithm has spent its state-change budget (reads are
//! still free).  Experiment F5 feeds the adversarial stream pairs of
//! [`fsc_streamgen::lower_bound`] to budgeted estimators and measures how often they
//! distinguish the pair as the budget crosses the `n^{1−1/p}` threshold.

use fsc_state::{FrequencyEstimator, MomentEstimator, StateTracker, StreamAlgorithm};

/// Wraps an algorithm and enforces a hard cap on its number of state changes.
#[derive(Debug)]
pub struct BudgetedAlgorithm<A: StreamAlgorithm> {
    inner: A,
    budget: u64,
    dropped_updates: u64,
    name: String,
}

impl<A: StreamAlgorithm> BudgetedAlgorithm<A> {
    /// Wraps `inner`, allowing it at most `budget` state changes.
    pub fn new(inner: A, budget: u64) -> Self {
        Self {
            name: format!("Budgeted[{budget}]({})", inner.name()),
            inner,
            budget,
            dropped_updates: 0,
        }
    }

    /// The state-change budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of updates that were not forwarded because the budget was exhausted.
    pub fn dropped_updates(&self) -> u64 {
        self.dropped_updates
    }

    /// Whether the budget has been exhausted.
    pub fn exhausted(&self) -> bool {
        self.inner.tracker().state_changes() >= self.budget
    }

    /// Access to the wrapped algorithm (e.g. to query its estimates).
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: StreamAlgorithm> StreamAlgorithm for BudgetedAlgorithm<A> {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        if self.exhausted() {
            self.dropped_updates += 1;
        } else {
            self.inner.process_item(item);
        }
    }

    fn tracker(&self) -> &StateTracker {
        self.inner.tracker()
    }
}

impl<A: FrequencyEstimator> FrequencyEstimator for BudgetedAlgorithm<A> {
    fn estimate(&self, item: u64) -> f64 {
        self.inner.estimate(item)
    }

    fn tracked_items(&self) -> Vec<u64> {
        self.inner.tracked_items()
    }
}

impl<A: MomentEstimator> MomentEstimator for BudgetedAlgorithm<A> {
    fn p(&self) -> f64 {
        self.inner.p()
    }

    fn estimate_moment(&self) -> f64 {
        self.inner.estimate_moment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::sample_and_hold::SampleAndHold;
    use fsc_streamgen::zipf::zipf_stream;

    #[test]
    fn budget_is_enforced() {
        let n = 1 << 12;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.1, 3);
        let inner = SampleAndHold::standalone(&Params::new(2.0, 0.3, n, m).with_seed(1));
        let mut budgeted = BudgetedAlgorithm::new(inner, 50);
        budgeted.process_stream(&stream);
        let r = budgeted.report();
        // Construction writes plus at most the budget (the final change may land
        // exactly on the cap).
        assert!(r.state_changes <= 51, "state changes {}", r.state_changes);
        assert!(budgeted.exhausted());
        assert!(budgeted.dropped_updates() > 0);
        assert_eq!(budgeted.budget(), 50);
        assert_eq!(r.epochs as usize, m, "every update still opens an epoch");
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let n = 1 << 10;
        let m = 2 * n;
        let stream = zipf_stream(n, m, 1.2, 5);
        let params = Params::new(2.0, 0.3, n, m).with_seed(7);
        let mut plain = SampleAndHold::standalone(&params);
        plain.process_stream(&stream);
        let inner = SampleAndHold::standalone(&params);
        let mut budgeted = BudgetedAlgorithm::new(inner, u64::MAX);
        budgeted.process_stream(&stream);
        assert!(!budgeted.exhausted());
        assert_eq!(budgeted.dropped_updates(), 0);
        assert_eq!(
            budgeted.inner().tracked_items(),
            plain.tracked_items(),
            "identical seeds and no budget pressure must give identical summaries"
        );
    }
}
