//! Shannon entropy estimation with few state changes (Theorem 3.8).
//!
//! The paper reduces entropy estimation to moment estimation via [HNO08]: a
//! `(1+ε)`-approximation of `2^{H(f)}` is computable from `(1+ε')`-approximations of a
//! small set of moments `F_{p_i}` with `p_i` clustered around 1.  This implementation
//! uses the same "entropy from moments near `p = 1`" principle in its differential
//! form: since `∂_p F_p |_{p=1} = Σ_i f_i·ln f_i`, the Shannon entropy is
//!
//! ```text
//! H(f) = log2(m) − (Σ_i f_i·ln f_i) / (m·ln 2).
//! ```
//!
//! The sum `Σ f_i·ln f_i` is produced by the same level-set machinery as the `F_p`
//! estimate (see [`FpEstimator::estimate_f_ln_f`]), so the state-change and space
//! behaviour is that of a single moment estimator with `p` slightly above 1 —
//! `Õ(n^{1−1/p}) ⊆ Õ(√n)` state changes, matching Theorem 3.8.  This avoids the
//! numerically delicate Chebyshev-node interpolation of the original reduction while
//! exercising exactly the same subroutine; the substitution is recorded in `DESIGN.md`.

use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, EntropyEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm,
};

use crate::fp::FpEstimator;
use crate::params::Params;

/// Stable checkpoint-header id of [`EntropyFewState`].
const SNAPSHOT_ID: &str = "entropy_few_state";

/// Entropy estimator built on the few-state-changes moment estimator.
#[derive(Debug)]
pub struct EntropyFewState {
    inner: FpEstimator,
}

impl EntropyFewState {
    /// Creates an entropy estimator for a stream over universe `[0, universe)` of about
    /// `stream_len_hint` updates, with additive target error governed by `eps`.
    pub fn new(eps: f64, universe: usize, stream_len_hint: usize, seed: u64) -> Self {
        // The classification exponent only needs to order items by frequency; a value
        // slightly above 1 keeps the state-change bound at Õ(n^{1−1/p}) ⊆ Õ(√n).
        let params = Params::new(1.25, eps, universe, stream_len_hint).with_seed(seed);
        Self {
            inner: FpEstimator::new(params),
        }
    }

    /// Estimate of `Σ_i f_i·ln f_i` (natural log).
    pub fn estimate_f_ln_f(&self) -> f64 {
        self.inner.estimate_f_ln_f()
    }
}

impl StreamAlgorithm for EntropyFewState {
    fn name(&self) -> &str {
        "EntropyFewState"
    }

    fn process_item(&mut self, item: u64) {
        self.inner.process_item(item);
    }

    fn tracker(&self) -> &StateTracker {
        self.inner.tracker()
    }

    /// Delegates to the inner [`FpEstimator`] batch kernel (same tracker, so the
    /// epoch span it opens is this algorithm's span).
    fn process_batch(&mut self, items: &[u64]) {
        self.inner.process_batch(items);
    }
}

impl_queryable!(EntropyFewState: [entropy]);

impl Snapshot for EntropyFewState {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, the inner estimator's parameter set (which pins the
    /// classification exponent `p` slightly above 1), then its dynamic state.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker().export_state().write_to(&mut w);
        self.inner.params().write_snapshot(&mut w);
        self.inner.write_dynamic_state(&mut w);
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let params = Params::read_snapshot(&mut r)?.with_tracker(state.kind);
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = EntropyFewState {
            inner: FpEstimator::with_tracker(params, &tracker),
        };
        alg.inner.read_dynamic_state(&mut r)?;
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl EntropyEstimator for EntropyFewState {
    fn estimate_entropy(&self) -> f64 {
        let m = self.tracker().epochs() as f64;
        if m < 1.0 {
            return 0.0;
        }
        let f_ln_f = self.estimate_f_ln_f().clamp(0.0, m * m.ln().max(0.0));
        (m.ln() - f_ln_f / m) / std::f64::consts::LN_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::planted::{planted_stream, PlantedSpec};
    use fsc_streamgen::uniform::permutation_stream;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn entropy_of_a_permutation_stream_is_log_n() {
        let n = 1 << 13;
        let stream = permutation_stream(n, 3);
        let mut est = EntropyFewState::new(0.2, n, n, 7);
        est.process_stream(&stream);
        let truth = (n as f64).log2();
        let err = (est.estimate_entropy() - truth).abs();
        assert!(
            err < 0.5,
            "estimate {} vs truth {truth}",
            est.estimate_entropy()
        );
    }

    #[test]
    fn entropy_of_a_skewed_stream_is_tracked() {
        let n = 1 << 12;
        let m = 8 * n;
        let stream = zipf_stream(n, m, 1.2, 11);
        let truth = FrequencyVector::from_stream(&stream).entropy_bits();
        let mut est = EntropyFewState::new(0.2, n, m, 3);
        est.process_stream(&stream);
        let err = (est.estimate_entropy() - truth).abs();
        assert!(
            err < 1.5,
            "estimate {} vs truth {truth}",
            est.estimate_entropy()
        );
    }

    #[test]
    fn low_entropy_stream_is_detected() {
        // One item dominates: the entropy is far below log2(n).
        let n = 1 << 12;
        let spec = PlantedSpec {
            universe: n,
            background_updates: 4_000,
            planted: vec![60_000],
            seed: 1,
        };
        let stream = planted_stream(&spec);
        let truth = FrequencyVector::from_stream(&stream).entropy_bits();
        let mut est = EntropyFewState::new(0.25, n, stream.len(), 5);
        est.process_stream(&stream);
        assert!(truth < 2.0);
        // For low-entropy streams the additive error is amplified (H is a small
        // difference of two large quantities, see EXPERIMENTS.md), so the assertion is
        // qualitative: the stream must be recognised as low-entropy, far below the
        // log2(n) = 12 bits of a uniform stream.
        let estimate = est.estimate_entropy();
        assert!(
            estimate < 3.5,
            "estimate {estimate} should identify a low-entropy stream (truth {truth})"
        );
    }

    #[test]
    fn empty_stream_has_zero_entropy() {
        let est = EntropyFewState::new(0.2, 1024, 1024, 0);
        assert_eq!(est.estimate_entropy(), 0.0);
    }

    #[test]
    fn state_changes_are_sublinear() {
        let n = 1 << 13;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 1.0, 2);
        let mut est = EntropyFewState::new(0.3, n, m, 9);
        est.process_stream(&stream);
        let r = est.report();
        assert!((r.state_changes as f64) < 0.95 * m as f64);
    }
}
