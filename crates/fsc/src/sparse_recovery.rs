//! Sparse support recovery with few state changes.
//!
//! The paper lists sparse support recovery among the problems for which state-change-
//! and space-optimal algorithms exist.  For a frequency vector promised to be
//! `k`-sparse (at most `k` distinct items appear), the support can be recovered exactly
//! with exactly one state change per *distinct* item: every update first reads the
//! summary and only writes when the item has not been seen before.  This gives `k ≤ n`
//! state changes on a stream of arbitrary length `m`, the natural analogue of the
//! paper's separation between reads (cheap, every update) and writes (rare).

use fsc_counters::fastmap::FastTrackedMap;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter, StateTracker,
    StreamAlgorithm, SupportRecovery,
};

/// Stable checkpoint-header id of [`FewStateSparseRecovery`].
const SNAPSHOT_ID: &str = "sparse_recovery";

/// Exact support recovery for `k`-sparse streams using `O(k)` words and `k` state
/// changes.
#[derive(Debug, Clone)]
pub struct FewStateSparseRecovery {
    seen: FastTrackedMap<u64, ()>,
    sparsity: usize,
    overflowed: bool,
    name: String,
    tracker: StateTracker,
}

impl FewStateSparseRecovery {
    /// Creates a recovery structure for streams with at most `sparsity` distinct items.
    pub fn new(sparsity: usize) -> Self {
        Self::with_tracker(sparsity, &StateTracker::new())
    }

    /// Creates a recovery structure attached to a caller-supplied tracker (e.g. a lean
    /// one from [`StateTracker::lean`]).
    pub fn with_tracker(sparsity: usize, tracker: &StateTracker) -> Self {
        assert!(sparsity >= 1);
        Self {
            seen: FastTrackedMap::new(tracker),
            sparsity,
            overflowed: false,
            name: format!("FewStateSparseRecovery(k={sparsity})"),
            tracker: tracker.clone(),
        }
    }

    /// The promised sparsity `k`.
    pub fn sparsity(&self) -> usize {
        self.sparsity
    }

    /// Whether the stream violated the sparsity promise (more than `k` distinct items
    /// arrived).  The first `k` distinct items are still reported exactly.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Number of distinct items recorded so far.
    pub fn distinct_seen(&self) -> usize {
        self.seen.len()
    }
}

impl StreamAlgorithm for FewStateSparseRecovery {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        if self.seen.contains_key(&item) {
            return; // read-only path: the common case costs no state change
        }
        if self.seen.len() < self.sparsity {
            self.seen.insert(item, ());
        } else {
            self.overflowed = true;
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }

    /// Batch kernel: the common case is one untracked membership probe per item; the
    /// per-item read charges are accumulated and flushed with one tracker call per
    /// batch, and writes (first occurrences only) keep their per-item epochs.  On a
    /// `k`-sparse stream this leaves ~1 accounting call per batch instead of ~1 per
    /// item, which matters for the fastest algorithm in the repository.
    fn process_batch(&mut self, items: &[u64]) {
        let tracker = self.tracker.clone();
        let first = tracker.begin_epochs(items.len() as u64);
        let mut reads = 0u64;
        for (i, &item) in items.iter().enumerate() {
            tracker.enter_epoch(first + i as u64);
            reads += 1; // the contains_key probe of the per-item path
            if self.seen.peek(&item).is_some() {
                continue;
            }
            if self.seen.len() < self.sparsity {
                self.seen.insert(item, ());
            } else {
                self.overflowed = true;
            }
        }
        tracker.record_reads(reads);
    }
}

impl_queryable!(FewStateSparseRecovery: [support]);

impl Snapshot for FewStateSparseRecovery {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `sparsity`, the overflow flag, then the recorded
    /// support in sorted order.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.usize(self.sparsity);
        w.bool(self.overflowed);
        let support = self.recovered_support();
        w.usize(support.len());
        for item in support {
            w.u64(item);
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let sparsity = r.usize()?;
        if sparsity == 0 {
            return Err(SnapshotError::Corrupt("sparsity"));
        }
        let overflowed = r.bool()?;
        let len = r.len_prefix(8)?;
        if len > sparsity {
            return Err(SnapshotError::Corrupt("support exceeds sparsity"));
        }
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = FewStateSparseRecovery::with_tracker(sparsity, &tracker);
        alg.overflowed = overflowed;
        for _ in 0..len {
            alg.seen.insert_untracked(r.u64()?, ());
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl SupportRecovery for FewStateSparseRecovery {
    fn recovered_support(&self) -> Vec<u64> {
        let mut support = self.seen.keys_untracked();
        support.sort_unstable();
        support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::uniform::grouped_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn recovers_the_exact_support_with_one_state_change_per_distinct_item() {
        // 32 distinct items, each repeated 1000 times.
        let stream = grouped_stream(32, 1_000);
        let mut alg = FewStateSparseRecovery::new(64);
        alg.process_stream(&stream);
        let truth = FrequencyVector::from_stream(&stream).support();
        assert_eq!(alg.recovered_support(), truth);
        assert_eq!(alg.distinct_seen(), 32);
        assert!(!alg.overflowed());
        let r = alg.report();
        assert_eq!(r.epochs as usize, stream.len());
        assert_eq!(r.state_changes, 32, "one state change per distinct item");
    }

    #[test]
    fn shuffled_streams_give_the_same_answer() {
        let mut stream = grouped_stream(50, 200);
        fsc_streamgen::shuffle(&mut stream, 9);
        let mut alg = FewStateSparseRecovery::new(50);
        alg.process_stream(&stream);
        assert_eq!(alg.recovered_support().len(), 50);
        assert_eq!(alg.report().state_changes, 50);
    }

    #[test]
    fn overflow_is_flagged_but_prefix_is_exact() {
        let stream: Vec<u64> = (0..100).collect();
        let mut alg = FewStateSparseRecovery::new(10);
        alg.process_stream(&stream);
        assert!(alg.overflowed());
        assert_eq!(alg.recovered_support(), (0..10).collect::<Vec<u64>>());
        assert_eq!(alg.sparsity(), 10);
    }

    #[test]
    fn space_is_proportional_to_sparsity_not_stream_length() {
        let stream = grouped_stream(16, 10_000);
        let mut alg = FewStateSparseRecovery::new(16);
        alg.process_stream(&stream);
        assert!(alg.space_words() <= 16 * 4);
    }
}
