//! `F_p` moment estimation for `p < 1` (Theorem 3.2, following [JW19]).
//!
//! The estimator is a p-stable sketch ([Ind06]): `k = O(1/ε²)` implicit rows of
//! p-stable variates are maintained as inner products with the frequency vector.  Each
//! row is split into its positive part `⟨D^{(i,+)}, x⟩` and negative part
//! `⟨D^{(i,−)}, x⟩` (both monotone non-decreasing on insertion-only streams), which are
//! maintained by [`GeometricAccumulator`]s — the Morris-counter analogue for real sums.
//! For `p < 1`, `|⟨D^{(i,+)}, x⟩| + |⟨D^{(i,−)}, x⟩| = O(‖x‖_p)` ([JW19]), so the
//! `(1+β)` grid error of the accumulators translates into a `(1+O(ε))` error of the
//! final estimate while the number of state changes drops from `Θ(k·m)` to
//! `poly(log n, 1/ε)`.
//!
//! The norm is recovered with Indyk's median estimator, normalised by the empirical
//! median of `|D_p|` so that estimator and normaliser share any small bias of the
//! limited-precision variate transform.

use fsc_counters::stable::{median_of_abs, StableMatrix};
use fsc_counters::GeometricAccumulator;
use fsc_state::snapshot::TrackerState;
use fsc_state::{
    impl_queryable, MomentEstimator, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
    StateTracker, StreamAlgorithm,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stable checkpoint-header id of [`FpSmallEstimator`].
const SNAPSHOT_ID: &str = "fp_small";

/// p-stable sketch with approximate (few-state-change) accumulators, for `p ∈ (0, 1]`.
#[derive(Debug)]
pub struct FpSmallEstimator {
    p: f64,
    eps: f64,
    /// Construction seed (the p-stable matrix and the normalisation scale are
    /// deterministic functions of it, which is what lets checkpoints re-derive them
    /// instead of storing `O(k·independence)` coefficients).
    seed: u64,
    tracker: StateTracker,
    rng: StdRng,
    matrix: StableMatrix,
    plus: Vec<GeometricAccumulator>,
    minus: Vec<GeometricAccumulator>,
    /// Empirical median of `|D_p|` used to normalise the median estimator.
    scale: f64,
    name: String,
}

impl FpSmallEstimator {
    /// Creates an estimator for `p ∈ (0, 1]` with target relative error `ε`.
    pub fn new(p: f64, eps: f64, seed: u64) -> Self {
        let tracker = StateTracker::new();
        Self::with_tracker(p, eps, seed, &tracker)
    }

    /// Creates an estimator sharing `tracker` with an enclosing algorithm.
    pub fn with_tracker(p: f64, eps: f64, seed: u64, tracker: &StateTracker) -> Self {
        assert!(p > 0.0 && p <= 1.0, "FpSmallEstimator requires p ∈ (0, 1]");
        assert!(eps > 0.0 && eps < 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = ((24.0 / (eps * eps)).ceil() as usize).clamp(16, 2_048);
        let independence = ((1.0 / eps).ln().ceil() as usize).max(4);
        let matrix = StableMatrix::new(p, rows, independence, &mut rng);
        let beta = (eps / 4.0).clamp(1e-4, 1.0);
        let plus = (0..rows)
            .map(|_| GeometricAccumulator::new(tracker, beta))
            .collect();
        let minus = (0..rows)
            .map(|_| GeometricAccumulator::new(tracker, beta))
            .collect();
        let scale = median_of_abs(p, 50_000, &mut rng);
        Self {
            name: format!("FpSmallEstimator(p={p}, eps={eps})"),
            p,
            eps,
            seed,
            tracker: tracker.clone(),
            rng,
            matrix,
            plus,
            minus,
            scale,
        }
    }

    /// Number of sketch rows `k = O(1/ε²)`.
    pub fn rows(&self) -> usize {
        self.plus.len()
    }

    /// The target relative error `ε`.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Estimate of the `L_p` norm `‖f‖_p`.
    pub fn estimate_lp_norm(&self) -> f64 {
        let mut magnitudes: Vec<f64> = self
            .plus
            .iter()
            .zip(&self.minus)
            .map(|(pos, neg)| (pos.estimate() - neg.estimate()).abs())
            .collect();
        magnitudes.sort_by(f64::total_cmp);
        magnitudes[magnitudes.len() / 2] / self.scale
    }
}

impl StreamAlgorithm for FpSmallEstimator {
    fn name(&self) -> &str {
        &self.name
    }

    fn process_item(&mut self, item: u64) {
        for i in 0..self.plus.len() {
            self.tracker.record_reads(1);
            let v = self.matrix.entry(i, item);
            if v >= 0.0 {
                self.plus[i].add(v, &mut self.rng);
            } else {
                self.minus[i].add(-v, &mut self.rng);
            }
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

impl_queryable!(FpSmallEstimator: [moment]);

impl Snapshot for FpSmallEstimator {
    fn snapshot_id(&self) -> &'static str {
        SNAPSHOT_ID
    }

    /// Layout: tracker state, `p`, `ε`, the construction seed (matrix + scale
    /// re-derive from it), the live rng state, then the accumulator registers
    /// (positive parts, then negative parts).
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(SNAPSHOT_ID);
        self.tracker.export_state().write_to(&mut w);
        w.f64(self.p);
        w.f64(self.eps);
        w.u64(self.seed);
        for word in self.rng.state() {
            w.u64(word);
        }
        w.usize(self.plus.len());
        for acc in self.plus.iter().chain(&self.minus) {
            w.u64(acc.register());
        }
        w.finish()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes, SNAPSHOT_ID)?;
        let state = TrackerState::read_from(&mut r)?;
        let p = r.f64()?;
        let eps = r.f64()?;
        if !(p.is_finite() && p > 0.0 && p <= 1.0 && eps > 0.0 && eps < 1.0) {
            return Err(SnapshotError::Corrupt("fp_small parameter range"));
        }
        let seed = r.u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let rows = r.usize()?;
        let tracker = StateTracker::of_kind(state.kind);
        let mut alg = FpSmallEstimator::with_tracker(p, eps, seed, &tracker);
        if rows != alg.plus.len() {
            return Err(SnapshotError::Corrupt("fp_small row count mismatch"));
        }
        alg.rng = StdRng::from_state(rng_state);
        for acc in alg.plus.iter_mut().chain(&mut alg.minus) {
            acc.set_register_untracked(r.u64()?);
        }
        tracker.import_state(&state);
        r.finish()?;
        Ok(alg)
    }
}

impl MomentEstimator for FpSmallEstimator {
    fn p(&self) -> f64 {
        self.p
    }

    fn estimate_moment(&self) -> f64 {
        self.estimate_lp_norm().powf(self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_streamgen::zipf::zipf_stream;
    use fsc_streamgen::FrequencyVector;

    #[test]
    fn f_half_is_estimated_within_tolerance() {
        let n = 1 << 10;
        let m = 8 * n;
        let stream = zipf_stream(n, m, 1.1, 7);
        let truth = FrequencyVector::from_stream(&stream).fp(0.5);
        let mut est = FpSmallEstimator::new(0.5, 0.3, 3);
        est.process_stream(&stream);
        let rel = (est.estimate_moment() - truth).abs() / truth;
        assert!(
            rel < 0.35,
            "relative error {rel} (est {}, truth {truth})",
            est.estimate_moment()
        );
        assert_eq!(est.p(), 0.5);
    }

    #[test]
    fn f1_via_cauchy_sketch_recovers_the_stream_length() {
        let n = 1 << 10;
        let m = 4 * n;
        let stream = zipf_stream(n, m, 0.9, 5);
        let mut est = FpSmallEstimator::new(1.0, 0.3, 9);
        est.process_stream(&stream);
        let rel = (est.estimate_moment() - m as f64).abs() / m as f64;
        assert!(rel < 0.35, "relative error {rel}");
    }

    #[test]
    fn word_writes_are_far_below_one_per_row_per_update() {
        let n = 1 << 10;
        let m = 8 * n;
        let stream = zipf_stream(n, m, 1.0, 2);
        let mut est = FpSmallEstimator::new(0.5, 0.3, 4);
        est.process_stream(&stream);
        let r = est.report();
        let exact_sketch_writes = (2 * est.rows() * m) as f64;
        assert!(
            (r.word_writes as f64) < 0.1 * exact_sketch_writes,
            "word writes {} vs exact-sketch {exact_sketch_writes}",
            r.word_writes
        );
    }

    #[test]
    fn structure_matches_parameters() {
        let est = FpSmallEstimator::new(0.25, 0.3, 1);
        assert_eq!(est.rows(), (24.0f64 / 0.09).ceil() as usize);
        assert_eq!(est.eps(), 0.3);
        assert!(est.estimate_moment() == 0.0 || est.estimate_moment().is_finite());
    }

    #[test]
    #[should_panic]
    fn p_above_one_is_rejected() {
        let _ = FpSmallEstimator::new(1.5, 0.2, 0);
    }
}
