//! Scalar-vs-lane A/B for the lane-packed batch kernels.
//!
//! Same geometry as the recorded throughput experiment (full-scale stream, full
//! tracker), so the ratios here explain the BENCH_throughput.json headline moves.
//! Every width computes bit-identical answers (the batch-law lane sweep pins it),
//! so any ratio below 1.0 is pure kernel overhead, not a correctness trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsc_baselines::{AmsSketch, CountMin, CountSketch};
use fsc_state::{StateTracker, StreamAlgorithm, TrackerKind};
use fsc_streamgen::zipf::zipf_stream;

const N: usize = 1 << 14;
const M: usize = 1 << 18;

fn bench_lane_widths(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let tracker = || StateTracker::of_kind(TrackerKind::Full);

    let mut group = c.benchmark_group("simd_kernels");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    for &lanes in &fsc_counters::lanes::LANE_WIDTHS {
        group.bench_function(BenchmarkId::new("CountMin(4x1024)", lanes), |b| {
            b.iter(|| {
                let mut alg = CountMin::with_tracker(&tracker(), 1 << 10, 4, 1).with_lanes(lanes);
                alg.process_batch(&stream);
                alg.report().state_changes
            })
        });
        group.bench_function(BenchmarkId::new("CountSketch(5x1024)", lanes), |b| {
            b.iter(|| {
                let mut alg =
                    CountSketch::with_tracker(&tracker(), 1 << 10, 5, 2).with_lanes(lanes);
                alg.process_batch(&stream);
                alg.report().state_changes
            })
        });
        group.bench_function(BenchmarkId::new("AMS(5x48)", lanes), |b| {
            b.iter(|| {
                let mut alg = AmsSketch::with_tracker(&tracker(), 5, 48, 3).with_lanes(lanes);
                alg.process_batch(&stream);
                alg.report().state_changes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lane_widths);
criterion_main!(benches);
