//! Update-throughput micro-benchmarks: the paper's algorithms vs. the classic
//! summaries, processing the same Zipfian stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsc::{FewStateHeavyHitters, FpEstimator, Params, SampleAndHold};
use fsc_baselines::{CountMin, CountSketch, MisraGries, SpaceSaving};
use fsc_counters::hashing::TabulationHash;
use fsc_state::{StateTracker, StreamAlgorithm, TrackedVec, TrackerKind};
use fsc_streamgen::zipf::zipf_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 1 << 12;
const M: usize = 4 * N;

fn bench_updates(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let mut group = c.benchmark_group("stream_updates");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("SampleAndHold", "p2"), |b| {
        b.iter(|| {
            let mut alg = SampleAndHold::standalone(&Params::new(2.0, 0.2, N, M));
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("FewStateHeavyHitters", "p2"), |b| {
        b.iter(|| {
            let mut alg = FewStateHeavyHitters::new(Params::new(2.0, 0.2, N, M));
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("FpEstimator", "p2"), |b| {
        b.iter(|| {
            let mut alg = FpEstimator::new(Params::new(2.0, 0.3, N, M));
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("MisraGries", "eps0.05"), |b| {
        b.iter(|| {
            let mut alg = MisraGries::for_epsilon(0.05);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("SpaceSaving", "eps0.05"), |b| {
        b.iter(|| {
            let mut alg = SpaceSaving::for_epsilon(0.05);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "eps0.05"), |b| {
        b.iter(|| {
            let mut alg = CountMin::for_error(0.05, 0.05, 1);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountSketch", "eps0.1"), |b| {
        b.iter(|| {
            let mut alg = CountSketch::for_error(0.1, 0.05, 1);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.finish();
}

/// Update-path cost of the exact-accounting `FullTracker` vs the atomic `LeanTracker`,
/// holding the algorithm fixed.  The measured ratio is recorded in EXPERIMENTS.md
/// (satellite of the backend refactor): CountMin stresses `record_write`/`record_reads`
/// density (depth writes per update), SampleAndHold stresses `begin_epoch`/`epochs`
/// polling with sparse writes.
fn bench_tracker_backends(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let mut group = c.benchmark_group("tracker_backends");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    for (label, kind) in [("full", TrackerKind::Full), ("lean", TrackerKind::Lean)] {
        group.bench_function(BenchmarkId::new("CountMin", label), |b| {
            b.iter(|| {
                let tracker = StateTracker::of_kind(kind);
                let mut alg = CountMin::with_tracker(&tracker, 1 << 10, 4, 1);
                alg.process_stream(&stream);
                alg.report().state_changes
            })
        });
        group.bench_function(BenchmarkId::new("SampleAndHold", label), |b| {
            b.iter(|| {
                let mut alg =
                    SampleAndHold::standalone(&Params::new(2.0, 0.2, N, M).with_tracker(kind));
                alg.process_stream(&stream);
                alg.report().state_changes
            })
        });
    }
    group.finish();
}

/// The pre-PR CountMin storage layout: one boxed `TrackedVec` per sketch row, driven
/// by per-item `update()` epochs.  Kept here (bench-only) as the reference point for
/// the flat-matrix + batched-epoch hot path; accounting semantics are identical, so
/// the measured gap is pure layout + epoch-machinery cost.
struct LegacyRowsCountMin {
    rows: Vec<TrackedVec<u64>>,
    hashes: Vec<TabulationHash>,
    width: usize,
    tracker: StateTracker,
}

impl LegacyRowsCountMin {
    fn new(width: usize, depth: usize, seed: u64) -> Self {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..depth)
            .map(|_| TrackedVec::filled(&tracker, width, 0u64))
            .collect();
        let hashes = (0..depth).map(|_| TabulationHash::new(&mut rng)).collect();
        Self {
            rows,
            hashes,
            width,
            tracker,
        }
    }
}

impl StreamAlgorithm for LegacyRowsCountMin {
    fn name(&self) -> &str {
        "LegacyRowsCountMin"
    }

    fn process_item(&mut self, item: u64) {
        for (row, hash) in self.rows.iter_mut().zip(&self.hashes) {
            let bucket = hash.hash_bucket(item, self.width);
            row.update(bucket, |c| c + 1);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

/// Old-vs-new CountMin hot path, isolating the two tentpole levers: contiguous flat
/// storage (`TrackedMatrix`) vs per-row boxed vectors, and batched epoch spans
/// (`process_batch`) vs per-item `update()`.  Measured ratios are recorded in
/// EXPERIMENTS.md.
fn bench_flat_vs_rows(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let (width, depth) = (1 << 10, 4);
    let mut group = c.benchmark_group("flat_vs_rows");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("CountMin", "rows_per_item"), |b| {
        b.iter(|| {
            let mut alg = LegacyRowsCountMin::new(width, depth, 1);
            for &item in &stream {
                alg.update(item);
            }
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "flat_per_item"), |b| {
        b.iter(|| {
            let mut alg = CountMin::new(width, depth, 1);
            for &item in &stream {
                alg.update(item);
            }
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "flat_batched"), |b| {
        b.iter(|| {
            let mut alg = CountMin::new(width, depth, 1);
            alg.process_batch(&stream);
            alg.report().state_changes
        })
    });
    group.finish();
}

/// Batch kernels vs the per-item path, per algorithm: the same instance
/// configuration driven once with a per-item `update` loop and once through
/// `process_batch` (one batch = the whole stream, as `process_stream` dispatches).
/// Measured ratios are recorded in EXPERIMENTS.md — including the honest reading
/// that algorithms whose per-update work is irreducible (e.g. SampleAndHold's
/// tracked writes) gain little from batching alone, while the AMS sign-memoizing
/// kernel gains an order of magnitude on repeating streams.
fn bench_batch_kernels(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let mut group = c.benchmark_group("batch_kernels");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    fn drive<A: StreamAlgorithm>(mode: &str, mut alg: A, stream: &[u64]) -> u64 {
        match mode {
            "item" => {
                for &x in stream {
                    alg.update(x);
                }
            }
            _ => alg.process_batch(stream),
        }
        alg.report().state_changes
    }

    for mode in ["item", "batch"] {
        group.bench_function(BenchmarkId::new("AMS", mode), |b| {
            b.iter(|| drive(mode, fsc_baselines::AmsSketch::new(5, 48, 3), &stream))
        });
        group.bench_function(BenchmarkId::new("CountMin", mode), |b| {
            b.iter(|| drive(mode, CountMin::new(1 << 10, 4, 1), &stream))
        });
        group.bench_function(BenchmarkId::new("CountSketch", mode), |b| {
            b.iter(|| drive(mode, CountSketch::new(1 << 10, 5, 2), &stream))
        });
        group.bench_function(BenchmarkId::new("SampleAndHold", mode), |b| {
            b.iter(|| {
                drive(
                    mode,
                    SampleAndHold::standalone(&Params::new(2.0, 0.2, N, M)),
                    &stream,
                )
            })
        });
        group.bench_function(BenchmarkId::new("FewStateHeavyHitters", mode), |b| {
            b.iter(|| {
                drive(
                    mode,
                    FewStateHeavyHitters::new(Params::new(2.0, 0.25, N, M)),
                    &stream,
                )
            })
        });
        group.bench_function(BenchmarkId::new("FpEstimator", mode), |b| {
            b.iter(|| drive(mode, FpEstimator::new(Params::new(2.0, 0.3, N, M)), &stream))
        });
        group.bench_function(BenchmarkId::new("SparseRecovery", mode), |b| {
            b.iter(|| {
                drive(
                    mode,
                    fsc::sparse_recovery::FewStateSparseRecovery::new(1 << 12),
                    &stream,
                )
            })
        });
    }

    // Run-length pre-pass on a bursty (sorted) stream: the opt-in fast path for
    // count-increment algorithms, vs the same stream item by item.
    let sorted = {
        let mut s = stream.clone();
        s.sort_unstable();
        s
    };
    let runs = fsc_streamgen::run_length_encode(&sorted);
    group.bench_function(BenchmarkId::new("CountMin", "rle_item"), |b| {
        b.iter(|| {
            let mut alg = CountMin::new(1 << 10, 4, 1);
            for &x in &sorted {
                alg.update(x);
            }
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "rle_runs"), |b| {
        b.iter(|| {
            let mut alg = CountMin::new(1 << 10, 4, 1);
            alg.process_runs(&runs);
            alg.report().state_changes
        })
    });
    group.finish();
}

/// Cached serving view vs the restore-and-merge path it replaces, at several
/// sketch sizes: `Engine::query` answers from the generation-stamped snapshot
/// (no rebuild while the generation is unchanged), `Engine::query_fresh` pays
/// the full per-shard `checkpoint`/`restore`/`merge_from` cost on every call.
/// Measured ratios are recorded in EXPERIMENTS.md §serve — the gap is the
/// tentpole's acceptance criterion, and it widens with summary size because the
/// fresh path scales with sketch bytes while the cached path is a stamp compare
/// plus an `Arc` clone.
fn bench_serve_paths(c: &mut Criterion) {
    use fsc_engine::{Engine, EngineConfig, Routing};
    use fsc_state::Query;

    // 256 point queries per iteration so the sub-microsecond cached path still
    // registers on the harness's millisecond display; the printed rate is
    // therefore Mqueries/s for both paths.
    const QUERIES: u64 = 256;
    let stream = zipf_stream(N, M, 1.1, 7);
    let mut group = c.benchmark_group("serve_paths");
    group.throughput(Throughput::Elements(QUERIES));
    group.sample_size(10);

    for width_log2 in [8u32, 10, 12] {
        let width = 1usize << width_log2;
        let config = EngineConfig {
            shards: 4,
            routing: Routing::RoundRobin,
            tracker: TrackerKind::Full,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config, |_| {
            CountMin::with_tracker(&StateTracker::of_kind(config.tracker), width, 4, 7)
        });
        engine.ingest(&stream);
        engine.refresh_view().expect("prime the serving view");

        let label = format!("CountMin_4x{width}");
        group.bench_function(BenchmarkId::new("cached", &label), |b| {
            b.iter(|| {
                let mut sum = 0.0f64;
                for at in 0..QUERIES {
                    let answer = engine.query(&Query::Point(at % 64)).expect("cached view");
                    sum += answer.scalar().unwrap_or(0.0);
                }
                sum
            })
        });
        group.bench_function(BenchmarkId::new("fresh", &label), |b| {
            b.iter(|| {
                let mut sum = 0.0f64;
                for at in 0..QUERIES {
                    let answer = engine
                        .query_fresh(&Query::Point(at % 64))
                        .expect("restore+merge");
                    sum += answer.scalar().unwrap_or(0.0);
                }
                sum
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_updates,
    bench_tracker_backends,
    bench_flat_vs_rows,
    bench_batch_kernels,
    bench_serve_paths
);
criterion_main!(benches);
