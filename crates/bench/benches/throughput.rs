//! Update-throughput micro-benchmarks: the paper's algorithms vs. the classic
//! summaries, processing the same Zipfian stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsc::{FewStateHeavyHitters, FpEstimator, Params, SampleAndHold};
use fsc_baselines::{CountMin, CountSketch, MisraGries, SpaceSaving};
use fsc_counters::hashing::TabulationHash;
use fsc_state::{StateTracker, StreamAlgorithm, TrackedVec, TrackerKind};
use fsc_streamgen::zipf::zipf_stream;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 1 << 12;
const M: usize = 4 * N;

fn bench_updates(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let mut group = c.benchmark_group("stream_updates");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("SampleAndHold", "p2"), |b| {
        b.iter(|| {
            let mut alg = SampleAndHold::standalone(&Params::new(2.0, 0.2, N, M));
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("FewStateHeavyHitters", "p2"), |b| {
        b.iter(|| {
            let mut alg = FewStateHeavyHitters::new(Params::new(2.0, 0.2, N, M));
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("FpEstimator", "p2"), |b| {
        b.iter(|| {
            let mut alg = FpEstimator::new(Params::new(2.0, 0.3, N, M));
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("MisraGries", "eps0.05"), |b| {
        b.iter(|| {
            let mut alg = MisraGries::for_epsilon(0.05);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("SpaceSaving", "eps0.05"), |b| {
        b.iter(|| {
            let mut alg = SpaceSaving::for_epsilon(0.05);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "eps0.05"), |b| {
        b.iter(|| {
            let mut alg = CountMin::for_error(0.05, 0.05, 1);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountSketch", "eps0.1"), |b| {
        b.iter(|| {
            let mut alg = CountSketch::for_error(0.1, 0.05, 1);
            alg.process_stream(&stream);
            alg.report().state_changes
        })
    });
    group.finish();
}

/// Update-path cost of the exact-accounting `FullTracker` vs the atomic `LeanTracker`,
/// holding the algorithm fixed.  The measured ratio is recorded in EXPERIMENTS.md
/// (satellite of the backend refactor): CountMin stresses `record_write`/`record_reads`
/// density (depth writes per update), SampleAndHold stresses `begin_epoch`/`epochs`
/// polling with sparse writes.
fn bench_tracker_backends(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let mut group = c.benchmark_group("tracker_backends");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    for (label, kind) in [("full", TrackerKind::Full), ("lean", TrackerKind::Lean)] {
        group.bench_function(BenchmarkId::new("CountMin", label), |b| {
            b.iter(|| {
                let tracker = StateTracker::of_kind(kind);
                let mut alg = CountMin::with_tracker(&tracker, 1 << 10, 4, 1);
                alg.process_stream(&stream);
                alg.report().state_changes
            })
        });
        group.bench_function(BenchmarkId::new("SampleAndHold", label), |b| {
            b.iter(|| {
                let mut alg =
                    SampleAndHold::standalone(&Params::new(2.0, 0.2, N, M).with_tracker(kind));
                alg.process_stream(&stream);
                alg.report().state_changes
            })
        });
    }
    group.finish();
}

/// The pre-PR CountMin storage layout: one boxed `TrackedVec` per sketch row, driven
/// by per-item `update()` epochs.  Kept here (bench-only) as the reference point for
/// the flat-matrix + batched-epoch hot path; accounting semantics are identical, so
/// the measured gap is pure layout + epoch-machinery cost.
struct LegacyRowsCountMin {
    rows: Vec<TrackedVec<u64>>,
    hashes: Vec<TabulationHash>,
    width: usize,
    tracker: StateTracker,
}

impl LegacyRowsCountMin {
    fn new(width: usize, depth: usize, seed: u64) -> Self {
        let tracker = StateTracker::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (0..depth)
            .map(|_| TrackedVec::filled(&tracker, width, 0u64))
            .collect();
        let hashes = (0..depth).map(|_| TabulationHash::new(&mut rng)).collect();
        Self {
            rows,
            hashes,
            width,
            tracker,
        }
    }
}

impl StreamAlgorithm for LegacyRowsCountMin {
    fn name(&self) -> &str {
        "LegacyRowsCountMin"
    }

    fn process_item(&mut self, item: u64) {
        for (row, hash) in self.rows.iter_mut().zip(&self.hashes) {
            let bucket = hash.hash_bucket(item, self.width);
            row.update(bucket, |c| c + 1);
        }
    }

    fn tracker(&self) -> &StateTracker {
        &self.tracker
    }
}

/// Old-vs-new CountMin hot path, isolating the two tentpole levers: contiguous flat
/// storage (`TrackedMatrix`) vs per-row boxed vectors, and batched epoch spans
/// (`process_batch`) vs per-item `update()`.  Measured ratios are recorded in
/// EXPERIMENTS.md.
fn bench_flat_vs_rows(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 7);
    let (width, depth) = (1 << 10, 4);
    let mut group = c.benchmark_group("flat_vs_rows");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("CountMin", "rows_per_item"), |b| {
        b.iter(|| {
            let mut alg = LegacyRowsCountMin::new(width, depth, 1);
            for &item in &stream {
                alg.update(item);
            }
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "flat_per_item"), |b| {
        b.iter(|| {
            let mut alg = CountMin::new(width, depth, 1);
            for &item in &stream {
                alg.update(item);
            }
            alg.report().state_changes
        })
    });
    group.bench_function(BenchmarkId::new("CountMin", "flat_batched"), |b| {
        b.iter(|| {
            let mut alg = CountMin::new(width, depth, 1);
            alg.process_batch(&stream);
            alg.report().state_changes
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_updates,
    bench_tracker_backends,
    bench_flat_vs_rows
);
criterion_main!(benches);
