//! Per-update cost of the baseline summaries at several sketch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fsc_baselines::{AmsSketch, CountMin, MisraGries};
use fsc_state::StreamAlgorithm;
use fsc_streamgen::zipf::zipf_stream;

const N: usize = 1 << 12;
const M: usize = 2 * N;

fn bench_baselines(c: &mut Criterion) {
    let stream = zipf_stream(N, M, 1.1, 3);
    let mut group = c.benchmark_group("baseline_updates");
    group.throughput(Throughput::Elements(M as u64));
    group.sample_size(10);

    for &k in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("MisraGries", k), &k, |b, &k| {
            b.iter(|| {
                let mut alg = MisraGries::new(k);
                alg.process_stream(&stream);
                alg.space_words()
            })
        });
        group.bench_with_input(BenchmarkId::new("CountMin_width", k), &k, |b, &k| {
            b.iter(|| {
                let mut alg = CountMin::new(k, 4, 1);
                alg.process_stream(&stream);
                alg.space_words()
            })
        });
    }
    group.bench_function("AMS_eps0.2", |b| {
        b.iter(|| {
            let mut alg = AmsSketch::for_error(0.2, 0.1, 1);
            alg.process_stream(&stream);
            alg.space_words()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
