//! Counter micro-benchmarks: exact vs Morris vs geometric accumulators.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fsc_counters::{Counter, ExactCounter, GeometricAccumulator, MorrisCounter};
use fsc_state::StateTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;

const INCREMENTS: u64 = 100_000;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counters");
    group.throughput(Throughput::Elements(INCREMENTS));
    group.sample_size(20);

    group.bench_function("exact_counter", |b| {
        b.iter(|| {
            let tracker = StateTracker::new();
            let mut rng = StdRng::seed_from_u64(1);
            let mut counter = ExactCounter::new(&tracker);
            for _ in 0..INCREMENTS {
                counter.increment(&mut rng);
            }
            counter.estimate()
        })
    });
    group.bench_function("morris_counter_a0.005", |b| {
        b.iter(|| {
            let tracker = StateTracker::new();
            let mut rng = StdRng::seed_from_u64(1);
            let mut counter = MorrisCounter::new(&tracker, 0.005);
            for _ in 0..INCREMENTS {
                counter.increment(&mut rng);
            }
            counter.estimate()
        })
    });
    group.bench_function("geometric_accumulator_beta0.05", |b| {
        b.iter(|| {
            let tracker = StateTracker::new();
            let mut rng = StdRng::seed_from_u64(1);
            let mut acc = GeometricAccumulator::new(&tracker, 0.05);
            for _ in 0..INCREMENTS {
                acc.add(1.0, &mut rng);
            }
            acc.estimate()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
