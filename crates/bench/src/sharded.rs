//! Sharded parallel execution: split a stream across shards, run a mergeable summary
//! per shard on its own thread, merge the summaries, and combine the accounting.
//!
//! Also provides [`parallel_map`], the generic work-queue used by `run_all --threads N`
//! to run independent experiment cells concurrently, and [`shard_seed`], the canonical
//! derivation of per-shard RNG seeds from a master seed.
//!
//! Everything here is plain `std::thread::scope` — no external dependencies.  Shards
//! work because every algorithm built on the tracked substrate is `Send` (the tracker
//! backends are internally synchronised), and each shard owns its *own* tracker, so the
//! sequential per-tracker epoch discipline is preserved.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use fsc_state::{Mergeable, StateReport, StreamAlgorithm};

/// Derives the RNG seed for `shard` from `master`: the XOR of the master seed with the
/// shard index, passed through a SplitMix64 finalizer so that adjacent shard indices do
/// not yield correlated low bits.  Deterministic: the same `(master, shard)` pair always
/// produces the same seed, so sharded runs reproduce exactly (see `tests/determinism.rs`).
pub fn shard_seed(master: u64, shard: usize) -> u64 {
    let mut z = (master ^ shard as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The result of a sharded run: the merged summary plus per-shard and combined
/// accounting.
#[derive(Debug)]
pub struct ShardedOutcome<A> {
    /// The summary after merging every shard (answers queries about the whole stream).
    pub merged: A,
    /// Pre-merge accounting snapshot of each shard, in shard order.
    pub shard_reports: Vec<StateReport>,
    /// The [`StateReport::sharded`] combination of all shard reports: total epochs,
    /// state changes, and space across shards, excluding the merge itself (the merge
    /// opens one extra epoch on shard 0's tracker; see [`Mergeable`]).
    pub combined_report: StateReport,
}

/// Splits `stream` into exactly `shards` contiguous chunks (sizes differing by at most
/// one; trailing chunks are empty when the stream is shorter than the shard count),
/// runs `make(shard_index)`'s summary over each chunk on its own scoped thread, then
/// merges all shard summaries into shard 0's.
///
/// `make` receives the shard index so it can derive per-shard randomness via
/// [`shard_seed`].  Summaries that must merge exactly (linear sketches) should instead
/// use the *same* seed for every shard — mergeability of sketches requires identical
/// hash functions.
///
/// With one shard this degenerates to a plain `process_batch` run on the calling
/// thread.
pub fn run_sharded<A, F>(stream: &[u64], shards: usize, make: F) -> ShardedOutcome<A>
where
    A: StreamAlgorithm + Mergeable + Send,
    F: Fn(usize) -> A + Sync,
{
    assert!(shards >= 1, "need at least one shard");
    // Balanced contiguous split into exactly `shards` chunks: the first
    // `len % shards` chunks carry one extra item (chunks may be empty when the
    // stream is shorter than the shard count), so every shard index — and its
    // derived seed — is exercised and sizes differ by at most one.
    let (base, extra) = (stream.len() / shards, stream.len() % shards);
    let mut chunks: Vec<&[u64]> = Vec::with_capacity(shards);
    let mut offset = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < extra);
        chunks.push(&stream[offset..offset + len]);
        offset += len;
    }
    let mut summaries: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(index, chunk)| {
                let make = &make;
                scope.spawn(move || {
                    let mut summary = make(index);
                    summary.process_batch(chunk);
                    summary
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    let shard_reports: Vec<StateReport> = summaries.iter().map(|s| s.report()).collect();
    let combined_report = shard_reports
        .iter()
        .skip(1)
        .fold(shard_reports[0], |acc, r| acc.sharded(r));
    let mut merged = summaries.remove(0);
    for other in &summaries {
        merged.merge_from(other);
    }
    ShardedOutcome {
        merged,
        shard_reports,
        combined_report,
    }
}

/// Applies `f` to every item on up to `threads` worker threads, preserving input order
/// in the output.  Work is claimed dynamically (an atomic cursor over the item list),
/// so heterogeneous item durations — experiment cells — still balance.
///
/// With `threads <= 1` this runs inline on the calling thread with no thread or lock
/// overhead, so callers can pass the user's `--threads` value straight through.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each slot is claimed exactly once");
                let result = f(i, item);
                *results[i].lock().unwrap() = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker stored a result for every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_baselines::{CountMin, MisraGries};
    use fsc_state::{FrequencyEstimator, StateTracker};
    use fsc_streamgen::zipf::zipf_stream;

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        let seeds: Vec<u64> = (0..16).map(|s| shard_seed(42, s)).collect();
        let again: Vec<u64> = (0..16).map(|s| shard_seed(42, s)).collect();
        assert_eq!(seeds, again);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "shard seeds must not collide");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0));
    }

    #[test]
    fn sharded_count_min_matches_the_serial_run() {
        let stream = zipf_stream(1 << 10, 10_000, 1.1, 3);
        let mut serial = CountMin::new(128, 4, 7);
        serial.process_stream(&stream);
        let outcome = run_sharded(&stream, 4, |_| {
            CountMin::with_tracker(&StateTracker::lean(), 128, 4, 7)
        });
        for item in 0..64u64 {
            assert_eq!(outcome.merged.estimate(item), serial.estimate(item));
        }
        assert_eq!(outcome.shard_reports.len(), 4);
        assert_eq!(outcome.combined_report.epochs as usize, stream.len());
    }

    #[test]
    fn one_shard_degenerates_to_a_serial_run() {
        let stream = zipf_stream(256, 2_000, 1.0, 5);
        let outcome = run_sharded(&stream, 1, |_| MisraGries::new(16));
        let mut serial = MisraGries::new(16);
        serial.process_stream(&stream);
        // Snapshot before querying: estimates charge reads to the serial tracker.
        let serial_report = serial.report();
        let mut merged_items = outcome.merged.tracked_items();
        merged_items.sort_unstable();
        let mut serial_items = serial.tracked_items();
        serial_items.sort_unstable();
        assert_eq!(merged_items, serial_items);
        for &item in &serial_items {
            assert_eq!(outcome.merged.estimate(item), serial.estimate(item));
        }
        assert_eq!(outcome.combined_report, serial_report);
    }

    #[test]
    fn every_shard_index_is_exercised_even_on_short_streams() {
        // 9 items over 4 shards: balanced split 3/2/2/2 — four shards, four reports.
        let stream: Vec<u64> = (0..9).collect();
        let outcome = run_sharded(&stream, 4, |_| MisraGries::new(4));
        assert_eq!(outcome.shard_reports.len(), 4);
        assert_eq!(outcome.combined_report.epochs, 9);
        // 2 items over 4 shards: trailing shards get empty chunks but still exist.
        let outcome = run_sharded(&stream[..2], 4, |_| MisraGries::new(4));
        assert_eq!(outcome.shard_reports.len(), 4);
        assert_eq!(outcome.combined_report.epochs, 2);
        // Empty stream: still one summary per shard, zero epochs.
        let outcome = run_sharded(&[], 3, |_| MisraGries::new(4));
        assert_eq!(outcome.shard_reports.len(), 3);
        assert_eq!(outcome.combined_report.epochs, 0);
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_everything() {
        let squares = parallel_map((0..100u64).collect(), 8, |_, x| x * x);
        assert_eq!(squares, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
        let inline = parallel_map(vec![1, 2, 3], 1, |i, x| (i, x));
        assert_eq!(inline, vec![(0, 1), (1, 2), (2, 3)]);
        assert!(parallel_map(Vec::<u64>::new(), 4, |_, x| x).is_empty());
    }
}
