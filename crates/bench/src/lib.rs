//! # fsc-bench — experiment harness
//!
//! One module per table/figure of the paper (see `DESIGN.md`, Section 5 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).  Every experiment is a
//! plain function that returns its rows as data and prints a markdown table, so it can
//! be invoked from the corresponding `src/bin/*.rs` binary, from `run_all`, or from a
//! test at a reduced scale.
//!
//! Run an individual experiment with e.g.
//! `cargo run -p fsc-bench --release --bin table1`, or everything with
//! `cargo run -p fsc-bench --release --bin run_all`.  Pass `--quick` for a reduced
//! problem size (used in CI and in the crate tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod registry;
pub mod sharded;
pub mod table;

/// Problem-size profile shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for tests / CI smoke runs (seconds).
    Quick,
    /// The sizes recorded in `EXPERIMENTS.md` (minutes).
    Full,
}

impl Scale {
    /// Parses the scale from process arguments (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks between the quick and full value.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Parses `--threads N` from the process arguments (defaults to 1 — serial).
///
/// Used by `run_all` to run independent experiment cells concurrently via
/// [`sharded::parallel_map`]; each experiment stays internally deterministic, so the
/// printed tables are identical at every thread count.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Least-squares slope of `ln(y)` against `ln(x)` — used to verify scaling exponents
/// such as the `n^{1−1/p}` state-change growth of Theorem 1.3.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|(x, _)| x).sum();
    let sy: f64 = pts.iter().map(|(_, y)| y).sum();
    let sxx: f64 = pts.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = pts.iter().map(|(x, y)| x * y).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_a_power_law_is_recovered() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = 2f64.powi(i);
                (x, 3.0 * x.powf(0.5))
            })
            .collect();
        assert!((log_log_slope(&pts) - 0.5).abs() < 1e-9);
        assert_eq!(log_log_slope(&[(1.0, 1.0)]), 0.0);
    }

    #[test]
    fn scale_pick_selects_the_right_value() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
