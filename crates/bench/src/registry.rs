//! The shared algorithm registry: one constructor table for every production
//! summary, consumed by the throughput sweep, the engine experiment, and the fig
//! binaries.
//!
//! Before this module, each experiment carried its own
//! `Box<dyn Fn(...) -> Box<dyn StreamAlgorithm>>` constructor list (e.g. the former
//! `cases()` table in `experiments/throughput.rs`) and answer extraction required
//! knowing the concrete type.  The registry replaces both: every entry exposes
//!
//! * [`AlgorithmSpec::make`] — a constructor returning `Box<dyn Queryable>`, so
//!   callers ingest through [`StreamAlgorithm`](fsc_state::StreamAlgorithm)
//!   (supertrait) and extract answers through the enum-based
//!   [`Query`](fsc_state::Query)/[`Answer`](fsc_state::Answer) API with **no
//!   downcasts**;
//! * [`AlgorithmSpec::engine`] — for [`Mergeable`](fsc_state::Mergeable) summaries,
//!   a factory building a sharded, checkpointable [`fsc_engine::Engine`] behind the
//!   object-safe [`DynEngine`] face.
//!
//! Construction parameters are the benchmark defaults recorded in
//! `BENCH_throughput.json` (identical to the former per-experiment tables, so the
//! recorded throughput rows reproduce).  Each constructor is deterministic: fixed
//! hash/sampling seeds, structure sized from the [`MakeCtx`] universe/stream hints.

use fsc::sparse_recovery::FewStateSparseRecovery;
use fsc::{
    EntropyFewState, FewStateHeavyHitters, FpEstimator, FpSmallEstimator, FullSampleAndHold,
    Params, SampleAndHold,
};
use fsc_baselines::{
    AmsSketch, CountMin, CountSketch, ExactCounting, MisraGries, PickAndDrop, SampleAndHoldClassic,
    SpaceSaving,
};
use fsc_engine::{DynEngine, Engine, EngineConfig};
use fsc_state::{Queryable, Snapshot, StateTracker, TrackerKind};

/// Construction context: the workload hints and tracker backend a constructor sizes
/// its instance for.
#[derive(Debug, Clone, Copy)]
pub struct MakeCtx {
    /// Universe size hint `n`.
    pub universe: usize,
    /// Stream length hint `m`.
    pub stream_len: usize,
    /// Tracker backend kind the instance's own tracker is created with.
    pub tracker: TrackerKind,
    /// Batch-kernel lane width override for the sketches that have lane-packed
    /// kernels (CountMin/CountSketch/AMS).  `None` keeps each kernel's default
    /// ([`fsc_counters::lanes::DEFAULT_LANE_WIDTH`]); other entries ignore it.
    pub lanes: Option<usize>,
}

impl MakeCtx {
    /// A context over the default exact-accounting tracker.
    pub fn new(universe: usize, stream_len: usize) -> Self {
        Self {
            universe,
            stream_len,
            tracker: TrackerKind::Full,
            lanes: None,
        }
    }

    /// Same hints, different tracker backend.
    pub fn with_tracker(mut self, tracker: TrackerKind) -> Self {
        self.tracker = tracker;
        self
    }

    /// Same hints, explicit batch-kernel lane width (must be a supported width).
    pub fn with_lanes(mut self, lanes: Option<usize>) -> Self {
        self.lanes = lanes;
        self
    }

    fn tracker(&self) -> StateTracker {
        StateTracker::of_kind(self.tracker)
    }
}

/// How a summary's [`Mergeable`](fsc_state::Mergeable) union relates to an
/// unsharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Merge {
    /// Linear/exact structures: the sharded union answers identically to a
    /// single-shard run (given shared seeds).
    Exact,
    /// Counter summaries: the union answers within the algorithm's additive bound.
    Bounded,
    /// No merge support; the summary cannot back a multi-shard engine.
    None,
}

/// Constructor signature of [`AlgorithmSpec::make`].
pub type MakeFn = fn(&MakeCtx) -> Box<dyn Queryable>;

/// Constructor signature of [`AlgorithmSpec::snapshot`] — the same instance behind
/// the persistence face ([`Snapshot`] is object-safe apart from `restore`, which is
/// `Sized`-gated), so experiments can drive `checkpoint`/`checkpoint_delta` across
/// the whole registry without downcasts.
pub type MakeSnapshotFn = fn(&MakeCtx) -> Box<dyn Snapshot>;

/// Engine-factory signature of [`AlgorithmSpec::engine`].
pub type MakeEngineFn = fn(&MakeCtx, EngineConfig) -> Box<dyn DynEngine>;

/// One registry entry (plain function pointers: `Copy`, `'static`, no allocation).
#[derive(Clone, Copy)]
pub struct AlgorithmSpec {
    /// Stable id, matching the algorithm's checkpoint-header id where one exists.
    pub id: &'static str,
    /// Constructs a fresh instance behind the query layer.
    pub make: MakeFn,
    /// Constructs the same instance behind the persistence layer (every production
    /// summary owns its tracker when built standalone, so all entries checkpoint).
    pub snapshot: MakeSnapshotFn,
    /// Constructs a sharded engine over the summary (mergeable summaries only).
    pub engine: Option<MakeEngineFn>,
    /// Merge semantics of the summary's shard union.
    pub merge: Merge,
}

impl std::fmt::Debug for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgorithmSpec")
            .field("id", &self.id)
            .field("merge", &self.merge)
            .field("engine", &self.engine.is_some())
            .finish()
    }
}

// --- constructors (benchmark defaults; keep in sync with BENCH_throughput.json) ----
//
// Each algorithm is constructed in exactly one place; the macro boxes the same
// expression behind both the query face (`make_*`) and the persistence face
// (`snapshot_*`), so the two registry columns can never drift apart.

macro_rules! constructors {
    ($make:ident, $snapshot:ident, |$ctx:ident| $body:expr) => {
        fn $make($ctx: &MakeCtx) -> Box<dyn Queryable> {
            Box::new($body)
        }
        fn $snapshot($ctx: &MakeCtx) -> Box<dyn Snapshot> {
            Box::new($body)
        }
    };
}

constructors!(make_sample_and_hold, snapshot_sample_and_hold, |ctx| {
    SampleAndHold::standalone(
        &Params::new(2.0, 0.2, ctx.universe, ctx.stream_len).with_tracker(ctx.tracker),
    )
});

constructors!(
    make_few_state_heavy_hitters,
    snapshot_few_state_heavy_hitters,
    |ctx| {
        FewStateHeavyHitters::new(
            Params::new(2.0, 0.25, ctx.universe, ctx.stream_len).with_tracker(ctx.tracker),
        )
    }
);

constructors!(make_fp_estimator, snapshot_fp_estimator, |ctx| {
    FpEstimator::new(Params::new(2.0, 0.3, ctx.universe, ctx.stream_len).with_tracker(ctx.tracker))
});

constructors!(
    make_full_sample_and_hold,
    snapshot_full_sample_and_hold,
    |ctx| {
        FullSampleAndHold::standalone(
            &Params::new(2.0, 0.3, ctx.universe, ctx.stream_len).with_tracker(ctx.tracker),
        )
    }
);

constructors!(make_entropy, snapshot_entropy, |ctx| {
    // EntropyFewState derives its Params internally (Full tracker).
    EntropyFewState::new(0.3, ctx.universe, ctx.stream_len, 9)
});

constructors!(make_fp_small, snapshot_fp_small, |ctx| {
    FpSmallEstimator::with_tracker(0.5, 0.4, 6, &ctx.tracker())
});

constructors!(make_sparse_recovery, snapshot_sparse_recovery, |ctx| {
    FewStateSparseRecovery::with_tracker(1 << 12, &ctx.tracker())
});

constructors!(make_misra_gries, snapshot_misra_gries, |ctx| {
    MisraGries::with_tracker(&ctx.tracker(), 20)
});

constructors!(make_space_saving, snapshot_space_saving, |ctx| {
    SpaceSaving::with_tracker(&ctx.tracker(), 20)
});

constructors!(make_count_min, snapshot_count_min, |ctx| {
    let sketch = CountMin::with_tracker(&ctx.tracker(), 1 << 10, 4, 1);
    match ctx.lanes {
        Some(w) => sketch.with_lanes(w),
        None => sketch,
    }
});

constructors!(make_count_sketch, snapshot_count_sketch, |ctx| {
    let sketch = CountSketch::with_tracker(&ctx.tracker(), 1 << 10, 5, 2);
    match ctx.lanes {
        Some(w) => sketch.with_lanes(w),
        None => sketch,
    }
});

constructors!(make_ams, snapshot_ams, |ctx| {
    let sketch = AmsSketch::with_tracker(&ctx.tracker(), 5, 48, 3);
    match ctx.lanes {
        Some(w) => sketch.with_lanes(w),
        None => sketch,
    }
});

constructors!(make_exact_counting, snapshot_exact_counting, |ctx| {
    ExactCounting::with_tracker(&ctx.tracker(), 2.0)
});

constructors!(
    make_sample_and_hold_classic,
    snapshot_sample_and_hold_classic,
    |ctx| SampleAndHoldClassic::with_tracker(&ctx.tracker(), 0.01, 4)
);

constructors!(make_pick_and_drop, snapshot_pick_and_drop, |ctx| {
    PickAndDrop::with_tracker(&ctx.tracker(), 16, 3, 5)
});

// --- engine factories (mergeable summaries; shards share seeds so linear sketches
// merge exactly) ---------------------------------------------------------------

fn engine_count_min(ctx: &MakeCtx, config: EngineConfig) -> Box<dyn DynEngine> {
    let lanes = ctx.lanes;
    Box::new(Engine::new(config, move |_| {
        let sketch = CountMin::with_tracker(&StateTracker::of_kind(config.tracker), 1 << 10, 4, 1);
        match lanes {
            Some(w) => sketch.with_lanes(w),
            None => sketch,
        }
    }))
}

fn engine_count_sketch(ctx: &MakeCtx, config: EngineConfig) -> Box<dyn DynEngine> {
    let lanes = ctx.lanes;
    Box::new(Engine::new(config, move |_| {
        let sketch =
            CountSketch::with_tracker(&StateTracker::of_kind(config.tracker), 1 << 10, 5, 2);
        match lanes {
            Some(w) => sketch.with_lanes(w),
            None => sketch,
        }
    }))
}

fn engine_ams(ctx: &MakeCtx, config: EngineConfig) -> Box<dyn DynEngine> {
    let lanes = ctx.lanes;
    Box::new(Engine::new(config, move |_| {
        let sketch = AmsSketch::with_tracker(&StateTracker::of_kind(config.tracker), 5, 48, 3);
        match lanes {
            Some(w) => sketch.with_lanes(w),
            None => sketch,
        }
    }))
}

fn engine_misra_gries(_ctx: &MakeCtx, config: EngineConfig) -> Box<dyn DynEngine> {
    Box::new(Engine::new(config, |_| {
        MisraGries::with_tracker(&StateTracker::of_kind(config.tracker), 20)
    }))
}

fn engine_space_saving(_ctx: &MakeCtx, config: EngineConfig) -> Box<dyn DynEngine> {
    Box::new(Engine::new(config, |_| {
        SpaceSaving::with_tracker(&StateTracker::of_kind(config.tracker), 20)
    }))
}

fn engine_exact_counting(_ctx: &MakeCtx, config: EngineConfig) -> Box<dyn DynEngine> {
    Box::new(Engine::new(config, |_| {
        ExactCounting::with_tracker(&StateTracker::of_kind(config.tracker), 2.0)
    }))
}

/// Every production algorithm, in the canonical order (the paper's algorithms
/// first, then the baselines — the same grouping `tests/batch_laws.rs` and
/// `tests/snapshot_laws.rs` cover).
pub fn registry() -> Vec<AlgorithmSpec> {
    vec![
        AlgorithmSpec {
            id: "sample_and_hold",
            make: make_sample_and_hold,
            snapshot: snapshot_sample_and_hold,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "full_sample_and_hold",
            make: make_full_sample_and_hold,
            snapshot: snapshot_full_sample_and_hold,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "few_state_heavy_hitters",
            make: make_few_state_heavy_hitters,
            snapshot: snapshot_few_state_heavy_hitters,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "fp_estimator",
            make: make_fp_estimator,
            snapshot: snapshot_fp_estimator,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "fp_small",
            make: make_fp_small,
            snapshot: snapshot_fp_small,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "entropy_few_state",
            make: make_entropy,
            snapshot: snapshot_entropy,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "sparse_recovery",
            make: make_sparse_recovery,
            snapshot: snapshot_sparse_recovery,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "count_min",
            make: make_count_min,
            snapshot: snapshot_count_min,
            engine: Some(engine_count_min),
            merge: Merge::Exact,
        },
        AlgorithmSpec {
            id: "count_sketch",
            make: make_count_sketch,
            snapshot: snapshot_count_sketch,
            engine: Some(engine_count_sketch),
            merge: Merge::Exact,
        },
        AlgorithmSpec {
            id: "ams",
            make: make_ams,
            snapshot: snapshot_ams,
            engine: Some(engine_ams),
            merge: Merge::Exact,
        },
        AlgorithmSpec {
            id: "exact_counting",
            make: make_exact_counting,
            snapshot: snapshot_exact_counting,
            engine: Some(engine_exact_counting),
            merge: Merge::Exact,
        },
        AlgorithmSpec {
            id: "misra_gries",
            make: make_misra_gries,
            snapshot: snapshot_misra_gries,
            engine: Some(engine_misra_gries),
            merge: Merge::Bounded,
        },
        AlgorithmSpec {
            id: "space_saving",
            make: make_space_saving,
            snapshot: snapshot_space_saving,
            engine: Some(engine_space_saving),
            merge: Merge::Bounded,
        },
        AlgorithmSpec {
            id: "sample_and_hold_classic",
            make: make_sample_and_hold_classic,
            snapshot: snapshot_sample_and_hold_classic,
            engine: None,
            merge: Merge::None,
        },
        AlgorithmSpec {
            id: "pick_and_drop",
            make: make_pick_and_drop,
            snapshot: snapshot_pick_and_drop,
            engine: None,
            merge: Merge::None,
        },
    ]
}

/// Looks up one entry by id.
pub fn spec(id: &str) -> Option<AlgorithmSpec> {
    registry().into_iter().find(|s| s.id == id)
}

/// The engine-capable subset (entries with a shard-engine factory).
pub fn engine_specs() -> Vec<AlgorithmSpec> {
    registry()
        .into_iter()
        .filter(|s| s.engine.is_some())
        .collect()
}

/// The registry wired up as an [`fsc_serve::EngineFactory`]: the server resolves
/// tenant algorithm ids against the same constructor table every experiment
/// uses, so a served tenant and a local oracle built from the same id are
/// *twins* — identical geometry and seeds, byte-identical checkpoints — which is
/// what lets the fault-matrix drills assert exact recovery.
///
/// Ids without an engine factory (non-mergeable summaries) resolve to `None`,
/// which the server answers as a typed `UnknownAlgorithm`.
pub fn serve_factory() -> fsc_serve::EngineFactory {
    std::sync::Arc::new(|algorithm, config| {
        let spec = spec(algorithm)?;
        let make_engine = spec.engine?;
        // Workload hints match the benchmark defaults; engine constructors
        // ignore them today (geometry is fixed per entry), but the context is
        // threaded through for parity with the other registry consumers.
        let ctx = MakeCtx::new(1 << 12, 1 << 14).with_tracker(config.tracker);
        Some(make_engine(&ctx, config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsc_engine::Routing;
    use fsc_state::{Answer, Query};
    use fsc_streamgen::zipf::zipf_stream;

    #[test]
    fn every_spec_constructs_ingests_and_answers_without_downcasts() {
        let ctx = MakeCtx::new(1 << 10, 1 << 12);
        let stream = zipf_stream(ctx.universe, 2_000, 1.1, 7);
        let queries = [
            Query::Point(0),
            Query::Moment,
            Query::Entropy,
            Query::Support,
            Query::TrackedItems,
        ];
        for spec in registry() {
            let mut alg = (spec.make)(&ctx);
            alg.process_stream(&stream);
            assert_eq!(alg.report().epochs, 2_000, "{}", spec.id);
            let answered = queries.iter().filter(|q| alg.supports(q)).count();
            assert!(answered >= 1, "{} answers no query at all", spec.id);
            // Unsupported queries answer Unsupported, not panic.
            for q in &queries {
                let _ = alg.query(q);
            }
        }
        assert_eq!(registry().len(), 15, "all production algorithms are listed");
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let specs = registry();
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), specs.len(), "duplicate registry id");
        assert!(spec("count_min").is_some());
        assert!(spec("no_such_algorithm").is_none());
        assert_eq!(engine_specs().len(), 6);
    }

    #[test]
    fn engine_factories_reproduce_single_shard_answers_for_exact_merges() {
        let ctx = MakeCtx::new(1 << 10, 1 << 12);
        let stream = zipf_stream(ctx.universe, 3_000, 1.2, 11);
        for spec in engine_specs() {
            let factory = spec.engine.expect("engine-capable");
            let config = EngineConfig {
                shards: 3,
                routing: Routing::RoundRobin,
                ..EngineConfig::default()
            };
            let mut sharded = factory(&ctx, config);
            let mut single = factory(
                &ctx,
                EngineConfig {
                    shards: 1,
                    ..config
                },
            );
            sharded.ingest(&stream);
            single.ingest(&stream);
            if spec.merge == Merge::Exact {
                for q in [Query::Point(0), Query::Point(1), Query::Moment] {
                    let (a, b) = (sharded.query(&q).unwrap(), single.query(&q).unwrap());
                    if a == Answer::Unsupported {
                        continue;
                    }
                    assert_eq!(a, b, "{}: sharded union must be exact", spec.id);
                }
            }
            // Checkpoint/restore works through the dyn face for every entry.
            let bytes = sharded.checkpoint();
            let mut fresh = factory(&ctx, config);
            fresh.restore_from(&bytes).expect("restore");
            assert_eq!(fresh.report(), sharded.report(), "{}", spec.id);
        }
    }
}
