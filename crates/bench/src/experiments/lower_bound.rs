//! Experiment F5 — the state-change lower bound (Theorems 1.2 and 1.4), empirically.
//!
//! For each universe size `n`, we generate the adversarial pair `(S_1, S_2)`
//! (one planted block of a repeated item vs. a pure permutation), and ask estimators
//! with a hard state-change budget to distinguish them via their `F_p` estimates
//! (`S_1` has roughly twice the moment of `S_2`).  The theorems predict a phase
//! transition: budgets well below `n^{1−1/p}/2` cannot distinguish the pair, budgets
//! above it can.  The paper's own (unbudgeted) estimator is included as a reference —
//! its natural state-change count sits above the threshold, as Theorem 1.3 requires.

use fsc::{BudgetedAlgorithm, FpEstimator, Params};
use fsc_state::{MomentEstimator, StreamAlgorithm};
use fsc_streamgen::lower_bound::moment_lower_bound_pair;

use crate::table::{f, Table};
use crate::Scale;

/// Result of one (n, budget) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Universe size / stream length.
    pub n: usize,
    /// State-change budget, as a multiple of `n^{1−1/p}`.
    pub budget_multiplier: f64,
    /// Absolute budget.
    pub budget: u64,
    /// Fraction of trials where the budgeted estimator reported
    /// `F̂_p(S_1)/F̂_p(S_2) ≥ 1.5`.
    pub distinguish_rate: f64,
}

/// Runs the lower-bound experiment for `p = 2`.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let p = 2.0;
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1 << 10, 1 << 12],
        Scale::Full => vec![1 << 12, 1 << 14, 1 << 16],
    };
    let trials = scale.pick(3, 7);
    // The last entry stands for "no budget at all" (the paper's own algorithm, whose
    // natural Õ(n^{1−1/p}·polylog) state-change count sits above the threshold).
    let multipliers = [0.05, 0.25, 1.0, 4.0, f64::INFINITY];

    let mut rows = Vec::new();
    let mut table = Table::new(
        "F5 — distinguishing the Theorem 1.4 stream pair under a state-change budget (p = 2)",
        &[
            "n",
            "n^{1-1/p}",
            "budget multiplier",
            "budget",
            "distinguish rate",
        ],
    );

    for &n in &sizes {
        let threshold = (n as f64).powf(1.0 - 1.0 / p);
        for &mult in &multipliers {
            let budget = if mult.is_infinite() {
                u64::MAX
            } else {
                (mult * threshold).ceil().max(1.0) as u64
            };
            let mut distinguished = 0usize;
            for trial in 0..trials {
                let pair = moment_lower_bound_pair(n, p, 5000 + trial as u64);
                let params = Params::new(p, 0.3, n, n).with_seed(31 + trial as u64);
                let est_1 = run_budgeted(&params, budget, &pair.s1);
                let est_2 = run_budgeted(&params, budget, &pair.s2);
                if est_2 > 0.0 && est_1 / est_2 >= 1.5 {
                    distinguished += 1;
                }
            }
            let rate = distinguished as f64 / trials as f64;
            table.row(vec![
                n.to_string(),
                f(threshold),
                if mult.is_infinite() {
                    "unbudgeted".into()
                } else {
                    f(mult)
                },
                if mult.is_infinite() {
                    "-".into()
                } else {
                    budget.to_string()
                },
                f(rate),
            ]);
            rows.push(Row {
                n,
                budget_multiplier: mult,
                budget,
                distinguish_rate: rate,
            });
        }
    }
    (table, rows)
}

fn run_budgeted(params: &Params, budget: u64, stream: &[u64]) -> f64 {
    let mut alg = BudgetedAlgorithm::new(FpEstimator::new(params.clone()), budget);
    alg.process_stream(stream);
    alg.estimate_moment()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_budgets_fail_and_generous_budgets_succeed() {
        let (_, rows) = run(Scale::Quick);
        // For every n, the smallest budget must distinguish strictly less often than
        // the largest one, and the largest budget must usually succeed.
        for n in rows
            .iter()
            .map(|r| r.n)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let per_n: Vec<&Row> = rows.iter().filter(|r| r.n == n).collect();
            let smallest = per_n.first().unwrap();
            let largest = per_n.last().unwrap();
            assert!(
                smallest.distinguish_rate <= largest.distinguish_rate,
                "n={n}: {} vs {}",
                smallest.distinguish_rate,
                largest.distinguish_rate
            );
            assert!(
                largest.distinguish_rate >= 0.6,
                "n={n} largest budget should succeed"
            );
            assert!(
                smallest.distinguish_rate <= 0.4,
                "n={n} tiny budget should fail"
            );
        }
    }
}
