//! Experiment F3 — accuracy of the `F_p` estimator versus `ε` (Theorem 1.3's
//! `(1±ε)` guarantee), with the AMS sketch as the classic write-heavy reference for
//! `p = 2`.

use fsc::{FpEstimator, Params};
use fsc_baselines::AmsSketch;
use fsc_state::{MomentEstimator, StreamAlgorithm};
use fsc_streamgen::zipf::zipf_stream;
use fsc_streamgen::FrequencyVector;

use crate::sharded::parallel_map;
use crate::table::{f, Table};
use crate::Scale;

/// One measured accuracy point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Moment order.
    pub p: f64,
    /// Target accuracy `ε`.
    pub eps: f64,
    /// Measured relative error of the few-state-changes estimator (median of repeats).
    pub rel_error: f64,
    /// Its measured state changes.
    pub state_changes: u64,
    /// Relative error of the AMS reference (only for `p = 2`).
    pub ams_rel_error: Option<f64>,
    /// State changes of the AMS reference (only for `p = 2`).
    pub ams_state_changes: Option<u64>,
}

/// Runs the accuracy sweep serially.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    run_with_threads(scale, 1)
}

/// Runs the accuracy sweep with up to `threads` worker threads.  Each `(p, ε)` grid
/// cell is an independent deterministic computation (own estimator, own seeds), so the
/// rows — and therefore the table — are identical at every thread count.
pub fn run_with_threads(scale: Scale, threads: usize) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 12, 1 << 14);
    let m = 4 * n;
    let repeats = scale.pick(1, 3);
    let eps_values = [0.1, 0.2, 0.3];
    let ps = [1.0, 2.0, 3.0];
    let stream = zipf_stream(n, m, 1.2, 77);
    let truth = FrequencyVector::from_stream(&stream);

    let grid: Vec<(f64, f64)> = ps
        .iter()
        .flat_map(|&p| eps_values.iter().map(move |&eps| (p, eps)))
        .collect();
    let rows = parallel_map(grid, threads, |_, (p, eps)| {
        let exact = truth.fp(p);
        let mut errors = Vec::new();
        let mut changes = Vec::new();
        for rep in 0..repeats {
            let mut est = FpEstimator::new(Params::new(p, eps, n, m).with_seed(900 + rep as u64));
            est.process_stream(&stream);
            errors.push((est.estimate_moment() - exact).abs() / exact);
            changes.push(est.report().state_changes);
        }
        errors.sort_by(f64::total_cmp);
        let rel_error = errors[errors.len() / 2];
        let state_changes = changes[changes.len() / 2];

        let (ams_rel_error, ams_state_changes) = if (p - 2.0).abs() < 1e-9 {
            let mut ams = AmsSketch::for_error(eps, 0.1, 5);
            ams.process_stream(&stream);
            (
                Some((ams.estimate_moment() - exact).abs() / exact),
                Some(ams.report().state_changes),
            )
        } else {
            (None, None)
        };

        Row {
            p,
            eps,
            rel_error,
            state_changes,
            ams_rel_error,
            ams_state_changes,
        }
    });

    let mut table = Table::new(
        &format!("F3 — relative error of F_p estimation (Zipf 1.2, n = {n}, m = {m})"),
        &[
            "p",
            "eps",
            "rel. error (ours)",
            "state changes (ours)",
            "rel. error (AMS)",
            "state changes (AMS)",
        ],
    );
    for r in &rows {
        table.row(vec![
            f(r.p),
            f(r.eps),
            f(r.rel_error),
            r.state_changes.to_string(),
            r.ams_rel_error.map(f).unwrap_or_else(|| "-".into()),
            r.ams_state_changes
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_bounded_and_ams_writes_more() {
        let (_, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.rel_error < 2.0 * row.eps + 0.15,
                "p={} eps={} error {}",
                row.p,
                row.eps,
                row.rel_error
            );
            if let Some(ams_changes) = row.ams_state_changes {
                assert!(row.state_changes < ams_changes);
            }
        }
    }
}
