//! Experiment F9 — simulated NVM cost (Section 1.1 motivation).
//!
//! The state-change counts of experiment T1 are converted into simulated write energy
//! and device wear under three memory-technology profiles (DRAM, PCM-like NVM, NAND
//! flash).  The algorithms are identical in accuracy terms (see F4); the point of this
//! table is that on write-asymmetric memory the paper's algorithm pays an order of
//! magnitude less write energy, and that a per-cell wear analysis of its hottest cell
//! stays far from the endurance budget.

use fsc::{Params, SampleAndHold};
use fsc_baselines::{CountMin, MisraGries, SpaceSaving};
use fsc_state::{NvmCostModel, NvmReport, StateReport, StateTracker, StreamAlgorithm};
use fsc_streamgen::zipf::zipf_stream;

use crate::table::{f, Table};
use crate::Scale;

/// Simulated memory cost of one algorithm under one technology profile.
#[derive(Debug, Clone)]
pub struct Row {
    /// Algorithm name.
    pub name: String,
    /// Memory technology profile.
    pub model: &'static str,
    /// Total simulated write energy (µJ).
    pub write_energy_uj: f64,
    /// Fraction of total memory energy spent on writes.
    pub write_energy_fraction: f64,
    /// Wear of the hottest tracked cell as a fraction of endurance (if tracked).
    pub max_cell_wear: Option<f64>,
}

/// Runs the NVM cost comparison.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let n = scale.pick(1 << 13, 1 << 15);
    let m = 4 * n;
    let stream = zipf_stream(n, m, 1.1, 555);
    let models = [
        NvmCostModel::dram(),
        NvmCostModel::pcm(),
        NvmCostModel::nand_flash(),
    ];

    // Baselines with their built-in trackers.
    let mut reports: Vec<(String, StateReport)> = Vec::new();
    let mut mg = MisraGries::for_epsilon(0.05);
    mg.process_stream(&stream);
    reports.push((mg.name().to_string(), mg.report()));
    let mut ss = SpaceSaving::for_epsilon(0.05);
    ss.process_stream(&stream);
    reports.push((ss.name().to_string(), ss.report()));
    let mut cm = CountMin::for_error(0.05, 0.05, 3);
    cm.process_stream(&stream);
    reports.push((cm.name().to_string(), cm.report()));

    // The paper's algorithm with per-cell wear tracking enabled.
    let params = Params::new(2.0, 0.2, n, m).with_seed(5);
    let tracker = StateTracker::with_address_tracking();
    let mut ours = SampleAndHold::new(&params, m, &tracker, 5);
    ours.process_stream(&stream);
    reports.push((format!("{} (wear-tracked)", ours.name()), ours.report()));

    let mut rows = Vec::new();
    let mut table = Table::new(
        &format!("F9 — simulated memory cost on a Zipf(1.1) stream (n = {n}, m = {m})"),
        &[
            "algorithm",
            "memory",
            "write energy (µJ)",
            "write share of energy",
            "max cell wear",
        ],
    );
    for (name, report) in &reports {
        for model in &models {
            let nvm = NvmReport::from_state(report, model);
            let row = Row {
                name: name.clone(),
                model: model.name,
                write_energy_uj: nvm.write_energy_nj / 1e3,
                write_energy_fraction: nvm.write_energy_fraction(),
                max_cell_wear: nvm.max_cell_wear_fraction,
            };
            table.row(vec![
                row.name.clone(),
                row.model.to_string(),
                f(row.write_energy_uj),
                f(row.write_energy_fraction),
                row.max_cell_wear.map(f).unwrap_or_else(|| "-".into()),
            ]);
            rows.push(row);
        }
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_algorithm_spends_less_write_energy_on_asymmetric_memory() {
        let (_, rows) = run(Scale::Quick);
        let nand = |name_part: &str| {
            rows.iter()
                .find(|r| r.name.contains(name_part) && r.model == "NAND-flash")
                .unwrap()
        };
        let ours = nand("SampleAndHold");
        let mg = nand("MisraGries");
        let cm = nand("CountMin");
        assert!(ours.write_energy_uj < 0.7 * mg.write_energy_uj);
        assert!(ours.write_energy_uj < 0.5 * cm.write_energy_uj);
        assert!(ours.max_cell_wear.is_some());
        assert!(
            ours.max_cell_wear.unwrap() < 1.0,
            "a single run must not wear out a cell"
        );
        // On DRAM (symmetric), writes are a smaller share of total energy than on NAND.
        let ours_dram = rows
            .iter()
            .find(|r| r.name.contains("SampleAndHold") && r.model == "DRAM")
            .unwrap();
        assert!(ours_dram.write_energy_fraction <= ours.write_energy_fraction);
    }
}
