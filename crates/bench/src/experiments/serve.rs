//! Experiment F13 — the cached serving view under mixed read/write load.
//!
//! The paper's complexity measure says state changes are scarce; PR 7 turns that
//! into a serve-path economy: [`fsc_engine::Engine::query`] answers from a
//! generation-stamped cached view that is rebuilt only when a *state change*
//! lands, so serve cost tracks the paper's curve, not query volume.  This
//! experiment measures that from three angles:
//!
//! * **Ratio sweep** ([`run`]) — every engine-capable registry entry ingests the
//!   same Zipf stream at several read:write ratios (cached point queries per
//!   ingested batch).  Queries/sec and view rebuilds are recorded per cell; the
//!   law the sweep pins is that **rebuild counts are identical across ratios**
//!   — 64× more queries, same rebuilds — because rebuilds are driven by the
//!   staleness generation, never by reads.
//! * **Staleness sweep** ([`staleness`]) — the **entire** 15-algorithm registry
//!   standalone: each instance ingests a uniform stream in fixed windows, and a
//!   window is *dirty* (a cached view would rebuild) iff the tracker's
//!   [`state_change_generation`](fsc_state::StateTracker::state_change_generation)
//!   moved during it.  Write-heavy baselines dirty every window; the paper's
//!   few-state algorithms go quiet once their state stops changing — the
//!   headline ratio [`headline_check`] guards.
//! * **Concurrent driver** ([`concurrent`]) — reader threads hammer
//!   [`ServeHandle::serve`](fsc_engine::ServeHandle::serve) on shared handles
//!   while the writer thread ingests and republishes between batches; at
//!   quiescence the handle answers must equal a fresh merged rebuild.  (On the
//!   1-CPU CI container the reader threads timeshare with the writer, so the
//!   recorded served-query counts measure scheduling, not peak QPS — the
//!   queries/sec record comes from the single-threaded ratio sweep.)
//!
//! The machine-readable record `BENCH_serve.json` carries a `trajectory` array
//! like the throughput record: one dated entry per recording, appended by
//! `fig_serve`, never overwritten.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fsc_engine::{DynEngine, EngineConfig, Routing};
use fsc_state::Query;
use fsc_streamgen::uniform::uniform_stream;
use fsc_streamgen::zipf::zipf_stream;

use crate::experiments::engine::FEW_STATE_IDS;
use crate::registry::{engine_specs, registry, AlgorithmSpec, MakeCtx};
use crate::table::{f, Table};
use crate::Scale;

/// Shards the sweep engines run (matches F12).
pub const SHARDS: usize = 4;

/// Cached point queries issued per ingested batch, one sweep per value — the
/// read:write axis.
pub const READS_PER_BATCH: [usize; 3] = [4, 32, 256];

/// Ingest windows of the registry-wide staleness sweep.
pub const STALENESS_WINDOWS: usize = 64;

/// Reader threads of the concurrent driver.
pub const READERS: usize = 2;

/// One measured (algorithm, read:write ratio) cell of the ratio sweep.
#[derive(Debug, Clone)]
pub struct Row {
    /// Registry id.
    pub id: &'static str,
    /// Display name (shard 0's `StreamAlgorithm::name`).
    pub algorithm: String,
    /// Cached queries issued per ingested batch.
    pub reads_per_batch: usize,
    /// Ingest batch size.
    pub batch: usize,
    /// Updates ingested.
    pub updates: usize,
    /// Cached queries answered.
    pub queries: usize,
    /// Wall-clock seconds spent inside the query loop (ingest excluded).
    pub query_secs: f64,
    /// `queries / query_secs`.
    pub queries_per_sec: f64,
    /// Times the serving view was (re)built over the run.
    pub rebuilds: u64,
    /// Batches after which [`DynEngine::generation`] had moved — the upper bound
    /// rebuilds can ever reach.
    pub dirty_batches: u64,
    /// Final staleness generation.
    pub generation: u64,
    /// Combined state changes across shards.
    pub state_changes: u64,
    /// Whether every probe's cached answer equalled `query_fresh` at the end.
    pub answers_match: bool,
}

/// One algorithm's windowed-staleness record from the registry-wide sweep.
#[derive(Debug, Clone)]
pub struct StaleRow {
    /// Registry id.
    pub id: &'static str,
    /// Display name.
    pub algorithm: String,
    /// Updates ingested.
    pub updates: usize,
    /// Ingest windows observed.
    pub windows: usize,
    /// Windows in which the staleness generation moved (a cached view serving
    /// this summary would have rebuilt once per dirty window).
    pub dirty_windows: usize,
    /// Tracker-audited state changes over the run.
    pub state_changes: u64,
    /// Final staleness generation.
    pub generation: u64,
}

impl StaleRow {
    /// Dirty windows as a fraction of all windows — the serve-side persistence
    /// ratio, 1.0 meaning "every window would rebuild".
    pub fn rebuild_fraction(&self) -> f64 {
        self.dirty_windows as f64 / self.windows.max(1) as f64
    }
}

/// One engine's record from the concurrent read/write driver.
#[derive(Debug, Clone)]
pub struct ConcurrentRow {
    /// Registry id.
    pub id: &'static str,
    /// Display name.
    pub algorithm: String,
    /// Reader threads that hammered the handle.
    pub readers: usize,
    /// Updates the writer ingested while readers were live.
    pub updates: usize,
    /// Queries the readers answered from published snapshots.
    pub served: u64,
    /// Times the view was (re)built (writer-side refreshes).
    pub rebuilds: u64,
    /// Whether every probe's handle answer equalled a fresh merged rebuild at
    /// quiescence.
    pub quiescent_match: bool,
}

fn probes(universe: usize) -> Vec<Query> {
    (0..64.min(universe as u64)).map(Query::Point).collect()
}

/// Runs one (spec, reads-per-batch) cell of the ratio sweep.
fn run_cell(spec: &AlgorithmSpec, reads_per_batch: usize, scale: Scale) -> Row {
    let factory = spec.engine.expect("engine-capable spec");
    let n = scale.pick(1 << 10, 1 << 14);
    let m = scale.pick(6_000, 120_000);
    let batch = 1_024usize;
    let ctx = MakeCtx::new(n, m);
    let config = EngineConfig {
        shards: SHARDS,
        routing: Routing::RoundRobin,
        ..EngineConfig::default()
    };
    let mut engine = factory(&ctx, config);
    let stream = zipf_stream(n, m, 1.1, 23);
    let probes = probes(n);

    let mut queries = 0usize;
    let mut query_secs = 0.0f64;
    let mut dirty_batches = 0u64;
    let mut generation = engine.generation();
    for chunk in stream.chunks(batch) {
        engine.ingest(chunk);
        let now = engine.generation();
        if now != generation {
            dirty_batches += 1;
            generation = now;
        }
        let started = Instant::now();
        for i in 0..reads_per_batch {
            let answer = engine
                .query(&probes[i % probes.len()])
                .expect("cached query");
            std::hint::black_box(answer);
        }
        query_secs += started.elapsed().as_secs_f64();
        queries += reads_per_batch;
    }

    let answers_match = probes
        .iter()
        .all(|q| engine.query(q).expect("cached") == engine.query_fresh(q).expect("fresh oracle"));

    Row {
        id: spec.id,
        algorithm: engine.algorithm(),
        reads_per_batch,
        batch,
        updates: stream.len(),
        queries,
        query_secs,
        queries_per_sec: queries as f64 / query_secs.max(1e-9),
        rebuilds: engine.view_rebuilds(),
        dirty_batches,
        generation: engine.generation(),
        state_changes: engine.report().state_changes,
        answers_match,
    }
}

/// Runs the (engine-capable algorithms × read:write ratios) sweep.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let mut rows = Vec::new();
    for spec in engine_specs() {
        for reads in READS_PER_BATCH {
            rows.push(run_cell(&spec, reads, scale));
        }
    }
    let mut table = Table::new(
        &format!(
            "F13 — cached serving view ({SHARDS} shards): queries/sec and rebuilds \
             across read:write ratios"
        ),
        &[
            "algorithm",
            "reads/batch",
            "updates",
            "queries",
            "queries/sec",
            "rebuilds",
            "dirty batches",
            "state changes",
            "answers ok",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.algorithm.clone(),
            r.reads_per_batch.to_string(),
            r.updates.to_string(),
            r.queries.to_string(),
            format!("{:.0}", r.queries_per_sec),
            r.rebuilds.to_string(),
            r.dirty_batches.to_string(),
            r.state_changes.to_string(),
            r.answers_match.to_string(),
        ]);
    }
    (table, rows)
}

/// Sweeps the **entire** registry standalone: each instance ingests one uniform
/// stream in [`STALENESS_WINDOWS`] windows, marking a window dirty iff the
/// tracker's staleness generation moved during it.  Uniform traffic maximizes
/// distinct arrivals, the stress case for staying quiet — write-heavy baselines
/// dirty every window regardless, while a few-state summary's clock goes silent
/// once its state stops changing.
pub fn staleness(scale: Scale) -> Vec<StaleRow> {
    let n = scale.pick(256, 1 << 14);
    let m: usize = scale.pick(6_000, 120_000);
    let window = m.div_ceil(STALENESS_WINDOWS).max(1);
    let stream = uniform_stream(n, m, 29);
    let ctx = MakeCtx::new(n, m);
    registry()
        .iter()
        .map(|spec| {
            let mut alg = (spec.make)(&ctx);
            let mut stamp = alg.tracker().state_change_generation();
            let mut windows = 0usize;
            let mut dirty_windows = 0usize;
            let mut updates = 0usize;
            for chunk in stream.chunks(window) {
                alg.process_stream(chunk);
                updates += chunk.len();
                windows += 1;
                let generation = alg.tracker().state_change_generation();
                if generation != stamp {
                    dirty_windows += 1;
                    stamp = generation;
                }
            }
            let report = alg.report();
            StaleRow {
                id: spec.id,
                algorithm: alg.name().to_string(),
                updates,
                windows,
                dirty_windows,
                state_changes: report.state_changes,
                generation: stamp,
            }
        })
        .collect()
}

/// Renders the staleness sweep as a table (printed by `fig_serve` next to the
/// ratio sweep).
pub fn staleness_table(rows: &[StaleRow]) -> Table {
    let mut table = Table::new(
        &format!(
            "F13 — windowed staleness across the registry ({STALENESS_WINDOWS} ingest \
             windows, uniform traffic): windows a cached view would rebuild in"
        ),
        &[
            "algorithm",
            "updates",
            "windows",
            "dirty windows",
            "rebuild fraction",
            "state changes",
        ],
    );
    for r in rows {
        table.row(vec![
            r.algorithm.clone(),
            r.updates.to_string(),
            r.windows.to_string(),
            r.dirty_windows.to_string(),
            f(r.rebuild_fraction()),
            r.state_changes.to_string(),
        ]);
    }
    table
}

/// Drives one boxed engine through the mixed read/write pattern: [`READERS`]
/// threads answer point queries from a shared
/// [`ServeHandle`](fsc_engine::ServeHandle) while the calling thread ingests
/// `stream` in `batch`-sized chunks, republishing the view after each batch.
fn drive_mixed(
    engine: &mut Box<dyn DynEngine>,
    stream: &[u64],
    batch: usize,
    probes: &[Query],
) -> (u64, bool) {
    let handle = engine.serve_handle();
    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let handle = Arc::clone(&handle);
            let (stop, served) = (&stop, &served);
            scope.spawn(move || {
                let mut at = reader as u64;
                while !stop.load(Ordering::Relaxed) {
                    if handle.serve(&Query::Point(at % 64)).is_some() {
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    at += 1;
                }
                // One quiescent read after the stop flag: the writer has
                // published by now, so even a reader the 1-CPU scheduler never
                // ran concurrently with the writer serves at least once.
                if handle.serve(&Query::Point(at % 64)).is_some() {
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for chunk in stream.chunks(batch.max(1)) {
            engine.ingest(chunk);
            engine.refresh_view().expect("writer-side republish");
        }
        stop.store(true, Ordering::Relaxed);
    });
    let quiescent_match = probes.iter().all(|q| match engine.query_fresh(q) {
        Ok(fresh) => handle.serve(q) == Some(fresh),
        Err(_) => false,
    });
    (served.load(Ordering::Relaxed), quiescent_match)
}

/// Runs the concurrent read/write driver over every engine-capable entry.
pub fn concurrent(scale: Scale) -> Vec<ConcurrentRow> {
    let n = scale.pick(1 << 10, 1 << 14);
    let m = scale.pick(6_000, 60_000);
    let ctx = MakeCtx::new(n, m);
    let stream = zipf_stream(n, m, 1.1, 31);
    let probes = probes(n);
    engine_specs()
        .iter()
        .map(|spec| {
            let factory = spec.engine.expect("engine-capable spec");
            let mut engine = factory(
                &ctx,
                EngineConfig {
                    shards: SHARDS,
                    routing: Routing::RoundRobin,
                    ..EngineConfig::default()
                },
            );
            let (served, quiescent_match) = drive_mixed(&mut engine, &stream, 2_048, &probes);
            ConcurrentRow {
                id: spec.id,
                algorithm: engine.algorithm(),
                readers: READERS,
                updates: stream.len(),
                served,
                rebuilds: engine.view_rebuilds(),
                quiescent_match,
            }
        })
        .collect()
}

/// Renders the concurrent-driver rows as a table.
pub fn concurrent_table(rows: &[ConcurrentRow]) -> Table {
    let mut table = Table::new(
        &format!("F13 — {READERS} reader threads serving cached views during ingest"),
        &[
            "algorithm",
            "readers",
            "updates",
            "served",
            "rebuilds",
            "quiescent ok",
        ],
    );
    for r in rows {
        table.row(vec![
            r.algorithm.clone(),
            r.readers.to_string(),
            r.updates.to_string(),
            r.served.to_string(),
            r.rebuilds.to_string(),
            r.quiescent_match.to_string(),
        ]);
    }
    table
}

/// Fails if any ratio-sweep cell violated the serving-view laws: cached answers
/// must equal the fresh oracle, rebuilds can never exceed the dirty-batch count
/// (the generation-bump bound), and — the cache's whole point — rebuild counts
/// must be **identical across read:write ratios** for each algorithm.
pub fn serve_check(rows: &[Row]) -> Result<(), String> {
    for r in rows {
        if !r.answers_match {
            return Err(format!(
                "{} at {} reads/batch: cached answers diverged from query_fresh",
                r.id, r.reads_per_batch
            ));
        }
        if r.rebuilds > r.dirty_batches {
            return Err(format!(
                "{} at {} reads/batch: {} rebuilds exceed {} generation bumps",
                r.id, r.reads_per_batch, r.rebuilds, r.dirty_batches
            ));
        }
        if r.queries == 0 || r.rebuilds == 0 {
            return Err(format!(
                "{} at {} reads/batch: degenerate cell ({} queries, {} rebuilds)",
                r.id, r.reads_per_batch, r.queries, r.rebuilds
            ));
        }
    }
    for spec in engine_specs() {
        let counts: Vec<u64> = rows
            .iter()
            .filter(|r| r.id == spec.id)
            .map(|r| r.rebuilds)
            .collect();
        if counts.windows(2).any(|w| w[0] != w[1]) {
            return Err(format!(
                "{}: rebuild counts vary across read:write ratios ({counts:?}) — \
                 rebuilds must track state changes, not queries",
                spec.id
            ));
        }
    }
    Ok(())
}

/// Fails if any concurrent-driver row broke quiescence equality or served
/// nothing at all.
pub fn concurrent_check(rows: &[ConcurrentRow]) -> Result<(), String> {
    for r in rows {
        if !r.quiescent_match {
            return Err(format!(
                "{}: handle answers diverged from a fresh rebuild at quiescence",
                r.id
            ));
        }
        if r.served == 0 {
            return Err(format!("{}: readers answered no query at all", r.id));
        }
        if r.rebuilds == 0 {
            return Err(format!("{}: the writer never published a view", r.id));
        }
    }
    Ok(())
}

/// The headline guard: the best few-state algorithm must rebuild at most
/// `threshold` times as often as the **worst-case write-heavy baseline** at
/// equal ingest, and that baseline must actually be write-heavy (dirtying
/// nearly every window).  Full-scale runs use `0.1` — the paper's
/// orders-of-magnitude claim; `--quick` uses `0.5` because the reduced stream
/// barely outlives the few-state algorithms' warm-up.
pub fn headline_check(rows: &[StaleRow], threshold: f64) -> Result<(), String> {
    let best_few_state = rows
        .iter()
        .filter(|r| FEW_STATE_IDS.contains(&r.id))
        .min_by_key(|r| r.dirty_windows)
        .ok_or("no few-state rows in the staleness sweep")?;
    let worst_baseline = rows
        .iter()
        .filter(|r| !FEW_STATE_IDS.contains(&r.id))
        .max_by_key(|r| r.dirty_windows)
        .ok_or("no baseline rows in the staleness sweep")?;
    if (worst_baseline.dirty_windows as f64) < 0.9 * worst_baseline.windows as f64 {
        return Err(format!(
            "write-heavy baseline {} dirtied only {}/{} windows — the comparison \
             basis is broken",
            worst_baseline.id, worst_baseline.dirty_windows, worst_baseline.windows
        ));
    }
    let bound = threshold * worst_baseline.dirty_windows as f64;
    if best_few_state.dirty_windows as f64 > bound {
        return Err(format!(
            "{} rebuilt in {}/{} windows — more than {threshold} of baseline {}'s {} \
             (few-state rebuilds must track state changes, not ingest)",
            best_few_state.id,
            best_few_state.dirty_windows,
            best_few_state.windows,
            worst_baseline.id,
            worst_baseline.dirty_windows
        ));
    }
    Ok(())
}

/// The headline scale factor for a run's scale (see [`headline_check`]).
pub fn headline_threshold(scale: Scale) -> f64 {
    scale.pick(0.5, 0.1)
}

/// Renders the three sweeps as the `BENCH_serve.json` record (hand-rolled, like
/// the throughput and engine records: the workspace is offline and carries no
/// serde).
pub fn to_json(
    scale: Scale,
    rows: &[Row],
    stale: &[StaleRow],
    threads: &[ConcurrentRow],
    trajectory: &[String],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"serve\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        scale.pick("Quick", "Full")
    ));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str(&format!(
        "  \"reads_per_batch\": [{}],\n",
        READS_PER_BATCH.map(|r| r.to_string()).join(", ")
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"id\": \"{}\", \"reads_per_batch\": {}, \
             \"batch\": {}, \"updates\": {}, \"queries\": {}, \"query_secs\": {:.6}, \
             \"queries_per_sec\": {:.0}, \"rebuilds\": {}, \"dirty_batches\": {}, \
             \"generation\": {}, \"state_changes\": {}, \"answers_match\": {}}}{}\n",
            r.algorithm,
            r.id,
            r.reads_per_batch,
            r.batch,
            r.updates,
            r.queries,
            r.query_secs,
            r.queries_per_sec,
            r.rebuilds,
            r.dirty_batches,
            r.generation,
            r.state_changes,
            r.answers_match,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"staleness\": [\n");
    for (i, r) in stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"id\": \"{}\", \"updates\": {}, \
             \"windows\": {}, \"dirty_windows\": {}, \"rebuild_fraction\": {:.6}, \
             \"state_changes\": {}, \"generation\": {}}}{}\n",
            r.algorithm,
            r.id,
            r.updates,
            r.windows,
            r.dirty_windows,
            r.rebuild_fraction(),
            r.state_changes,
            r.generation,
            if i + 1 < stale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"concurrent\": [\n");
    for (i, r) in threads.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"algorithm\": \"{}\", \"id\": \"{}\", \"readers\": {}, \
             \"updates\": {}, \"served\": {}, \"rebuilds\": {}, \"quiescent_match\": {}}}{}\n",
            r.algorithm,
            r.id,
            r.readers,
            r.updates,
            r.served,
            r.rebuilds,
            r.quiescent_match,
            if i + 1 < threads.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"trajectory\": [\n");
    for (i, entry) in trajectory.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            entry.trim(),
            if i + 1 < trajectory.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One dated trajectory entry: the CountMin cached-QPS headline at the highest
/// read ratio, plus the staleness extremes the headline check compares.
pub fn trajectory_entry(
    date: &str,
    label: &str,
    scale: Scale,
    rows: &[Row],
    stale: &[StaleRow],
) -> String {
    let sanitize = |text: &str| -> String {
        text.chars()
            .map(|c| match c {
                '"' | '\\' | '[' | ']' => '_',
                c if c.is_control() => '_',
                c => c,
            })
            .collect()
    };
    let (date, label) = (sanitize(date), sanitize(label));
    let headline = rows
        .iter()
        .filter(|r| r.id == "count_min")
        .max_by_key(|r| r.reads_per_batch);
    let qps = headline
        .map(|r| format!("{:.0}", r.queries_per_sec))
        .unwrap_or_else(|| "null".to_string());
    let rebuilds = headline
        .map(|r| r.rebuilds.to_string())
        .unwrap_or_else(|| "null".to_string());
    let fraction = |few_state: bool, pick: fn(f64, f64) -> f64| {
        stale
            .iter()
            .filter(|r| FEW_STATE_IDS.contains(&r.id) == few_state)
            .map(StaleRow::rebuild_fraction)
            .reduce(pick)
            .map(|v| format!("{v:.4}"))
            .unwrap_or_else(|| "null".to_string())
    };
    format!(
        "{{\"date\": \"{date}\", \"label\": \"{label}\", \"scale\": \"{}\", \
         \"countmin_cached_qps\": {qps}, \"countmin_rebuilds\": {rebuilds}, \
         \"best_few_state_rebuild_fraction\": {}, \"worst_baseline_rebuild_fraction\": {}}}",
        scale.pick("Quick", "Full"),
        fraction(true, f64::min),
        fraction(false, f64::max),
    )
}

/// Structural check of the emitted JSON (mirrors the throughput and engine
/// schema checks: a malformed record fails CI instead of silently rotting).
pub fn schema_check(json: &str) -> Result<(), String> {
    for key in [
        "\"experiment\": \"serve\"",
        "\"scale\":",
        "\"shards\":",
        "\"reads_per_batch\":",
        "\"rows\":",
        "\"queries_per_sec\":",
        "\"rebuilds\":",
        "\"dirty_batches\":",
        "\"answers_match\": true",
        "\"staleness\":",
        "\"dirty_windows\":",
        "\"rebuild_fraction\":",
        "\"concurrent\":",
        "\"quiescent_match\": true",
        "\"trajectory\":",
        "\"date\":",
    ] {
        if !json.contains(key) {
            return Err(format!("BENCH_serve.json is missing {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ratio_sweep_covers_every_engine_spec_and_holds_the_laws() {
        let (table, rows) = run(Scale::Quick);
        assert_eq!(rows.len(), engine_specs().len() * READS_PER_BATCH.len());
        assert_eq!(table.len(), rows.len());
        serve_check(&rows).expect("serving-view laws must hold");
        for r in &rows {
            assert!(r.queries_per_sec > 0.0, "{}", r.id);
            assert!(
                r.generation >= r.rebuilds,
                "{}: more rebuilds than generation ticks",
                r.id
            );
        }
    }

    #[test]
    fn quick_staleness_sweep_covers_the_registry_and_tells_the_papers_story() {
        let rows = staleness(Scale::Quick);
        assert_eq!(rows.len(), registry().len());
        assert_eq!(staleness_table(&rows).len(), rows.len());
        headline_check(&rows, headline_threshold(Scale::Quick))
            .expect("few-state serving must go quiet");
        for r in &rows {
            assert_eq!(r.windows, STALENESS_WINDOWS, "{}", r.id);
            assert!(r.dirty_windows <= r.windows, "{}", r.id);
        }
    }

    #[test]
    fn quick_concurrent_driver_serves_during_ingest_and_agrees_at_quiescence() {
        let rows = concurrent(Scale::Quick);
        assert_eq!(rows.len(), engine_specs().len());
        assert_eq!(concurrent_table(&rows).len(), rows.len());
        concurrent_check(&rows).expect("concurrent serving laws must hold");
    }

    #[test]
    fn json_record_passes_its_own_schema_check() {
        let (_, rows) = run(Scale::Quick);
        let stale = staleness(Scale::Quick);
        let threads = concurrent(Scale::Quick);
        let entry = trajectory_entry("2026-01-01", "test", Scale::Quick, &rows, &stale);
        let json = to_json(Scale::Quick, &rows, &stale, &threads, &[entry]);
        schema_check(&json).expect("schema");
        assert!(
            crate::experiments::throughput::trajectory_inner(&json).is_some_and(|t| t.len() == 1)
        );
    }

    #[test]
    fn headline_check_flags_chatty_few_state_serving() {
        let row = |id: &'static str, dirty| StaleRow {
            id,
            algorithm: id.to_string(),
            updates: 1_000,
            windows: STALENESS_WINDOWS,
            dirty_windows: dirty,
            state_changes: dirty as u64,
            generation: dirty as u64,
        };
        let quiet = row("sparse_recovery", 3);
        let chatty = row("sparse_recovery", 32);
        let baseline = row("count_min", STALENESS_WINDOWS);
        let lazy_baseline = row("count_min", 4);
        assert!(headline_check(&[quiet.clone(), baseline.clone()], 0.1).is_ok());
        assert!(headline_check(&[chatty, baseline], 0.1).is_err());
        assert!(
            headline_check(&[quiet, lazy_baseline], 0.1).is_err(),
            "a baseline that is not write-heavy invalidates the comparison"
        );
    }

    #[test]
    fn schema_check_rejects_incomplete_json() {
        assert!(schema_check("{}").is_err());
    }
}
