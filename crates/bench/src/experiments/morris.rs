//! Experiment F7 — Morris counters (Theorem 1.5): state changes grow polylogarithmically
//! with the count while the estimate stays within `(1±ε)`.

use fsc_counters::{Counter, ExactCounter, MorrisCounter};
use fsc_state::StateTracker;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{f, Table};
use crate::Scale;

/// Measurements for one (count, ε) configuration.
#[derive(Debug, Clone)]
pub struct Row {
    /// True number of increments.
    pub count: u64,
    /// Accuracy parameter the counter was built for.
    pub eps: f64,
    /// Relative estimation error.
    pub rel_error: f64,
    /// State changes of the Morris counter (its register value).
    pub morris_state_changes: u64,
    /// State changes of an exact counter (equals the count).
    pub exact_state_changes: u64,
}

/// Runs the Morris-counter sweep.
pub fn run(scale: Scale) -> (Table, Vec<Row>) {
    let counts: Vec<u64> = match scale {
        Scale::Quick => vec![1_000, 10_000, 100_000],
        Scale::Full => vec![1_000, 10_000, 100_000, 1_000_000, 10_000_000],
    };
    let eps_values = [0.05, 0.1, 0.3];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "F7 — Morris counters: state changes and accuracy vs count",
        &[
            "count",
            "eps",
            "rel. error",
            "state changes (Morris)",
            "state changes (exact)",
        ],
    );

    for &count in &counts {
        for &eps in &eps_values {
            let tracker = StateTracker::new();
            let mut rng = StdRng::seed_from_u64(count ^ (eps * 1e4) as u64);
            let mut morris = MorrisCounter::new(&tracker, eps * eps / 2.0);
            let mut exact = ExactCounter::new(&tracker);
            for _ in 0..count {
                tracker.begin_epoch();
                morris.increment(&mut rng);
                exact.increment(&mut rng);
            }
            let rel_error = (morris.estimate() - count as f64).abs() / count as f64;
            let row = Row {
                count,
                eps,
                rel_error,
                morris_state_changes: morris.register(),
                exact_state_changes: exact.count(),
            };
            table.row(vec![
                count.to_string(),
                f(eps),
                f(rel_error),
                row.morris_state_changes.to_string(),
                row.exact_state_changes.to_string(),
            ]);
            rows.push(row);
        }
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morris_writes_grow_sublinearly_and_estimates_stay_close() {
        let (_, rows) = run(Scale::Quick);
        for row in &rows {
            assert_eq!(row.exact_state_changes, row.count);
            assert!(
                row.morris_state_changes < row.count,
                "count {}: register {}",
                row.count,
                row.morris_state_changes
            );
            // The savings factor grows with the count (logarithmic vs linear growth);
            // at small counts and tight ε the register is still close to exact.
            if row.count >= 10_000 {
                assert!(
                    row.morris_state_changes < row.count / 4,
                    "count {} eps {}: register {}",
                    row.count,
                    row.eps,
                    row.morris_state_changes
                );
            }
            assert!(
                row.rel_error < 4.0 * row.eps + 0.05,
                "error {}",
                row.rel_error
            );
        }
        // Going from 1k to 100k increments must grow the register far less than 100×.
        let small = rows
            .iter()
            .find(|r| r.count == 1_000 && r.eps == 0.1)
            .unwrap();
        let large = rows
            .iter()
            .find(|r| r.count == 100_000 && r.eps == 0.1)
            .unwrap();
        assert!(large.morris_state_changes < 20 * small.morris_state_changes.max(1));
    }
}
